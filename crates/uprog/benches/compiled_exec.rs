//! Compiled-vs-interpreted μProgram execution: the per-broadcast datapath comparison.
//!
//! Run with `cargo bench -p simdram-uprog --bench compiled_exec`.
//!
//! Each benchmark executes one whole μProgram in one subarray — the unit of work a
//! broadcast fans out per chunk — so the numbers are directly the per-chunk cost the
//! machine's `FunctionalMode` chooses between:
//!
//! * `interpreted/*` — [`simdram_uprog::execute`]: per-μOp symbolic resolve, bounds
//!   checks, fused-TRA eligibility test and per-command trace recording;
//! * `compiled/*` — [`CompiledProgram::execute_in`] with `with_history = false`: one
//!   binding check, a pre-resolved word-level row-op loop and a single aggregate charge
//!   (the fast-functional default);
//! * `compiled_history/*` — the same kernel with per-command history retained (the
//!   trace-sampling mode), isolating the cost of keeping history from the cost of
//!   interpretation.
//!
//! The README's "Simulator performance" section records the measured before/after table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simdram_dram::{CommandCosts, DramConfig, Subarray};
use simdram_logic::Operation;
use simdram_uprog::{
    build_program, execute, CodegenOptions, CompiledProgram, MicroProgram, RowBinding, Target,
};

fn binding() -> RowBinding {
    RowBinding {
        a_base: 0,
        b_base: 16,
        pred_row: 32,
        out_base: 33,
        temp_base: 100,
    }
}

fn bench_case(c: &mut Criterion, name: &str, program: &MicroProgram) {
    let config = DramConfig::default();
    let costs = CommandCosts::new(&config);
    let compiled = CompiledProgram::compile(program, &costs).unwrap();
    let binding = binding();
    let commands = program.command_count() as u64;

    let mut group = c.benchmark_group(format!("compiled_exec/{name}"));
    group.throughput(Throughput::Elements(commands));

    let mut sa = Subarray::new(&config);
    group.bench_function("interpreted", |b| {
        b.iter(|| {
            let trace = execute(program, &mut sa, &binding).unwrap();
            sa.drain_trace();
            trace
        })
    });

    let mut sa = Subarray::new(&config);
    group.bench_function("compiled", |b| {
        b.iter(|| {
            compiled.execute_in(&mut sa, &binding, false).unwrap();
            sa.drain_trace();
        })
    });

    let mut sa = Subarray::new(&config);
    group.bench_function("compiled_history", |b| {
        b.iter(|| {
            compiled.execute_in(&mut sa, &binding, true).unwrap();
            sa.drain_trace();
        })
    });

    group.finish();
}

fn bench_compiled_exec(c: &mut Criterion) {
    for (name, op, width) in [
        ("add16", Operation::Add, 16),
        ("mul8", Operation::Mul, 8),
        ("and_red16", Operation::AndRed, 16),
    ] {
        let program = build_program(Target::Simdram, op, width, CodegenOptions::optimized());
        bench_case(c, name, &program);
    }
}

criterion_group!(benches, bench_compiled_exec);
criterion_main!(benches);
