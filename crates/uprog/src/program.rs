//! μPrograms: the executable artifact of SIMDRAM's Step 2.

use simdram_dram::{energy::EnergyModel, DramTiming};
use simdram_logic::Operation;

use crate::microop::MicroOp;

/// A complete μProgram: the sequence of AAP/AP commands that computes one operation over
/// vertically laid-out operands in a subarray, together with its resource requirements.
///
/// μPrograms are *symbolic* (see [`crate::MicroRow`]); the SIMDRAM control unit binds them
/// to physical rows at issue time and broadcasts them across subarrays and banks.
#[derive(Debug, Clone)]
pub struct MicroProgram {
    op: Operation,
    width: usize,
    ops: Vec<MicroOp>,
    temp_rows: usize,
}

impl MicroProgram {
    /// Assembles a μProgram from its parts. Intended for use by the code generator.
    pub fn new(op: Operation, width: usize, ops: Vec<MicroOp>, temp_rows: usize) -> Self {
        MicroProgram {
            op,
            width,
            ops,
            temp_rows,
        }
    }

    /// The operation this μProgram implements.
    pub fn operation(&self) -> Operation {
        self.op
    }

    /// The operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The μOps in issue order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of reserved (temporary) data rows the μProgram needs in each subarray.
    pub fn temp_rows(&self) -> usize {
        self.temp_rows
    }

    /// Total number of DRAM commands (AAPs plus bare APs).
    pub fn command_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of `AAP` commands (copies and TRA-copies).
    pub fn aap_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_aap()).count()
    }

    /// Number of bare `AP` commands.
    pub fn ap_count(&self) -> usize {
        self.ops.iter().filter(|op| !op.is_aap()).count()
    }

    /// Number of triple-row activations (majority computations).
    pub fn tra_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_tra()).count()
    }

    /// Latency of one execution of the μProgram in nanoseconds, given DDR timing.
    ///
    /// The μProgram executes in a single subarray; when broadcast over many subarrays and
    /// banks the latency is unchanged while throughput scales with the number of lanes.
    pub fn latency_ns(&self, timing: &DramTiming) -> f64 {
        self.aap_count() as f64 * timing.aap_ns() + self.ap_count() as f64 * timing.ap_ns()
    }

    /// Energy of one execution of the μProgram in a single subarray, in nanojoules.
    pub fn energy_nj(&self, energy: &EnergyModel) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                MicroOp::Aap { .. } => energy.aap_nj(false),
                MicroOp::AapTra { .. } => energy.aap_nj(true),
                MicroOp::ApTra { .. } => energy.ap_nj(true),
            })
            .sum()
    }

    /// Throughput in operations per second when the μProgram is broadcast over `lanes`
    /// SIMD lanes (bitlines × subarrays × banks) back-to-back.
    pub fn throughput_ops_per_sec(&self, timing: &DramTiming, lanes: usize) -> f64 {
        let latency_s = self.latency_ns(timing) * 1e-9;
        lanes as f64 / latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::MicroRow;
    use simdram_dram::BGroupRow;

    fn sample_program() -> MicroProgram {
        let ops = vec![
            MicroOp::Aap {
                src: MicroRow::InputA(0),
                dst: MicroRow::BGroup(BGroupRow::T0),
            },
            MicroOp::Aap {
                src: MicroRow::InputB(0),
                dst: MicroRow::BGroup(BGroupRow::T1),
            },
            MicroOp::Aap {
                src: MicroRow::Zero,
                dst: MicroRow::BGroup(BGroupRow::T2),
            },
            MicroOp::AapTra {
                a: BGroupRow::T0,
                b: BGroupRow::T1,
                c: BGroupRow::T2,
                dst: MicroRow::Output(0),
            },
            MicroOp::ApTra {
                a: BGroupRow::T0,
                b: BGroupRow::T1,
                c: BGroupRow::T2,
            },
        ];
        MicroProgram::new(Operation::Add, 1, ops, 2)
    }

    #[test]
    fn command_counts() {
        let p = sample_program();
        assert_eq!(p.command_count(), 5);
        assert_eq!(p.aap_count(), 4);
        assert_eq!(p.ap_count(), 1);
        assert_eq!(p.tra_count(), 2);
        assert_eq!(p.temp_rows(), 2);
        assert_eq!(p.operation(), Operation::Add);
        assert_eq!(p.width(), 1);
    }

    #[test]
    fn latency_combines_aap_and_ap() {
        let p = sample_program();
        let timing = DramTiming::default();
        let expected = 4.0 * timing.aap_ns() + timing.ap_ns();
        assert!((p.latency_ns(&timing) - expected).abs() < 1e-9);
    }

    #[test]
    fn energy_distinguishes_tra_commands() {
        let p = sample_program();
        let e = EnergyModel::default();
        let expected = 3.0 * e.aap_nj(false) + e.aap_nj(true) + e.ap_nj(true);
        assert!((p.energy_nj(&e) - expected).abs() < 1e-9);
    }

    #[test]
    fn throughput_scales_with_lanes() {
        let p = sample_program();
        let timing = DramTiming::default();
        let t1 = p.throughput_ops_per_sec(&timing, 65_536);
        let t16 = p.throughput_ops_per_sec(&timing, 16 * 65_536);
        assert!((t16 / t1 - 16.0).abs() < 1e-9);
    }
}
