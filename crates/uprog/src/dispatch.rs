//! MIMD dispatch-window descriptors.
//!
//! A classic SIMDRAM dispatch broadcasts ONE μProgram command stream to every
//! participating subarray. A **MIMD dispatch window** (after MIMDRAM) relaxes this: one
//! window carries a *set* of `(μProgram stream, subarray set)` pairs, and each subarray
//! group executes its own stream concurrently with the others. The descriptor types in
//! this module are how the control unit names and validates such a window before the
//! machine issues it:
//!
//! * [`DispatchEntry`] — one heterogeneous lane of the window: the identity of the
//!   command stream (its `(operation, width)` pairs in issue order) and the linear
//!   compute-chunk ids it is broadcast to;
//! * [`DispatchWindow`] — the validated set of entries. Construction enforces the MIMD
//!   safety contract: every entry must target a **disjoint** subarray set (two streams
//!   racing on one subarray would interleave commands nondeterministically), and no
//!   entry may be empty.
//!
//! The descriptors are pure metadata — they carry no row bindings and issue no
//! commands — so a serving layer can validate placement windows without touching a
//! device.

use simdram_logic::Operation;

use crate::error::{Result, UprogError};

/// One `(μProgram stream, subarray set)` pair of a MIMD dispatch window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchEntry {
    /// Identity of the μProgram stream this entry issues: the `(operation, operand
    /// width)` of every Exec step, in issue order. Constant/copy steps carry no
    /// μProgram and are not listed; an entry of pure copies/constants is legal and has
    /// an empty program list.
    pub programs: Vec<(Operation, usize)>,
    /// Linear compute-chunk ids the stream is broadcast to. Must be non-empty and
    /// disjoint from every other entry's set.
    pub subarrays: Vec<usize>,
}

impl DispatchEntry {
    /// Creates an entry from a program-identity list and a subarray set.
    pub fn new(programs: Vec<(Operation, usize)>, subarrays: Vec<usize>) -> Self {
        DispatchEntry {
            programs,
            subarrays,
        }
    }
}

/// A validated heterogeneous dispatch window: a set of [`DispatchEntry`]s whose
/// subarray sets are pairwise disjoint, issuable as ONE broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchWindow {
    entries: Vec<DispatchEntry>,
}

impl DispatchWindow {
    /// Builds a window after validating the MIMD safety contract.
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::EmptyDispatch`] for a window with no entries or an entry
    /// with no subarrays, and [`UprogError::OverlappingDispatch`] when two entries
    /// claim the same subarray.
    pub fn new(entries: Vec<DispatchEntry>) -> Result<Self> {
        Self::validate_disjoint(&entries)?;
        Ok(DispatchWindow { entries })
    }

    /// Checks that `entries` form a legal MIMD window: at least one entry, every entry
    /// targeting at least one subarray, and no subarray claimed twice (within or across
    /// entries).
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::EmptyDispatch`] or [`UprogError::OverlappingDispatch`].
    pub fn validate_disjoint(entries: &[DispatchEntry]) -> Result<()> {
        if entries.is_empty() {
            return Err(UprogError::EmptyDispatch);
        }
        let mut claimed = std::collections::BTreeSet::new();
        for entry in entries {
            if entry.subarrays.is_empty() {
                return Err(UprogError::EmptyDispatch);
            }
            for &subarray in &entry.subarrays {
                if !claimed.insert(subarray) {
                    return Err(UprogError::OverlappingDispatch { subarray });
                }
            }
        }
        Ok(())
    }

    /// The window's entries, in issue order.
    pub fn entries(&self) -> &[DispatchEntry] {
        &self.entries
    }

    /// Total number of subarrays the window occupies (entries are disjoint, so this is
    /// the plain sum).
    pub fn chunk_count(&self) -> usize {
        self.entries.iter().map(|e| e.subarrays.len()).sum()
    }

    /// `true` when the window is genuinely MIMD: at least two entries whose program
    /// streams differ (a homogeneous window is an ordinary SIMD broadcast).
    pub fn is_heterogeneous(&self) -> bool {
        self.entries
            .windows(2)
            .any(|pair| pair[0].programs != pair[1].programs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ops: &[(Operation, usize)], subarrays: &[usize]) -> DispatchEntry {
        DispatchEntry::new(ops.to_vec(), subarrays.to_vec())
    }

    #[test]
    fn disjoint_entries_form_a_window() {
        let window = DispatchWindow::new(vec![
            entry(&[(Operation::Add, 8)], &[0, 1]),
            entry(&[(Operation::Mul, 16)], &[2]),
        ])
        .unwrap();
        assert_eq!(window.entries().len(), 2);
        assert_eq!(window.chunk_count(), 3);
        assert!(window.is_heterogeneous());
    }

    #[test]
    fn homogeneous_windows_are_plain_simd() {
        let window = DispatchWindow::new(vec![
            entry(&[(Operation::Add, 8)], &[0]),
            entry(&[(Operation::Add, 8)], &[1]),
        ])
        .unwrap();
        assert!(!window.is_heterogeneous());
    }

    #[test]
    fn overlapping_subarrays_are_rejected() {
        let err = DispatchWindow::new(vec![
            entry(&[(Operation::Add, 8)], &[0, 1]),
            entry(&[(Operation::Sub, 8)], &[1, 2]),
        ])
        .unwrap_err();
        assert_eq!(err, UprogError::OverlappingDispatch { subarray: 1 });
        // Duplicates within one entry are just as illegal.
        let err = DispatchWindow::new(vec![entry(&[], &[3, 3])]).unwrap_err();
        assert_eq!(err, UprogError::OverlappingDispatch { subarray: 3 });
    }

    #[test]
    fn empty_windows_and_empty_entries_are_rejected() {
        assert_eq!(
            DispatchWindow::new(Vec::new()).unwrap_err(),
            UprogError::EmptyDispatch
        );
        assert_eq!(
            DispatchWindow::new(vec![entry(&[(Operation::Add, 8)], &[])]).unwrap_err(),
            UprogError::EmptyDispatch
        );
    }
}
