//! Error type for μProgram generation and execution.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, UprogError>;

/// Errors raised during μProgram generation or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UprogError {
    /// A μOp attempted to write to one of the hard-wired control rows.
    WriteToConstantRow,
    /// The μProgram needs more temporary rows than the subarray reserves.
    NotEnoughReservedRows {
        /// Temporary rows required by the μProgram.
        required: usize,
        /// Temporary rows available in the configuration.
        available: usize,
    },
    /// The row binding places operands outside the subarray or lets regions overlap.
    InvalidBinding(String),
    /// Two entries of a MIMD dispatch window claim the same subarray — their command
    /// streams would interleave nondeterministically on it.
    OverlappingDispatch {
        /// The linear compute-chunk id claimed twice.
        subarray: usize,
    },
    /// A MIMD dispatch window has no entries, or an entry targets no subarrays.
    EmptyDispatch,
    /// An error reported by the DRAM substrate while executing a μOp.
    Dram(simdram_dram::DramError),
}

impl fmt::Display for UprogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UprogError::WriteToConstantRow => {
                write!(f, "μOp writes to a hard-wired control row (C0/C1)")
            }
            UprogError::NotEnoughReservedRows {
                required,
                available,
            } => write!(
                f,
                "μProgram needs {required} reserved rows but only {available} are available"
            ),
            UprogError::InvalidBinding(msg) => write!(f, "invalid row binding: {msg}"),
            UprogError::OverlappingDispatch { subarray } => write!(
                f,
                "MIMD dispatch window entries overlap on subarray {subarray}"
            ),
            UprogError::EmptyDispatch => {
                write!(f, "MIMD dispatch window has no entries or an empty entry")
            }
            UprogError::Dram(e) => write!(f, "DRAM error during μProgram execution: {e}"),
        }
    }
}

impl std::error::Error for UprogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UprogError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<simdram_dram::DramError> for UprogError {
    fn from(e: simdram_dram::DramError) -> Self {
        UprogError::Dram(e)
    }
}
