//! Compilation of cached μPrograms into specialized word-level row-op kernels.
//!
//! The interpreted executor ([`crate::execute`]) walks a μProgram one μOp at a time:
//! every command re-resolves its symbolic rows against the [`RowBinding`], re-validates
//! bounds inside the subarray, takes the fused-TRA eligibility test again and records one
//! trace entry. All of that work is the same on every execution of the same program —
//! which, thanks to the [`crate::MicroProgramLibrary`] cache, is exactly how μPrograms
//! are used: generated once, executed across thousands of subarray broadcasts.
//!
//! [`CompiledProgram::compile`] performs that work **once**, lowering each μOp into a
//! pre-resolved [`simdram_dram::RowOp`]:
//!
//! * symbolic rows become region-relative physical references (binding bases are the
//!   only run-time input, applied as a single addition per data row),
//! * constant sources, same-cell copies and negated-wordline paths are specialized into
//!   dedicated `Fill`/`Nop`/`Invert`/`CopyInv` operations,
//! * TRAs take the fused/general decision at compile time, and
//! * the whole program's trace accounting is pre-aggregated into a
//!   [`simdram_dram::TraceAggregate`] (built from the same [`CommandCosts`] table the
//!   subarray registers, so totals stay bit-identical to interpreted execution) and
//!   charged in one shot per run instead of once per command.
//!
//! The result runs via [`CompiledProgram::run`] (or the trace-free
//! [`CompiledProgram::execute_in`]) — one bounds check, then a tight loop of word-level
//! `u64`-slice operations with no per-command dispatch or bookkeeping.

use simdram_dram::{
    rowtag, BGroupRow, CommandCosts, CommandTrace, DramCommand, DramError, RowOp, RowOpBlock,
    RowRef, RowTemplate, SrcRef, Subarray, TraceAggregate, WriteRef,
};
use simdram_logic::Operation;

use crate::error::{Result, UprogError};
use crate::execute::check_binding_regions;
use crate::microop::{MicroOp, MicroRow, RowBinding};
use crate::program::MicroProgram;

/// Region indices of the compiled addressing scheme: each [`MicroRow`] data family maps
/// to one region whose base row comes from the [`RowBinding`] at run time.
const REGION_A: u8 = 0;
const REGION_B: u8 = 1;
const REGION_PRED: u8 = 2;
const REGION_OUT: u8 = 3;
const REGION_TEMP: u8 = 4;
/// Number of regions a compiled program addresses.
const REGIONS: usize = 5;

/// A μProgram lowered once into a binding-independent word-level row-op kernel.
///
/// Compiled programs are cached by the [`crate::MicroProgramLibrary`] (one per
/// `(target, operation, width)`, shared via `Arc`) and run against any subarray and any
/// valid [`RowBinding`]. Execution is bit-identical to the interpreted path: same row
/// contents, same per-kind command counts, and bit-identical latency/energy totals for
/// the local traces both paths return.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    op: Operation,
    width: usize,
    out_width: usize,
    uses_b: bool,
    uses_pred: bool,
    temp_rows: usize,
    block: RowOpBlock,
}

impl CompiledProgram {
    /// Lowers `program` into its compiled form, charging command costs from `costs`.
    ///
    /// `costs` must describe the same [`simdram_dram::DramConfig`] as the subarrays the
    /// program will run in — the machine derives both from one config — so the
    /// pre-aggregated totals match interpreted recording bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::WriteToConstantRow`] if a μOp writes a hard-wired control
    /// row and [`UprogError::Dram`] for malformed TRAs (duplicate rows); well-formed
    /// generator output never triggers either.
    pub fn compile(program: &MicroProgram, costs: &CommandCosts) -> Result<Self> {
        let mut commands: Vec<DramCommand> = Vec::with_capacity(program.command_count());
        let mut row_tags: Vec<RowTemplate> = Vec::with_capacity(program.command_count());
        let fates = fate_table(program.ops());
        let mut fuser = Fuser::new(program.command_count());
        for (micro, fate) in program.ops().iter().zip(&fates) {
            micro.validate()?;
            fuser.set_fate(*fate);
            match *micro {
                MicroOp::Aap { src, dst } => {
                    fuser.aap(src, dst)?;
                    commands.push(costs.aap().clone());
                    row_tags.push(row_template(src));
                }
                MicroOp::AapTra { a, b, c, dst } => {
                    fuser.tra(a, b, c, Some(dst))?;
                    commands.push(costs.aap_tra().clone());
                    row_tags.push(RowTemplate::Fixed(rowtag::tra(
                        a as usize, b as usize, c as usize,
                    )));
                }
                MicroOp::ApTra { a, b, c } => {
                    fuser.tra(a, b, c, None)?;
                    commands.push(costs.tra().clone());
                    row_tags.push(RowTemplate::Fixed(rowtag::tra(
                        a as usize, b as usize, c as usize,
                    )));
                }
            }
        }
        let (ops, maj_ordinals, tra_total) = fuser.finish();
        let aggregate = TraceAggregate::from_commands(commands);
        let block = RowOpBlock::new(ops, REGIONS, aggregate)
            .map_err(UprogError::Dram)?
            .with_tra_ordinals(maj_ordinals, tra_total)
            .map_err(UprogError::Dram)?
            .with_row_tags(row_tags)
            .map_err(UprogError::Dram)?;
        Ok(CompiledProgram {
            op: program.operation(),
            width: program.width(),
            out_width: program.operation().output_width(program.width()),
            uses_b: program.operation().uses_second_operand(),
            uses_pred: program.operation().uses_predicate(),
            temp_rows: program.temp_rows(),
            block,
        })
    }

    /// The operation this program implements.
    pub fn operation(&self) -> Operation {
        self.op
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of DRAM commands one run issues (equal to the source μProgram's
    /// `command_count`; the lowered block usually contains *fewer* row ops, since the
    /// copy-propagation pass elides staged B-group traffic — the accounting still
    /// charges every command).
    pub fn command_count(&self) -> usize {
        self.block.aggregate().len()
    }

    /// Number of reserved temporary rows the program needs.
    pub fn temp_rows(&self) -> usize {
        self.temp_rows
    }

    /// The lowered row-op kernel.
    pub fn block(&self) -> &RowOpBlock {
        &self.block
    }

    /// The pre-aggregated trace accounting of one run.
    pub fn aggregate(&self) -> &TraceAggregate {
        self.block.aggregate()
    }

    /// Checks that `binding` places every row this program touches inside a subarray of
    /// `subarray_rows` data rows, with non-overlapping regions — the same validation (and
    /// error messages) as [`crate::validate_binding`] on the source μProgram.
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::InvalidBinding`] describing the first violation found.
    pub fn validate_binding(&self, binding: &RowBinding, subarray_rows: usize) -> Result<()> {
        check_binding_regions(
            self.width,
            self.out_width,
            self.temp_rows,
            self.uses_b,
            self.uses_pred,
            binding,
            subarray_rows,
        )
    }

    /// Runs the compiled kernel in `subarray` under `binding` without building a local
    /// trace — the allocation-free fast path (the subarray's cumulative aggregates are
    /// still charged; `with_history` additionally retains its per-command history).
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::InvalidBinding`] if the binding does not fit the subarray.
    pub fn execute_in(
        &self,
        subarray: &mut Subarray,
        binding: &RowBinding,
        with_history: bool,
    ) -> Result<()> {
        self.validate_binding(binding, subarray.rows())?;
        subarray.apply_block(&self.block, &region_bases(binding), with_history)?;
        Ok(())
    }

    /// Runs the compiled kernel and returns a self-contained local [`CommandTrace`] built
    /// from the pre-computed aggregate — the compiled counterpart of
    /// [`crate::execute`], with bit-identical trace totals.
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::InvalidBinding`] if the binding does not fit the subarray.
    pub fn run(
        &self,
        subarray: &mut Subarray,
        binding: &RowBinding,
        with_history: bool,
    ) -> Result<CommandTrace> {
        self.execute_in(subarray, binding, with_history)?;
        if with_history {
            let rows = self.block.resolve_row_tags(&region_bases(binding));
            Ok(self.block.aggregate().to_trace_with_rows(&rows))
        } else {
            Ok(self.block.aggregate().to_trace(false))
        }
    }

    /// Like [`CompiledProgram::run`], rebuilding the caller's `out` trace in place so a
    /// hot loop can reuse one local-trace allocation across runs.
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::InvalidBinding`] if the binding does not fit the subarray.
    pub fn run_into(
        &self,
        subarray: &mut Subarray,
        binding: &RowBinding,
        with_history: bool,
        out: &mut CommandTrace,
    ) -> Result<()> {
        self.execute_in(subarray, binding, with_history)?;
        if with_history {
            let rows = self.block.resolve_row_tags(&region_bases(binding));
            self.block.aggregate().write_trace_with_rows(out, &rows);
        } else {
            self.block.aggregate().write_trace(out, false);
        }
        Ok(())
    }
}

/// The region base table a binding supplies, indexed by the `REGION_*` scheme.
fn region_bases(binding: &RowBinding) -> [usize; REGIONS] {
    [
        binding.a_base,
        binding.b_base,
        binding.pred_row,
        binding.out_base,
        binding.temp_base,
    ]
}

/// The row-address template of an `AAP`'s first activation: the tag the interpreter
/// records for the resolved source row ([`MicroRow::resolve`] followed by the
/// subarray's address tagging).
fn row_template(row: MicroRow) -> RowTemplate {
    let data = |region: u8, offset: usize| RowTemplate::Data {
        region,
        offset: u32::try_from(offset).expect("row offsets fit in 32 bits"),
    };
    match row {
        MicroRow::InputA(i) => data(REGION_A, i),
        MicroRow::InputB(i) => data(REGION_B, i),
        MicroRow::Pred => data(REGION_PRED, 0),
        MicroRow::Output(i) => data(REGION_OUT, i),
        MicroRow::Temp(i) => data(REGION_TEMP, i),
        MicroRow::Zero => RowTemplate::Fixed(rowtag::bgroup(BGroupRow::C0 as usize)),
        MicroRow::One => RowTemplate::Fixed(rowtag::bgroup(BGroupRow::C1 as usize)),
        MicroRow::BGroup(b) => RowTemplate::Fixed(rowtag::bgroup(b as usize)),
    }
}

/// A lowered row operand: physical storage plus wordline polarity, or a hard-wired
/// constant.
#[derive(Clone, Copy)]
enum Lowered {
    Row { row: RowRef, negated: bool },
    Const(bool),
}

fn lower_row(row: MicroRow) -> Lowered {
    let data = |region: u8, offset: usize| Lowered::Row {
        row: RowRef::Data {
            region,
            offset: u32::try_from(offset).expect("row offsets fit in 32 bits"),
        },
        negated: false,
    };
    match row {
        MicroRow::InputA(i) => data(REGION_A, i),
        MicroRow::InputB(i) => data(REGION_B, i),
        MicroRow::Pred => data(REGION_PRED, 0),
        MicroRow::Output(i) => data(REGION_OUT, i),
        MicroRow::Temp(i) => data(REGION_TEMP, i),
        MicroRow::Zero => Lowered::Const(false),
        MicroRow::One => Lowered::Const(true),
        MicroRow::BGroup(b) => match b {
            BGroupRow::T0 => Lowered::Row {
                row: RowRef::T(0),
                negated: false,
            },
            BGroupRow::T1 => Lowered::Row {
                row: RowRef::T(1),
                negated: false,
            },
            BGroupRow::T2 => Lowered::Row {
                row: RowRef::T(2),
                negated: false,
            },
            BGroupRow::T3 => Lowered::Row {
                row: RowRef::T(3),
                negated: false,
            },
            BGroupRow::Dcc0 | BGroupRow::Dcc0N => Lowered::Row {
                row: RowRef::Dcc(0),
                negated: b.is_negated_wordline(),
            },
            BGroupRow::Dcc1 | BGroupRow::Dcc1N => Lowered::Row {
                row: RowRef::Dcc(1),
                negated: b.is_negated_wordline(),
            },
            BGroupRow::C0 => Lowered::Const(false),
            BGroupRow::C1 => Lowered::Const(true),
        },
    }
}

/// Number of virtualized B-group registers: `T0`–`T3` are 0–3, `DCC0` is 4, `DCC1` is 5.
const REGS: usize = 6;

/// What a virtualized B-group register holds during the copy-propagation pass.
#[derive(Clone, Copy, PartialEq)]
enum Val {
    /// The register's physical storage is up to date.
    Materialized,
    /// The register's cell value equals `SrcRef` — the staging copy was elided, and the
    /// source row is guaranteed untouched since capture (every emitted write flushes
    /// the registers deferred on its target first).
    Deferred(SrcRef),
}

/// The copy-propagation pass: lowers μOps to [`RowOp`]s while treating the six writable
/// B-group cells as virtual registers.
///
/// Copies *into* the B-group assign a register symbolically and emit nothing; TRA
/// operands resolve through those assignments, so each majority reads its true sources
/// (data rows, earlier results, constants) directly via [`RowOp::MajDirect`] — the
/// "fused AAP-copy/TRA-majority runs" of the compiled mode. The hardware's B-group
/// restorations are deferred until the value is observable: before any write to a row a
/// deferred register captured, and at the end of the block, so the final subarray state
/// is bit-identical to interpreted execution.
struct Fuser {
    vals: [Val; REGS],
    /// Per-register liveness at the current μOp (from [`fate_table`]): `true` means the
    /// register's value reaches a later read (or the end of the block, where the
    /// B-group is observable); `false` means it is overwritten first, so a restoration
    /// owed to it can be dropped instead of emitted.
    fate: [bool; REGS],
    ops: Vec<RowOp>,
    /// TRA μOps lowered so far, whether or not they emitted a majority op.
    tra_seen: u32,
    /// For each emitted majority op (in `ops` order), the ordinal of the source-program
    /// TRA it lowers. Elided TRAs (dead bare `AP`s) leave gaps, which is what lets the
    /// fault layer key injection on source-program TRA ordinals identically in both
    /// execution modes (see [`RowOpBlock::with_tra_ordinals`]).
    maj_ordinals: Vec<u32>,
}

/// The virtual register an `AAP` operand addresses, if it is B-group storage.
fn reg_of_micro(row: MicroRow) -> Option<usize> {
    match lower_row(row) {
        Lowered::Row { row, .. } => reg_of_ref(row),
        Lowered::Const(_) => None,
    }
}

/// Backward liveness over the μOp sequence: entry `i` gives, for each virtual register,
/// whether its value *as of μOp `i`'s write phase* is ever read again (every μOp reads
/// its sources before driving its destinations, and a TRA reads its three operands
/// before the charge restoration overwrites them). The end of the block reads every
/// register — the B-group cells are architecturally observable state.
fn fate_table(ops: &[MicroOp]) -> Vec<[bool; REGS]> {
    let mut table = vec![[true; REGS]; ops.len()];
    // `next[reg]` = is `reg`'s value live entering μOp i+1. The block end reads all.
    let mut next = [true; REGS];
    for (i, op) in ops.iter().enumerate().rev() {
        let (reads, writes): ([Option<usize>; 3], [Option<usize>; 4]) = match *op {
            MicroOp::Aap { src, dst } => (
                [reg_of_micro(src), None, None],
                [reg_of_micro(dst), None, None, None],
            ),
            MicroOp::AapTra { a, b, c, dst } => {
                let regs = [a, b, c].map(|r| reg_of(r).map(|(reg, _)| reg));
                (regs, [regs[0], regs[1], regs[2], reg_of_micro(dst)])
            }
            MicroOp::ApTra { a, b, c } => {
                let regs = [a, b, c].map(|r| reg_of(r).map(|(reg, _)| reg));
                (regs, [regs[0], regs[1], regs[2], None])
            }
        };
        // The fate at op i's write phase: its own writes kill, later ops decide the rest.
        table[i] = next;
        for reg in writes.into_iter().flatten() {
            table[i][reg] = false;
        }
        // Entering op i, its reads (which precede its writes) make their sources live.
        next = table[i];
        for reg in reads.into_iter().flatten() {
            next[reg] = true;
        }
    }
    table
}

/// The virtual register and wordline polarity of a B-group row, or `None` for the
/// hard-wired control rows.
fn reg_of(row: BGroupRow) -> Option<(usize, bool)> {
    match row {
        BGroupRow::T0 => Some((0, false)),
        BGroupRow::T1 => Some((1, false)),
        BGroupRow::T2 => Some((2, false)),
        BGroupRow::T3 => Some((3, false)),
        BGroupRow::Dcc0 => Some((4, false)),
        BGroupRow::Dcc0N => Some((4, true)),
        BGroupRow::Dcc1 => Some((5, false)),
        BGroupRow::Dcc1N => Some((5, true)),
        BGroupRow::C0 | BGroupRow::C1 => None,
    }
}

/// The physical storage behind a virtual register.
fn storage_of(reg: usize) -> RowRef {
    match reg {
        0..=3 => RowRef::T(reg as u8),
        4 => RowRef::Dcc(0),
        _ => RowRef::Dcc(1),
    }
}

/// The virtual register a lowered row reference addresses, if it is B-group storage.
fn reg_of_ref(row: RowRef) -> Option<usize> {
    match row {
        RowRef::T(i) => Some(i as usize),
        RowRef::Dcc(i) => Some(4 + i as usize),
        RowRef::Data { .. } => None,
    }
}

/// Applies a wordline polarity on top of a resolved source.
fn apply_neg(src: SrcRef, negated: bool) -> SrcRef {
    match src {
        SrcRef::Row { row, negated: n } => SrcRef::Row {
            row,
            negated: n != negated,
        },
        SrcRef::Const(b) => SrcRef::Const(b != negated),
    }
}

impl Fuser {
    fn new(command_count: usize) -> Self {
        Fuser {
            vals: [Val::Materialized; REGS],
            fate: [true; REGS],
            ops: Vec::with_capacity(command_count),
            tra_seen: 0,
            maj_ordinals: Vec::new(),
        }
    }

    /// Installs the liveness row of the μOp about to be lowered (see [`fate_table`]).
    fn set_fate(&mut self, fate: [bool; REGS]) {
        self.fate = fate;
    }

    /// Resolves a read of virtual register `reg` through polarity `negated`.
    fn read_reg(&self, reg: usize, negated: bool) -> SrcRef {
        match self.vals[reg] {
            Val::Materialized => SrcRef::Row {
                row: storage_of(reg),
                negated,
            },
            Val::Deferred(src) => apply_neg(src, negated),
        }
    }

    /// Resolves an `AAP` source row to its current value.
    fn read(&self, row: MicroRow) -> SrcRef {
        match lower_row(row) {
            Lowered::Const(v) => SrcRef::Const(v),
            Lowered::Row { row, negated } => match reg_of_ref(row) {
                Some(reg) => self.read_reg(reg, negated),
                None => SrcRef::Row { row, negated },
            },
        }
    }

    /// Resolves a TRA operand to its current value.
    fn read_bgroup(&self, row: BGroupRow) -> SrcRef {
        match reg_of(row) {
            Some((reg, negated)) => self.read_reg(reg, negated),
            None => SrcRef::Const(row == BGroupRow::C1),
        }
    }

    /// Emits the specialized data movement realizing `src → dst` (same-cell copies
    /// collapse to an in-place complement or nothing, exactly like the interpreted
    /// drive). The caller has already flushed registers deferred on `dst`.
    fn emit_move(&mut self, src: SrcRef, dst: RowRef) {
        let op = match src {
            SrcRef::Const(v) => RowOp::Fill { dst, value: v },
            SrcRef::Row { row, negated } => {
                if row == dst {
                    if negated {
                        RowOp::Invert { dst }
                    } else {
                        return; // the cell already holds the value
                    }
                } else if negated {
                    RowOp::CopyInv { src: row, dst }
                } else {
                    RowOp::Copy { src: row, dst }
                }
            }
        };
        self.ops.push(op);
    }

    /// Materializes every register whose deferred value was captured from `target`,
    /// called immediately before an emitted write to `target` — the captured content is
    /// still in place, so the restoration each register owes can be emitted now.
    fn flush_refs_to(&mut self, target: RowRef) {
        for reg in 0..REGS {
            if let Val::Deferred(SrcRef::Row { row, .. }) = self.vals[reg] {
                if row == target {
                    self.flush(reg);
                }
            }
        }
    }

    /// Materializes one deferred register into its physical storage — unless its value
    /// is dead (overwritten before the next read), in which case the restoration it
    /// owes is dropped outright: the stale cell is unobservable by construction.
    fn flush(&mut self, reg: usize) {
        let Val::Deferred(src) = self.vals[reg] else {
            return;
        };
        // Mark materialized first so the cascade below terminates; registers deferred
        // on *our* storage capture its current content before we overwrite it. (Two
        // registers can never defer on each other's storage — creating such an edge
        // requires the referenced register to be materialized at capture time — so the
        // cascade never clobbers `src` before the move below is emitted.)
        self.vals[reg] = Val::Materialized;
        if !self.fate[reg] {
            return;
        }
        let dst = storage_of(reg);
        self.flush_refs_to(dst);
        self.emit_move(src, dst);
    }

    /// Lowers one `AAP src, dst`.
    fn aap(&mut self, src: MicroRow, dst: MicroRow) -> Result<()> {
        let value = self.read(src);
        match lower_row(dst) {
            Lowered::Const(_) => Err(UprogError::WriteToConstantRow),
            Lowered::Row { row, negated } => {
                let cell = apply_neg(value, negated);
                match reg_of_ref(row) {
                    Some(reg) => {
                        // A staging copy into the B-group: assign the register
                        // symbolically, emit nothing.
                        self.vals[reg] = match cell {
                            SrcRef::Row {
                                row: r,
                                negated: false,
                            } if r == storage_of(reg) => Val::Materialized,
                            other => Val::Deferred(other),
                        };
                        Ok(())
                    }
                    None => {
                        self.flush_refs_to(row);
                        self.emit_move(cell, row);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Lowers one TRA (with `dst` for the `AAP` variant).
    fn tra(
        &mut self,
        a: BGroupRow,
        b: BGroupRow,
        c: BGroupRow,
        dst: Option<MicroRow>,
    ) -> Result<()> {
        if a == b || b == c || a == c {
            return Err(UprogError::Dram(DramError::DuplicateTraRow));
        }
        let ordinal = self.tra_seen;
        self.tra_seen += 1;
        let srcs = [
            self.read_bgroup(a),
            self.read_bgroup(b),
            self.read_bgroup(c),
        ];
        // The registers the TRA's charge restoration writes, with the polarity each
        // wordline drives, in restoration order (last write wins, as in the
        // interpreter).
        let mut restored = [(0usize, false); 3];
        let mut restored_len = 0;
        for row in [a, b, c] {
            if let Some(rp) = reg_of(row) {
                restored[restored_len] = rp;
                restored_len += 1;
            }
        }
        let restored = &restored[..restored_len];

        let lowered_dst = match dst {
            None => None,
            Some(d) => match lower_row(d) {
                Lowered::Const(_) => return Err(UprogError::WriteToConstantRow),
                Lowered::Row { row, negated } => Some((row, negated)),
            },
        };
        match lowered_dst {
            // Data-row destination: the majority is materialized there, and the
            // B-group restorations defer to it.
            Some((row, negated)) if reg_of_ref(row).is_none() => {
                self.flush_refs_to(row);
                self.maj_ordinals.push(ordinal);
                self.ops.push(RowOp::MajDirect {
                    srcs,
                    dst: Some(WriteRef { row, negated }),
                });
                // cell(row) = maj ^ negated; a register restored through polarity
                // `pol` holds maj ^ pol = cell(row) ^ negated ^ pol.
                for &(reg, pol) in restored {
                    self.vals[reg] = Val::Deferred(SrcRef::Row {
                        row,
                        negated: negated != pol,
                    });
                }
            }
            // B-group destination: materialize into its storage; other restored
            // registers defer to it.
            Some((row, negated)) => {
                let dreg = reg_of_ref(row).expect("the data case was matched above");
                self.flush_refs_to(row);
                self.maj_ordinals.push(ordinal);
                self.ops.push(RowOp::MajDirect {
                    srcs,
                    dst: Some(WriteRef { row, negated }),
                });
                self.vals[dreg] = Val::Materialized;
                for &(reg, pol) in restored {
                    if reg != dreg {
                        self.vals[reg] = Val::Deferred(SrcRef::Row {
                            row,
                            negated: negated != pol,
                        });
                    }
                }
            }
            // Bare `AP` TRA: materialize into a *live* restored register's storage and
            // defer the rest to it. When every restored register is dead — the next
            // event for each is a write — the majority itself is unobservable and the
            // TRA lowers to nothing (a TRA over control rows only always does).
            None => {
                if let Some(i0) = restored.iter().position(|&(reg, _)| self.fate[reg]) {
                    let (reg0, pol0) = restored[i0];
                    let row = storage_of(reg0);
                    self.flush_refs_to(row);
                    self.maj_ordinals.push(ordinal);
                    self.ops.push(RowOp::MajDirect {
                        srcs,
                        dst: Some(WriteRef { row, negated: pol0 }),
                    });
                    // Earlier restorations are all dead (their registers' fates are
                    // write-next); assignments stay in restoration order so a register
                    // named through both wordlines keeps its last-written polarity.
                    for &(reg, _) in &restored[..i0] {
                        self.vals[reg] = Val::Materialized;
                    }
                    self.vals[reg0] = Val::Materialized;
                    for &(reg, pol) in &restored[i0 + 1..] {
                        self.vals[reg] = Val::Deferred(SrcRef::Row {
                            row,
                            negated: pol0 != pol,
                        });
                    }
                } else {
                    for &(reg, _) in restored {
                        // Dead restoration: the stale cell is overwritten before any
                        // read, so dropping the deferred value outright is sound.
                        self.vals[reg] = Val::Materialized;
                    }
                }
            }
        }
        Ok(())
    }

    /// Ends the block: emits the restorations still owed so every B-group cell holds
    /// exactly what interpreted execution leaves in it. Returns the lowered ops, the
    /// source-program TRA ordinal of each emitted majority op, and the total TRA count
    /// of the source program.
    fn finish(mut self) -> (Vec<RowOp>, Vec<u32>, u32) {
        // The end of the block observes every cell, whatever the last μOp's fate said.
        self.fate = [true; REGS];
        for reg in 0..REGS {
            self.flush(reg);
        }
        (self.ops, self.maj_ordinals, self.tra_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::CodegenOptions;
    use crate::execute;
    use crate::library::{build_program, Target};
    use simdram_dram::{DramConfig, RowAddr};

    fn costs() -> CommandCosts {
        CommandCosts::new(&DramConfig::tiny())
    }

    fn binding() -> RowBinding {
        RowBinding {
            a_base: 0,
            b_base: 8,
            pred_row: 16,
            out_base: 17,
            temp_base: 30,
        }
    }

    #[test]
    fn compiled_add_matches_interpreted_execution_bit_for_bit() {
        let program = build_program(
            Target::Simdram,
            Operation::Add,
            8,
            CodegenOptions::optimized(),
        );
        let compiled = CompiledProgram::compile(&program, &costs()).unwrap();
        assert_eq!(compiled.command_count(), program.command_count());

        let config = DramConfig::tiny();
        let mut interp = Subarray::new(&config);
        let mut comp = Subarray::new(&config);
        // Vertical layout: bit i of each operand in row base+i, one lane per column.
        for (base, value) in [(0usize, 0xB7u64), (8, 0x5Du64)] {
            for bit in 0..8 {
                let row = simdram_dram::BitRow::from_fn(config.columns_per_row, |lane| {
                    ((value >> bit) & 1 == 1 && lane % 3 != 0) || lane % 7 == 0
                });
                interp.write_row(base + bit, &row);
                comp.write_row(base + bit, &row);
            }
        }

        let local_interp = execute::execute(&program, &mut interp, &binding()).unwrap();
        let local_comp = compiled.run(&mut comp, &binding(), true).unwrap();

        for row in 0..interp.rows() {
            assert_eq!(
                interp.row(RowAddr::Data(row)).unwrap(),
                comp.row(RowAddr::Data(row)).unwrap(),
                "row {row} diverged"
            );
        }
        for b in BGroupRow::ALL {
            assert_eq!(
                interp.peek(RowAddr::BGroup(b)).unwrap(),
                comp.peek(RowAddr::BGroup(b)).unwrap(),
                "{b:?} diverged"
            );
        }
        // Local traces are fully equal, including f64 bit patterns of the totals.
        assert_eq!(local_comp, local_interp);
        assert_eq!(
            local_comp.total_latency_ns().to_bits(),
            local_interp.total_latency_ns().to_bits()
        );
        assert_eq!(
            local_comp.total_energy_nj().to_bits(),
            local_interp.total_energy_nj().to_bits()
        );
        // Cumulative subarray aggregates agree on count structure.
        assert_eq!(comp.trace().len(), interp.trace().len());
        assert_eq!(
            comp.trace().kind_counts().collect::<Vec<_>>(),
            interp.trace().kind_counts().collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_free_run_keeps_aggregates_but_no_history() {
        let program = build_program(
            Target::Simdram,
            Operation::Abs,
            8,
            CodegenOptions::optimized(),
        );
        let compiled = CompiledProgram::compile(&program, &costs()).unwrap();
        let mut sa = Subarray::new(&DramConfig::tiny());
        compiled.execute_in(&mut sa, &binding(), false).unwrap();
        assert_eq!(sa.trace().len(), program.command_count());
        assert_eq!(sa.trace().history_len(), 0);
        let mut out = CommandTrace::new();
        compiled
            .run_into(&mut sa, &binding(), false, &mut out)
            .unwrap();
        assert_eq!(out.len(), program.command_count());
        assert_eq!(out.history_len(), 0);
    }

    #[test]
    fn invalid_bindings_are_rejected_like_the_interpreter() {
        let program = build_program(
            Target::Simdram,
            Operation::Add,
            8,
            CodegenOptions::optimized(),
        );
        let compiled = CompiledProgram::compile(&program, &costs()).unwrap();
        let mut sa = Subarray::new(&DramConfig::tiny());
        let bad = RowBinding {
            out_base: 4, // overlaps operand A
            ..binding()
        };
        let interp_err = execute::validate_binding(&program, &bad, sa.rows()).unwrap_err();
        let comp_err = compiled.run(&mut sa, &bad, false).unwrap_err();
        assert_eq!(comp_err, interp_err);
    }

    #[test]
    fn fuser_specializes_constant_and_negated_copies() {
        // Constants written to data rows lower to fills; a negated wordline on the
        // destination complements the stored value.
        let mut fuser = Fuser::new(4);
        fuser.aap(MicroRow::Zero, MicroRow::Temp(2)).unwrap();
        // Reading a negated wordline into a data row complements the copy.
        fuser
            .aap(MicroRow::BGroup(BGroupRow::Dcc1N), MicroRow::Output(0))
            .unwrap();
        assert_eq!(
            fuser.finish().0,
            vec![
                RowOp::Fill {
                    dst: RowRef::Data {
                        region: REGION_TEMP,
                        offset: 2
                    },
                    value: false,
                },
                RowOp::CopyInv {
                    src: RowRef::Dcc(1),
                    dst: RowRef::Data {
                        region: REGION_OUT,
                        offset: 0
                    },
                },
            ]
        );
        let mut fuser = Fuser::new(1);
        assert_eq!(
            fuser.aap(MicroRow::InputA(0), MicroRow::BGroup(BGroupRow::C0)),
            Err(UprogError::WriteToConstantRow)
        );
    }

    #[test]
    fn fuser_elides_bgroup_staging_and_defers_restorations() {
        // The canonical Ambit MAJ staging sequence: three copies into T rows, a TRA,
        // and the result copied out. The pass elides all three staging copies and the
        // copy-out reads the majority result straight from the data destination.
        let mut fuser = Fuser::new(5);
        fuser
            .aap(MicroRow::InputA(0), MicroRow::BGroup(BGroupRow::T0))
            .unwrap();
        fuser
            .aap(MicroRow::InputB(0), MicroRow::BGroup(BGroupRow::T1))
            .unwrap();
        fuser
            .aap(MicroRow::One, MicroRow::BGroup(BGroupRow::T2))
            .unwrap();
        fuser
            .tra(
                BGroupRow::T0,
                BGroupRow::T1,
                BGroupRow::T2,
                Some(MicroRow::Temp(0)),
            )
            .unwrap();
        fuser
            .aap(MicroRow::BGroup(BGroupRow::T0), MicroRow::Output(0))
            .unwrap();
        let a = RowRef::Data {
            region: REGION_A,
            offset: 0,
        };
        let b = RowRef::Data {
            region: REGION_B,
            offset: 0,
        };
        let tmp = RowRef::Data {
            region: REGION_TEMP,
            offset: 0,
        };
        let out = RowRef::Data {
            region: REGION_OUT,
            offset: 0,
        };
        let (ops, maj_ordinals, tra_total) = fuser.finish();
        // One majority over the true sources, the copy-out from the deferred
        // restoration, then three end-of-block restorations into T0..T2.
        assert_eq!(ops.len(), 5);
        assert_eq!(maj_ordinals, vec![0]);
        assert_eq!(tra_total, 1);
        assert_eq!(
            ops[0],
            RowOp::MajDirect {
                srcs: [
                    SrcRef::Row {
                        row: a,
                        negated: false
                    },
                    SrcRef::Row {
                        row: b,
                        negated: false
                    },
                    SrcRef::Const(true),
                ],
                dst: Some(WriteRef {
                    row: tmp,
                    negated: false
                }),
            }
        );
        assert_eq!(ops[1], RowOp::Copy { src: tmp, dst: out });
        for (op, t) in ops[2..].iter().zip(0u8..) {
            assert_eq!(
                *op,
                RowOp::Copy {
                    src: tmp,
                    dst: RowRef::T(t)
                }
            );
        }
    }

    #[test]
    fn fuser_rejects_duplicate_tra_rows_and_constant_destinations() {
        let mut fuser = Fuser::new(1);
        assert_eq!(
            fuser.tra(BGroupRow::T0, BGroupRow::T0, BGroupRow::T1, None),
            Err(UprogError::Dram(DramError::DuplicateTraRow))
        );
        assert_eq!(
            fuser.tra(
                BGroupRow::T0,
                BGroupRow::T1,
                BGroupRow::T2,
                Some(MicroRow::BGroup(BGroupRow::C1)),
            ),
            Err(UprogError::WriteToConstantRow)
        );
    }
}
