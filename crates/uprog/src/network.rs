//! A normalized, representation-independent view of a synthesized operation circuit.
//!
//! The μProgram generator does not want to care whether Step 1 produced a MIG (SIMDRAM) or
//! an AIG (the Ambit baseline): in both cases every gate is computed in DRAM with a
//! triple-row activation over three staged fan-ins — a MAJ gate uses its three real fan-ins,
//! while an AND/OR gate uses two fan-ins plus a control row. [`GateNetwork`] normalizes both
//! representations into that common three-fan-in form, preserving topological order.

use simdram_logic::{Aig, AigNode, InputBit, Mig, MigNode, Signal, WordCircuit};

/// The source of a gate fan-in (or of an output bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateInput {
    /// A constant zero/one.
    Const(bool),
    /// A bit of one of the word operands (possibly complemented).
    Operand {
        /// Which operand bit.
        bit: InputBit,
        /// Whether the value is complemented.
        complemented: bool,
    },
    /// The result of an earlier gate in the network (possibly complemented).
    Gate {
        /// Index into [`GateNetwork::gates`].
        index: usize,
        /// Whether the value is complemented.
        complemented: bool,
    },
}

/// One gate of the normalized network: a three-input majority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// The three fan-ins (an AND/OR gate carries a constant as its third fan-in).
    pub fanins: [GateInput; 3],
}

/// A normalized gate network in topological order, plus its output bindings.
#[derive(Debug, Clone)]
pub struct GateNetwork {
    /// Gates in topological order (fan-ins always reference earlier gates).
    pub gates: Vec<Gate>,
    /// One entry per output bit (LSB first), describing where the bit comes from.
    pub outputs: Vec<GateInput>,
}

impl GateNetwork {
    /// Builds the network from a MIG word circuit (the SIMDRAM path).
    pub fn from_mig(circuit: &WordCircuit<Mig>) -> Self {
        let mig = circuit.graph();
        let bindings = circuit.input_bindings();
        let topo = mig.topological_cone(circuit.outputs());
        let mut index_of = std::collections::HashMap::with_capacity(topo.len());
        let mut gates = Vec::with_capacity(topo.len());

        let convert =
            |signal: Signal, index_of: &std::collections::HashMap<u32, usize>| -> GateInput {
                match mig.node(signal.node()) {
                    MigNode::Const0 => GateInput::Const(signal.is_complemented()),
                    MigNode::Input(i) => GateInput::Operand {
                        bit: bindings[i as usize],
                        complemented: signal.is_complemented(),
                    },
                    MigNode::Maj(_) => GateInput::Gate {
                        index: index_of[&signal.node()],
                        complemented: signal.is_complemented(),
                    },
                }
            };

        for node_id in topo {
            if let MigNode::Maj(children) = mig.node(node_id) {
                let fanins = [
                    convert(children[0], &index_of),
                    convert(children[1], &index_of),
                    convert(children[2], &index_of),
                ];
                index_of.insert(node_id, gates.len());
                gates.push(Gate { fanins });
            }
        }
        let outputs = circuit
            .outputs()
            .iter()
            .map(|&s| convert(s, &index_of))
            .collect();
        GateNetwork { gates, outputs }
    }

    /// Builds the network from an AIG word circuit (the Ambit baseline path). Each AND gate
    /// becomes a majority with a constant-zero third fan-in, matching how Ambit computes
    /// AND/OR with a control row.
    pub fn from_aig(circuit: &WordCircuit<Aig>) -> Self {
        let aig = circuit.graph();
        let bindings = circuit.input_bindings();
        let topo = aig.topological_cone(circuit.outputs());
        let mut index_of = std::collections::HashMap::with_capacity(topo.len());
        let mut gates = Vec::with_capacity(topo.len());

        let convert =
            |signal: Signal, index_of: &std::collections::HashMap<u32, usize>| -> GateInput {
                match aig.node(signal.node()) {
                    AigNode::Const0 => GateInput::Const(signal.is_complemented()),
                    AigNode::Input(i) => GateInput::Operand {
                        bit: bindings[i as usize],
                        complemented: signal.is_complemented(),
                    },
                    AigNode::And(_) => GateInput::Gate {
                        index: index_of[&signal.node()],
                        complemented: signal.is_complemented(),
                    },
                }
            };

        for node_id in topo {
            if let AigNode::And(children) = aig.node(node_id) {
                let fanins = [
                    convert(children[0], &index_of),
                    convert(children[1], &index_of),
                    GateInput::Const(false),
                ];
                index_of.insert(node_id, gates.len());
                gates.push(Gate { fanins });
            }
        }
        let outputs = circuit
            .outputs()
            .iter()
            .map(|&s| convert(s, &index_of))
            .collect();
        GateNetwork { gates, outputs }
    }

    /// Number of gates (each corresponds to one TRA in DRAM).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_logic::Operation;

    #[test]
    fn mig_network_matches_circuit_gate_count() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 8);
        let network = GateNetwork::from_mig(&circuit);
        assert_eq!(network.gate_count(), circuit.gate_count());
        assert_eq!(network.outputs.len(), 8);
    }

    #[test]
    fn aig_network_third_fanin_is_constant() {
        let circuit: WordCircuit<Aig> = WordCircuit::synthesize(Operation::Equal, 4);
        let network = GateNetwork::from_aig(&circuit);
        assert_eq!(network.gate_count(), circuit.gate_count());
        for gate in &network.gates {
            assert_eq!(gate.fanins[2], GateInput::Const(false));
        }
        assert_eq!(network.outputs.len(), 1);
    }

    #[test]
    fn gate_fanins_reference_earlier_gates_only() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Mul, 6);
        let network = GateNetwork::from_mig(&circuit);
        for (idx, gate) in network.gates.iter().enumerate() {
            for fanin in gate.fanins {
                if let GateInput::Gate { index, .. } = fanin {
                    assert!(index < idx, "gate {idx} references later gate {index}");
                }
            }
        }
    }

    #[test]
    fn outputs_reference_valid_gates() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Greater, 8);
        let network = GateNetwork::from_mig(&circuit);
        for out in &network.outputs {
            if let GateInput::Gate { index, .. } = out {
                assert!(*index < network.gates.len());
            }
        }
    }
}
