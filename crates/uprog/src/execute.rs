//! Functional execution of μPrograms on the DRAM substrate.
//!
//! The control unit (in `simdram-core`) broadcasts μPrograms across subarrays and banks;
//! this module contains the single-subarray execution kernel it uses, exposed here so the
//! μProgram generator can be tested end-to-end against the substrate without the rest of
//! the framework.

use simdram_dram::{CommandTrace, Subarray};

use crate::error::{Result, UprogError};
use crate::microop::{MicroOp, MicroRow, RowBinding};
use crate::program::MicroProgram;

// The execution kernel below is the unit of work a broadcast executor fans out across
// threads: everything it touches must be safe to move to / share with another thread.
// Enforce that at compile time so a later field addition cannot silently break it.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Subarray>();
    assert_send::<CommandTrace>();
    assert_sync::<MicroProgram>();
    assert_sync::<RowBinding>();
    // Compiled kernels are shared across broadcast threads via `Arc`.
    assert_send::<crate::CompiledProgram>();
    assert_sync::<crate::CompiledProgram>();
};

/// Checks that `binding` places every row the μProgram touches inside the subarray and that
/// the operand, destination and temporary regions do not overlap.
///
/// # Errors
///
/// Returns [`UprogError::InvalidBinding`] describing the first violation found.
pub fn validate_binding(
    program: &MicroProgram,
    binding: &RowBinding,
    subarray_rows: usize,
) -> Result<()> {
    check_binding_regions(
        program.width(),
        program.operation().output_width(program.width()),
        program.temp_rows(),
        program.operation().uses_second_operand(),
        program.operation().uses_predicate(),
        binding,
        subarray_rows,
    )
}

/// The region-shape core of [`validate_binding`], shared with
/// [`crate::CompiledProgram::validate_binding`] so both execution paths enforce — and
/// report — identical constraints. Allocation-free: the region table lives on the stack,
/// keeping the compiled fast path's per-run validation heap-silent.
pub(crate) fn check_binding_regions(
    width: usize,
    out_width: usize,
    temp_rows: usize,
    uses_b: bool,
    uses_pred: bool,
    binding: &RowBinding,
    subarray_rows: usize,
) -> Result<()> {
    let mut regions = [("", 0usize, 0usize); 5];
    let mut used = 0;
    for region in [
        ("operand A", binding.a_base, width),
        ("destination", binding.out_base, out_width),
        ("temporaries", binding.temp_base, temp_rows),
    ] {
        regions[used] = region;
        used += 1;
    }
    if uses_b {
        regions[used] = ("operand B", binding.b_base, width);
        used += 1;
    }
    if uses_pred {
        regions[used] = ("predicate", binding.pred_row, 1);
        used += 1;
    }
    let regions = &regions[..used];

    for &(name, base, len) in regions {
        if len > 0 && base + len > subarray_rows {
            return Err(UprogError::InvalidBinding(format!(
                "{name} rows {base}..{} exceed the subarray's {subarray_rows} data rows",
                base + len
            )));
        }
    }
    for i in 0..regions.len() {
        for j in i + 1..regions.len() {
            let (name_a, base_a, len_a) = regions[i];
            let (name_b, base_b, len_b) = regions[j];
            if len_a == 0 || len_b == 0 {
                continue;
            }
            let overlap = base_a < base_b + len_b && base_b < base_a + len_a;
            if overlap {
                return Err(UprogError::InvalidBinding(format!(
                    "{name_a} rows overlap {name_b} rows"
                )));
            }
        }
    }
    Ok(())
}

/// Executes every μOp of `program` in `subarray` under the given row binding, returning
/// the commands it issued as a self-contained local [`CommandTrace`].
///
/// This is the single-subarray broadcast kernel: a pure `Send`-safe function of
/// `(&MicroProgram, &RowBinding, &mut Subarray)` with no access to any other shared
/// mutable state, so a broadcast executor can run one invocation per subarray on separate
/// threads and merge the returned traces in deterministic chunk order. The subarray's own
/// cumulative trace also records the same AAP/AP sequence, so callers can still
/// cross-check analytic command counts against the functional execution.
///
/// # Errors
///
/// Returns [`UprogError::InvalidBinding`] if the binding does not fit the subarray, or a
/// wrapped [`simdram_dram::DramError`] if a μOp addresses the substrate illegally.
///
/// # Examples
///
/// ```
/// use simdram_dram::{DramConfig, Subarray};
/// use simdram_logic::Operation;
/// use simdram_uprog::{build_program, execute, CodegenOptions, RowBinding, Target};
///
/// let program = build_program(Target::Simdram, Operation::Add, 8, CodegenOptions::optimized());
/// let mut subarray = Subarray::new(&DramConfig::tiny());
/// let binding = RowBinding { a_base: 0, b_base: 8, pred_row: 16, out_base: 17, temp_base: 30 };
/// let trace = execute(&program, &mut subarray, &binding)?;
/// assert_eq!(trace.len(), program.command_count());
/// # Ok::<(), simdram_uprog::UprogError>(())
/// ```
pub fn execute(
    program: &MicroProgram,
    subarray: &mut Subarray,
    binding: &RowBinding,
) -> Result<CommandTrace> {
    validate_binding(program, binding, subarray.rows())?;
    // One trace entry per μOp: reserving up front keeps the per-command path free of
    // mid-execution reallocation (the commands themselves are allocation-free).
    subarray.reserve_trace(program.command_count());
    let mark = subarray.trace_mark();
    for micro in program.ops() {
        match *micro {
            MicroOp::Aap { src, dst } => {
                subarray.aap(src.resolve(binding), dst.resolve(binding))?;
            }
            MicroOp::AapTra { a, b, c, dst } => {
                subarray.aap_tra(a, b, c, dst.resolve(binding))?;
            }
            MicroOp::ApTra { a, b, c } => {
                subarray.ap_tra(a, b, c)?;
            }
        }
    }
    Ok(subarray.trace_since(mark))
}

/// Returns the symbolic rows a μProgram reads before writing (its live-in set). Useful for
/// callers that need to know which rows must be populated before execution.
pub fn live_in_rows(program: &MicroProgram) -> Vec<MicroRow> {
    let mut written: std::collections::HashSet<MicroRow> = std::collections::HashSet::new();
    let mut live_in = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for micro in program.ops() {
        match *micro {
            MicroOp::Aap { src, dst } => {
                if matches!(
                    src,
                    MicroRow::InputA(_) | MicroRow::InputB(_) | MicroRow::Pred
                ) && !written.contains(&src)
                    && seen.insert(src)
                {
                    live_in.push(src);
                }
                written.insert(dst);
            }
            // A TRA writes its destination too (its sources are B-group rows, never
            // operand rows): a row first written by a majority must not count as
            // live-in when a later μOp reads it.
            MicroOp::AapTra { dst, .. } => {
                written.insert(dst);
            }
            MicroOp::ApTra { .. } => {}
        }
    }
    live_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{generate, CodegenOptions};
    use crate::network::GateNetwork;
    use simdram_dram::DramConfig;
    use simdram_logic::{Mig, Operation, WordCircuit};

    fn program_for(op: Operation, width: usize) -> MicroProgram {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, width);
        let network = GateNetwork::from_mig(&circuit);
        generate(&network, op, width, CodegenOptions::optimized())
    }

    fn binding() -> RowBinding {
        RowBinding {
            a_base: 0,
            b_base: 8,
            pred_row: 16,
            out_base: 17,
            temp_base: 30,
        }
    }

    #[test]
    fn binding_outside_subarray_is_rejected() {
        let program = program_for(Operation::Add, 8);
        let bad = RowBinding {
            a_base: 1000,
            ..binding()
        };
        assert!(matches!(
            validate_binding(&program, &bad, 64),
            Err(UprogError::InvalidBinding(_))
        ));
    }

    #[test]
    fn overlapping_regions_are_rejected() {
        let program = program_for(Operation::Add, 8);
        let bad = RowBinding {
            out_base: 4, // overlaps operand A (rows 0..8)
            ..binding()
        };
        assert!(matches!(
            validate_binding(&program, &bad, 64),
            Err(UprogError::InvalidBinding(_))
        ));
    }

    #[test]
    fn valid_binding_passes_and_executes() {
        let program = program_for(Operation::Add, 8);
        let mut subarray = Subarray::new(&DramConfig::tiny());
        let local = execute(&program, &mut subarray, &binding()).unwrap();
        // The functional result is checked by the integration tests; here we only confirm
        // that both the returned local trace and the subarray's cumulative trace match the
        // analytic command count.
        assert_eq!(local.len(), program.command_count());
        assert_eq!(subarray.trace().len(), program.command_count());
    }

    #[test]
    fn repeated_execution_returns_only_the_local_trace() {
        let program = program_for(Operation::Add, 8);
        let mut subarray = Subarray::new(&DramConfig::tiny());
        execute(&program, &mut subarray, &binding()).unwrap();
        let second = execute(&program, &mut subarray, &binding()).unwrap();
        assert_eq!(second.len(), program.command_count());
        assert_eq!(subarray.trace().len(), 2 * program.command_count());
    }

    #[test]
    fn live_in_rows_cover_both_operands() {
        let program = program_for(Operation::Add, 4);
        let live_in = live_in_rows(&program);
        assert!(live_in.iter().any(|r| matches!(r, MicroRow::InputA(_))));
        assert!(live_in.iter().any(|r| matches!(r, MicroRow::InputB(_))));
    }

    #[test]
    fn rows_written_only_by_a_tra_are_not_live_in() {
        // Regression: a majority-first program writes InputA(0) with an AAP-TRA before
        // any read; live_in_rows used to ignore TRA destinations and wrongly report the
        // row as live-in when the later copy read it back.
        use simdram_dram::BGroupRow;
        let ops = vec![
            MicroOp::Aap {
                src: MicroRow::InputB(0),
                dst: MicroRow::BGroup(BGroupRow::T0),
            },
            MicroOp::AapTra {
                a: BGroupRow::T0,
                b: BGroupRow::C0,
                c: BGroupRow::C1,
                dst: MicroRow::InputA(0),
            },
            MicroOp::Aap {
                src: MicroRow::InputA(0),
                dst: MicroRow::Output(0),
            },
        ];
        let program = MicroProgram::new(Operation::Equal, 1, ops, 0);
        let live_in = live_in_rows(&program);
        assert_eq!(live_in, vec![MicroRow::InputB(0)]);
    }
}
