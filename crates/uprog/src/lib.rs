//! # simdram-uprog — Step 2 of the SIMDRAM framework
//!
//! Step 2 takes the MAJ/NOT circuit produced by Step 1 (`simdram-logic`) and turns it into a
//! **μProgram**: the sequence of `AAP`/`AP` DRAM commands — over symbolic operand, result
//! and temporary rows — that computes the operation on vertically laid-out data inside a
//! subarray. This crate provides:
//!
//! * [`MicroOp`]/[`MicroRow`] — the μOp vocabulary and symbolic row names;
//! * [`GateNetwork`] — a representation-independent view of MIG and AIG circuits;
//! * [`generate`]/[`CodegenOptions`] — the operand-to-row mapping and command scheduler,
//!   with the reuse optimizations SIMDRAM applies (and switches to disable them for the
//!   ablation study);
//! * [`MicroProgram`] — the generated program with command counts, latency and energy;
//! * [`MicroProgramLibrary`] — the per-(target, operation, width) cache the control unit
//!   consults, covering both the SIMDRAM and the Ambit baseline targets;
//! * [`execute`] — functional execution of a μProgram on a `simdram-dram` subarray;
//! * [`CompiledProgram`] — the same program lowered once into a specialized word-level
//!   row-op kernel (pre-resolved physical rows, pre-aggregated trace accounting), the
//!   fast functional-execution path selected by the machine's `FunctionalMode`.
//!
//! ## Example
//!
//! ```
//! use simdram_uprog::{build_program, CodegenOptions, Target};
//! use simdram_logic::Operation;
//! use simdram_dram::DramTiming;
//!
//! let add32 = build_program(Target::Simdram, Operation::Add, 32, CodegenOptions::optimized());
//! let ambit_add32 = build_program(Target::Ambit, Operation::Add, 32, CodegenOptions::optimized());
//! assert!(add32.command_count() < ambit_add32.command_count());
//!
//! // One μProgram execution computes 65,536 additions per subarray (one per bitline).
//! let timing = DramTiming::default();
//! let ops_per_sec = add32.throughput_ops_per_sec(&timing, 65_536);
//! assert!(ops_per_sec > 1e9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod compile;
mod dispatch;
mod error;
mod execute;
mod library;
mod microop;
mod network;
mod program;

pub use codegen::{generate, CodegenOptions};
pub use compile::CompiledProgram;
pub use dispatch::{DispatchEntry, DispatchWindow};
pub use error::{Result, UprogError};
pub use execute::{execute, live_in_rows, validate_binding};
pub use library::{build_program, MicroProgramLibrary, Target};
pub use microop::{MicroOp, MicroRow, RowBinding};
pub use network::{Gate, GateInput, GateNetwork};
pub use program::MicroProgram;
