//! μProgram code generation: operand-to-row mapping and AAP/AP scheduling (Step 2).
//!
//! For every gate of the normalized network (see [`GateNetwork`]) the generator emits the
//! Ambit-style command sequence: stage the three fan-ins into the designated rows `T0–T2`
//! (routing complemented fan-ins through a dual-contact-cell row), then issue one `AAP`
//! whose first activation is a triple-row activation, copying the majority into the row that
//! holds the gate's value (a reserved temporary row or directly a destination row).
//!
//! Two optimizations — both enabled by default and controllable for the ablation study —
//! reduce the command count exactly the way SIMDRAM's Step 2 does:
//!
//! * **TRA-row reuse** ([`CodegenOptions::reuse_tra_rows`]): after a TRA, the majority value
//!   is restored into all three designated rows, so a gate that consumes the *previous*
//!   gate's value does not need to stage it again.
//! * **Direct destination write** ([`CodegenOptions::direct_output_write`]): a gate whose
//!   (uncomplemented) value is an output bit writes straight to the destination row instead
//!   of a temporary followed by an extra copy.

use simdram_dram::BGroupRow;
use simdram_logic::{InputBit, Operation};

use crate::microop::{MicroOp, MicroRow};
use crate::network::{GateInput, GateNetwork};
use crate::program::MicroProgram;

/// Options controlling the μProgram generator's optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Reuse the value left in the designated rows by the previous TRA when possible.
    pub reuse_tra_rows: bool,
    /// Write gate results straight to destination rows when the gate drives an output bit.
    pub direct_output_write: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            reuse_tra_rows: true,
            direct_output_write: true,
        }
    }
}

impl CodegenOptions {
    /// The fully optimized configuration (the SIMDRAM default).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// A naive generator with every optimization disabled (used for the ablation study).
    pub fn naive() -> Self {
        CodegenOptions {
            reuse_tra_rows: false,
            direct_output_write: false,
        }
    }
}

/// Where a gate's computed value is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Temp(usize),
    Out(usize),
}

impl Loc {
    fn row(self) -> MicroRow {
        match self {
            Loc::Temp(i) => MicroRow::Temp(i),
            Loc::Out(i) => MicroRow::Output(i),
        }
    }
}

/// Generates the μProgram for `network` (the circuit of `op` at `width` bits).
pub fn generate(
    network: &GateNetwork,
    op: Operation,
    width: usize,
    options: CodegenOptions,
) -> MicroProgram {
    let gate_count = network.gates.len();

    // How many times each gate's *stored* value will be read later.
    let mut remaining_reads = vec![0usize; gate_count];
    for gate in &network.gates {
        for fanin in gate.fanins {
            if let GateInput::Gate { index, .. } = fanin {
                remaining_reads[index] += 1;
            }
        }
    }

    // Decide which gates write directly into a destination row.
    let mut direct_out: Vec<Option<usize>> = vec![None; gate_count];
    let mut out_written_directly = vec![false; network.outputs.len()];
    if options.direct_output_write {
        for (bit, out) in network.outputs.iter().enumerate() {
            if let GateInput::Gate {
                index,
                complemented: false,
            } = out
            {
                if direct_out[*index].is_none() {
                    direct_out[*index] = Some(bit);
                    out_written_directly[bit] = true;
                }
            }
        }
    }
    // The remaining output copies also read the gate's stored value.
    for (bit, out) in network.outputs.iter().enumerate() {
        if out_written_directly[bit] {
            continue;
        }
        if let GateInput::Gate { index, .. } = out {
            remaining_reads[*index] += 1;
        }
    }

    let mut ops: Vec<MicroOp> = Vec::new();
    let mut loc: Vec<Option<Loc>> = vec![None; gate_count];
    let mut free_temps: Vec<usize> = Vec::new();
    let mut next_temp = 0usize;
    // The gate whose value currently occupies T0/T1/T2 (all three, after an AAP-TRA).
    let mut tra_resident: Option<usize> = None;

    let t_rows = [BGroupRow::T0, BGroupRow::T1, BGroupRow::T2];

    let consume_read = |gate: usize,
                        remaining_reads: &mut Vec<usize>,
                        loc: &Vec<Option<Loc>>,
                        free_temps: &mut Vec<usize>| {
        remaining_reads[gate] = remaining_reads[gate].saturating_sub(1);
        if remaining_reads[gate] == 0 {
            if let Some(Loc::Temp(t)) = loc[gate] {
                free_temps.push(t);
            }
        }
    };

    for (gate_index, gate) in network.gates.iter().enumerate() {
        // Stage the fan-ins into T0..T2.
        for (slot, fanin) in gate.fanins.iter().enumerate() {
            if options.reuse_tra_rows {
                if let GateInput::Gate {
                    index,
                    complemented: false,
                } = fanin
                {
                    if Some(*index) == tra_resident {
                        // Already resident in its designated row from the previous TRA.
                        consume_read(*index, &mut remaining_reads, &loc, &mut free_temps);
                        continue;
                    }
                }
            }

            let (src, complemented) = source_row(*fanin, &loc);
            if complemented {
                ops.push(MicroOp::Aap {
                    src,
                    dst: MicroRow::BGroup(BGroupRow::Dcc0),
                });
                ops.push(MicroOp::Aap {
                    src: MicroRow::BGroup(BGroupRow::Dcc0N),
                    dst: MicroRow::BGroup(t_rows[slot]),
                });
            } else {
                ops.push(MicroOp::Aap {
                    src,
                    dst: MicroRow::BGroup(t_rows[slot]),
                });
            }
            if let GateInput::Gate { index, .. } = fanin {
                consume_read(*index, &mut remaining_reads, &loc, &mut free_temps);
            }
        }

        // Choose where the gate's value lives.
        let destination = if let Some(bit) = direct_out[gate_index] {
            Loc::Out(bit)
        } else {
            let temp = free_temps.pop().unwrap_or_else(|| {
                let t = next_temp;
                next_temp += 1;
                t
            });
            Loc::Temp(temp)
        };
        ops.push(MicroOp::AapTra {
            a: BGroupRow::T0,
            b: BGroupRow::T1,
            c: BGroupRow::T2,
            dst: destination.row(),
        });
        loc[gate_index] = Some(destination);
        tra_resident = Some(gate_index);

        // A gate nobody reads (e.g. its only use was the direct output write) can release
        // its temporary immediately.
        if remaining_reads[gate_index] == 0 {
            if let Loc::Temp(t) = destination {
                free_temps.push(t);
            }
        }
    }

    // Copy the remaining output bits into the destination rows.
    for (bit, out) in network.outputs.iter().enumerate() {
        if out_written_directly[bit] {
            continue;
        }
        let dst = MicroRow::Output(bit);
        let (src, complemented) = source_row(*out, &loc);
        if complemented {
            ops.push(MicroOp::Aap {
                src,
                dst: MicroRow::BGroup(BGroupRow::Dcc0),
            });
            ops.push(MicroOp::Aap {
                src: MicroRow::BGroup(BGroupRow::Dcc0N),
                dst,
            });
        } else {
            ops.push(MicroOp::Aap { src, dst });
        }
        if let GateInput::Gate { index, .. } = out {
            consume_read(*index, &mut remaining_reads, &loc, &mut free_temps);
        }
    }

    MicroProgram::new(op, width, ops, next_temp)
}

/// Resolves a fan-in to the symbolic row holding its (uncomplemented) value, plus a flag
/// telling the caller whether the value must be routed through a DCC row to complement it.
fn source_row(input: GateInput, loc: &[Option<Loc>]) -> (MicroRow, bool) {
    match input {
        GateInput::Const(false) => (MicroRow::Zero, false),
        GateInput::Const(true) => (MicroRow::One, false),
        GateInput::Operand { bit, complemented } => {
            let row = match bit {
                InputBit::A(i) => MicroRow::InputA(i),
                InputBit::B(i) => MicroRow::InputB(i),
                InputBit::Pred => MicroRow::Pred,
            };
            (row, complemented)
        }
        GateInput::Gate {
            index,
            complemented,
        } => {
            let stored = loc[index].expect("gate value read before it was computed");
            (stored.row(), complemented)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::GateNetwork;
    use simdram_logic::{Aig, Mig, WordCircuit};

    fn mig_program(op: Operation, width: usize, options: CodegenOptions) -> MicroProgram {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, width);
        let network = GateNetwork::from_mig(&circuit);
        generate(&network, op, width, options)
    }

    #[test]
    fn every_gate_becomes_one_tra() {
        for op in [
            Operation::Add,
            Operation::Mul,
            Operation::Equal,
            Operation::Relu,
        ] {
            let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, 8);
            let network = GateNetwork::from_mig(&circuit);
            let program = generate(&network, op, 8, CodegenOptions::naive());
            assert_eq!(program.tra_count(), network.gate_count(), "{op}");
        }
    }

    #[test]
    fn optimizations_reduce_command_count() {
        for op in [
            Operation::Add,
            Operation::Sub,
            Operation::Mul,
            Operation::BitCount,
        ] {
            let naive = mig_program(op, 16, CodegenOptions::naive());
            let optimized = mig_program(op, 16, CodegenOptions::optimized());
            assert!(
                optimized.command_count() < naive.command_count(),
                "{op}: optimized {} >= naive {}",
                optimized.command_count(),
                naive.command_count()
            );
            // Optimizations never change the amount of majority computation.
            assert_eq!(optimized.tra_count(), naive.tra_count());
        }
    }

    #[test]
    fn simdram_needs_fewer_commands_than_ambit_for_addition() {
        let op = Operation::Add;
        let mig_prog = mig_program(op, 32, CodegenOptions::optimized());
        let aig_circuit: WordCircuit<Aig> = WordCircuit::synthesize(op, 32);
        let aig_net = GateNetwork::from_aig(&aig_circuit);
        let ambit_prog = generate(&aig_net, op, 32, CodegenOptions::optimized());
        assert!(
            mig_prog.command_count() * 2 < ambit_prog.command_count(),
            "expected ≥2× command reduction: SIMDRAM {} vs Ambit {}",
            mig_prog.command_count(),
            ambit_prog.command_count()
        );
    }

    #[test]
    fn temp_rows_stay_within_a_reasonable_budget() {
        for op in Operation::ALL {
            let program = mig_program(op, 16, CodegenOptions::optimized());
            assert!(
                program.temp_rows() <= 80,
                "{op} needs {} temporary rows",
                program.temp_rows()
            );
        }
    }

    #[test]
    fn all_microops_are_valid() {
        for op in Operation::ALL {
            for options in [CodegenOptions::naive(), CodegenOptions::optimized()] {
                let program = mig_program(op, 8, options);
                for micro in program.ops() {
                    micro.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn wider_operands_need_more_commands() {
        let narrow = mig_program(Operation::Add, 8, CodegenOptions::optimized());
        let wide = mig_program(Operation::Add, 32, CodegenOptions::optimized());
        assert!(wide.command_count() > narrow.command_count());
        assert!(wide.tra_count() > narrow.tra_count());
    }
}
