//! The μProgram library: Step 1 + Step 2 results cached per (target, operation, width).
//!
//! In a real system the μPrograms are generated once (offline, by the framework's
//! programming interface) and stored in a small memory inside the memory controller; the
//! bbop instructions then simply name an operation and the control unit looks the μProgram
//! up. [`MicroProgramLibrary`] plays that role in the simulator.

use std::collections::HashMap;
use std::sync::Arc;

use simdram_dram::CommandCosts;
use simdram_logic::{Aig, Mig, Operation, WordCircuit};

use crate::codegen::{generate, CodegenOptions};
use crate::compile::CompiledProgram;
use crate::error::Result;
use crate::network::GateNetwork;
use crate::program::MicroProgram;

/// Which substrate programming style a μProgram targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// SIMDRAM: MAJ/NOT implementation (majority-inverter graph).
    Simdram,
    /// Ambit baseline: AND/OR/NOT implementation (and-inverter graph).
    Ambit,
}

/// A cache of generated μPrograms keyed by target, operation and operand width.
///
/// Alongside the symbolic μPrograms the library caches their [`CompiledProgram`] forms
/// (see [`MicroProgramLibrary::get_or_compile`]): each program is lowered **once**, at
/// first request, into a pre-resolved word-level row-op kernel shared via `Arc` so every
/// broadcast chunk runs the same compiled artifact without re-lowering or cloning it.
#[derive(Debug, Default)]
pub struct MicroProgramLibrary {
    options: CodegenOptions,
    cache: HashMap<(Target, Operation, usize), MicroProgram>,
    /// Compiled kernels, keyed like `cache`. Cost templates are supplied by the caller
    /// and must be stable per library (the control unit derives them from the machine's
    /// one DRAM config), so the key does not include them.
    compiled: HashMap<(Target, Operation, usize), Arc<CompiledProgram>>,
}

impl MicroProgramLibrary {
    /// Creates a library using the default (fully optimized) code generator options.
    pub fn new() -> Self {
        Self::with_options(CodegenOptions::optimized())
    }

    /// Creates a library with explicit code generator options (used for the ablation study).
    pub fn with_options(options: CodegenOptions) -> Self {
        MicroProgramLibrary {
            options,
            cache: HashMap::new(),
            compiled: HashMap::new(),
        }
    }

    /// The code generator options used by this library.
    pub fn options(&self) -> CodegenOptions {
        self.options
    }

    /// Returns the μProgram for `(target, op, width)`, generating and caching it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64 (propagated from circuit synthesis).
    pub fn get_or_build(&mut self, target: Target, op: Operation, width: usize) -> &MicroProgram {
        let options = self.options;
        self.cache
            .entry((target, op, width))
            .or_insert_with(|| build_program(target, op, width, options))
    }

    /// Compile entry point for whole-plan execution: ensures every `(op, width)` pair a
    /// compiled plan needs has a resident μProgram, generating the missing ones in one
    /// pass. Returns how many programs were newly built (duplicates in `ops` are
    /// harmless).
    ///
    /// The control unit calls this before issuing a plan's first batch, mirroring the
    /// paper's offline programming flow: μPrograms are generated once and stored in the
    /// controller's program memory, and execution then only performs lookups.
    pub fn preload(
        &mut self,
        target: Target,
        ops: impl IntoIterator<Item = (Operation, usize)>,
    ) -> usize {
        let before = self.cache.len();
        for (op, width) in ops {
            self.get_or_build(target, op, width);
        }
        self.cache.len() - before
    }

    /// Returns the compiled form of `(target, op, width)`, lowering (and, if needed,
    /// generating) the μProgram on first use and returning the cached `Arc` afterwards.
    ///
    /// `costs` must describe the DRAM config of the subarrays the program will run in
    /// and must be the same on every call for a given library — the control unit
    /// guarantees both by deriving one [`CommandCosts`] from the machine's config.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::UprogError`] from compilation (malformed μOps; never produced
    /// by the generator).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64 (propagated from circuit synthesis).
    pub fn get_or_compile(
        &mut self,
        target: Target,
        op: Operation,
        width: usize,
        costs: &CommandCosts,
    ) -> Result<Arc<CompiledProgram>> {
        let key = (target, op, width);
        if let Some(compiled) = self.compiled.get(&key) {
            return Ok(Arc::clone(compiled));
        }
        let compiled = Arc::new(CompiledProgram::compile(
            self.get_or_build(target, op, width),
            costs,
        )?);
        self.compiled.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Compiled counterpart of [`MicroProgramLibrary::preload`]: ensures every `(op,
    /// width)` pair has a resident compiled kernel, returning how many were newly
    /// lowered.
    ///
    /// # Errors
    ///
    /// Propagates the first compilation failure (see
    /// [`MicroProgramLibrary::get_or_compile`]).
    pub fn preload_compiled(
        &mut self,
        target: Target,
        ops: impl IntoIterator<Item = (Operation, usize)>,
        costs: &CommandCosts,
    ) -> Result<usize> {
        let before = self.compiled.len();
        for (op, width) in ops {
            self.get_or_compile(target, op, width, costs)?;
        }
        Ok(self.compiled.len() - before)
    }

    /// Number of compiled kernels currently cached.
    pub fn compiled_len(&self) -> usize {
        self.compiled.len()
    }

    /// Number of μPrograms currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if nothing has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Generates a μProgram without caching (convenience for one-off use in benches and tests).
pub fn build_program(
    target: Target,
    op: Operation,
    width: usize,
    options: CodegenOptions,
) -> MicroProgram {
    match target {
        Target::Simdram => {
            let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, width);
            let network = GateNetwork::from_mig(&circuit);
            generate(&network, op, width, options)
        }
        Target::Ambit => {
            let circuit: WordCircuit<Aig> = WordCircuit::synthesize(op, width);
            let network = GateNetwork::from_aig(&circuit);
            generate(&network, op, width, options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_identical_programs() {
        let mut lib = MicroProgramLibrary::new();
        let first = lib
            .get_or_build(Target::Simdram, Operation::Add, 8)
            .command_count();
        let second = lib
            .get_or_build(Target::Simdram, Operation::Add, 8)
            .command_count();
        assert_eq!(first, second);
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
    }

    #[test]
    fn preload_builds_each_missing_program_once() {
        let mut lib = MicroProgramLibrary::new();
        let built = lib.preload(
            Target::Simdram,
            [
                (Operation::Add, 8),
                (Operation::Sub, 8),
                (Operation::Add, 8),
            ],
        );
        assert_eq!(built, 2);
        assert_eq!(lib.len(), 2);
        // A second preload over the same set builds nothing.
        assert_eq!(lib.preload(Target::Simdram, [(Operation::Add, 8)]), 0);
    }

    #[test]
    fn compiled_kernels_are_cached_and_shared() {
        use simdram_dram::DramConfig;
        let costs = CommandCosts::new(&DramConfig::tiny());
        let mut lib = MicroProgramLibrary::new();
        let first = lib
            .get_or_compile(Target::Simdram, Operation::Add, 8, &costs)
            .unwrap();
        let second = lib
            .get_or_compile(Target::Simdram, Operation::Add, 8, &costs)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(lib.compiled_len(), 1);
        // Compiling also populates the symbolic cache.
        assert_eq!(lib.len(), 1);
        let newly = lib
            .preload_compiled(
                Target::Simdram,
                [(Operation::Add, 8), (Operation::Sub, 8)],
                &costs,
            )
            .unwrap();
        assert_eq!(newly, 1);
        assert_eq!(lib.compiled_len(), 2);
    }

    #[test]
    fn targets_are_cached_separately() {
        let mut lib = MicroProgramLibrary::new();
        lib.get_or_build(Target::Simdram, Operation::Add, 8);
        lib.get_or_build(Target::Ambit, Operation::Add, 8);
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn simdram_beats_ambit_across_the_operation_set() {
        // The headline Table-1 trend: the MAJ/NOT μProgram never needs more commands than
        // the AND/OR/NOT μProgram.
        let mut lib = MicroProgramLibrary::new();
        for op in Operation::ALL {
            let simdram = lib.get_or_build(Target::Simdram, op, 16).command_count();
            let ambit = lib.get_or_build(Target::Ambit, op, 16).command_count();
            assert!(
                simdram <= ambit,
                "{op}: SIMDRAM {simdram} commands > Ambit {ambit}"
            );
        }
    }

    #[test]
    fn ablation_options_are_honoured() {
        let mut optimized = MicroProgramLibrary::new();
        let mut naive = MicroProgramLibrary::with_options(CodegenOptions::naive());
        let a = optimized
            .get_or_build(Target::Simdram, Operation::Mul, 8)
            .command_count();
        let b = naive
            .get_or_build(Target::Simdram, Operation::Mul, 8)
            .command_count();
        assert!(a < b);
        assert_eq!(naive.options(), CodegenOptions::naive());
    }
}
