//! μOps: the DRAM-command-level instructions that make up a μProgram.
//!
//! A SIMDRAM μProgram is a sequence of `AAP`/`AP` commands over *symbolic* row names:
//! operand bit-rows, result bit-rows, reserved temporary rows and the B-group compute rows.
//! The symbolic names are resolved to physical row addresses by a [`RowBinding`] when the
//! control unit executes the μProgram in a concrete subarray, which is what lets one
//! μProgram be reused for any operand location (and broadcast across subarrays).

use simdram_dram::{BGroupRow, RowAddr};

use crate::error::{Result, UprogError};

/// A symbolic row referenced by a μOp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroRow {
    /// Bit `i` (LSB = 0) of the first source operand.
    InputA(usize),
    /// Bit `i` (LSB = 0) of the second source operand.
    InputB(usize),
    /// The 1-bit predicate row.
    Pred,
    /// Bit `i` (LSB = 0) of the destination operand.
    Output(usize),
    /// Reserved temporary row `i` (intermediate MIG/AIG node values).
    Temp(usize),
    /// The all-zeros control row (`C0`).
    Zero,
    /// The all-ones control row (`C1`).
    One,
    /// A compute row of the B-group (designated TRA rows, DCC rows).
    BGroup(BGroupRow),
}

/// The physical placement of a μProgram's symbolic rows inside one subarray.
///
/// All bases are data-row indices; operand bit `i` lives at `base + i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBinding {
    /// First row of operand A.
    pub a_base: usize,
    /// First row of operand B (ignored if the operation has no second operand).
    pub b_base: usize,
    /// Row holding the 1-bit predicate (ignored if unused).
    pub pred_row: usize,
    /// First row of the destination.
    pub out_base: usize,
    /// First reserved (temporary) row.
    pub temp_base: usize,
}

impl MicroRow {
    /// Resolves the symbolic row to a physical subarray row address under `binding`.
    pub fn resolve(self, binding: &RowBinding) -> RowAddr {
        match self {
            MicroRow::InputA(i) => RowAddr::Data(binding.a_base + i),
            MicroRow::InputB(i) => RowAddr::Data(binding.b_base + i),
            MicroRow::Pred => RowAddr::Data(binding.pred_row),
            MicroRow::Output(i) => RowAddr::Data(binding.out_base + i),
            MicroRow::Temp(i) => RowAddr::Data(binding.temp_base + i),
            MicroRow::Zero => RowAddr::BGroup(BGroupRow::C0),
            MicroRow::One => RowAddr::BGroup(BGroupRow::C1),
            MicroRow::BGroup(b) => RowAddr::BGroup(b),
        }
    }
}

/// One μOp of a μProgram.
///
/// The three variants correspond to the command templates of the substrate: plain copies
/// (`AAP`), majority computation with the result copied out (`AAP` whose first activation is
/// a TRA), and in-place majority computation (`AP` with a TRA address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Copy `src` into `dst` through the sense amplifiers.
    Aap {
        /// Source row.
        src: MicroRow,
        /// Destination row.
        dst: MicroRow,
    },
    /// Triple-row activation over three B-group rows, copying the majority into `dst`.
    AapTra {
        /// First TRA participant.
        a: BGroupRow,
        /// Second TRA participant.
        b: BGroupRow,
        /// Third TRA participant.
        c: BGroupRow,
        /// Destination row for the majority value.
        dst: MicroRow,
    },
    /// Triple-row activation over three B-group rows, leaving the majority in those rows.
    ApTra {
        /// First TRA participant.
        a: BGroupRow,
        /// Second TRA participant.
        b: BGroupRow,
        /// Third TRA participant.
        c: BGroupRow,
    },
}

impl MicroOp {
    /// Returns `true` if this μOp issues an `AAP` command (as opposed to a bare `AP`).
    pub fn is_aap(self) -> bool {
        matches!(self, MicroOp::Aap { .. } | MicroOp::AapTra { .. })
    }

    /// Returns `true` if this μOp performs a triple-row activation.
    pub fn is_tra(self) -> bool {
        matches!(self, MicroOp::AapTra { .. } | MicroOp::ApTra { .. })
    }

    /// Validates that the μOp only writes to writable rows (not the control rows).
    ///
    /// # Errors
    ///
    /// Returns [`UprogError::WriteToConstantRow`] when the destination is `C0`/`C1`.
    pub fn validate(self) -> Result<()> {
        let dst = match self {
            MicroOp::Aap { dst, .. } | MicroOp::AapTra { dst, .. } => Some(dst),
            MicroOp::ApTra { .. } => None,
        };
        if let Some(MicroRow::Zero | MicroRow::One) = dst {
            return Err(UprogError::WriteToConstantRow);
        }
        if let Some(MicroRow::BGroup(b)) = dst {
            if b.is_control() {
                return Err(UprogError::WriteToConstantRow);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binding() -> RowBinding {
        RowBinding {
            a_base: 0,
            b_base: 8,
            pred_row: 16,
            out_base: 24,
            temp_base: 32,
        }
    }

    #[test]
    fn resolution_offsets_by_bit_index() {
        let b = binding();
        assert_eq!(MicroRow::InputA(3).resolve(&b), RowAddr::Data(3));
        assert_eq!(MicroRow::InputB(2).resolve(&b), RowAddr::Data(10));
        assert_eq!(MicroRow::Pred.resolve(&b), RowAddr::Data(16));
        assert_eq!(MicroRow::Output(0).resolve(&b), RowAddr::Data(24));
        assert_eq!(MicroRow::Temp(5).resolve(&b), RowAddr::Data(37));
        assert_eq!(MicroRow::Zero.resolve(&b), RowAddr::BGroup(BGroupRow::C0));
        assert_eq!(MicroRow::One.resolve(&b), RowAddr::BGroup(BGroupRow::C1));
        assert_eq!(
            MicroRow::BGroup(BGroupRow::T2).resolve(&b),
            RowAddr::BGroup(BGroupRow::T2)
        );
    }

    #[test]
    fn command_classification() {
        let aap = MicroOp::Aap {
            src: MicroRow::InputA(0),
            dst: MicroRow::BGroup(BGroupRow::T0),
        };
        let aap_tra = MicroOp::AapTra {
            a: BGroupRow::T0,
            b: BGroupRow::T1,
            c: BGroupRow::T2,
            dst: MicroRow::Temp(0),
        };
        let ap_tra = MicroOp::ApTra {
            a: BGroupRow::T0,
            b: BGroupRow::T1,
            c: BGroupRow::T2,
        };
        assert!(aap.is_aap() && !aap.is_tra());
        assert!(aap_tra.is_aap() && aap_tra.is_tra());
        assert!(!ap_tra.is_aap() && ap_tra.is_tra());
    }

    #[test]
    fn writing_to_control_rows_is_rejected() {
        let bad = MicroOp::Aap {
            src: MicroRow::InputA(0),
            dst: MicroRow::Zero,
        };
        assert_eq!(bad.validate(), Err(UprogError::WriteToConstantRow));
        let good = MicroOp::Aap {
            src: MicroRow::Zero,
            dst: MicroRow::Output(0),
        };
        assert!(good.validate().is_ok());
    }
}
