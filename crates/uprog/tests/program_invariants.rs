//! Structural invariants every generated μProgram must satisfy, checked across the whole
//! operation set, both targets and several widths.

use simdram_dram::BGroupRow;
use simdram_logic::Operation;
use simdram_uprog::{
    build_program, live_in_rows, CodegenOptions, MicroOp, MicroProgram, MicroRow, Target,
};

fn all_programs(width: usize) -> Vec<(Target, Operation, MicroProgram)> {
    let mut programs = Vec::new();
    for target in [Target::Simdram, Target::Ambit] {
        for op in Operation::ALL {
            programs.push((
                target,
                op,
                build_program(target, op, width, CodegenOptions::optimized()),
            ));
        }
    }
    programs
}

#[test]
fn every_tra_is_preceded_by_stages_into_its_designated_rows() {
    // Before the first TRA of a μProgram, all three designated rows it activates must have
    // been written by an AAP (otherwise the majority would read stale data).
    for (target, op, program) in all_programs(8) {
        let mut written: Vec<BGroupRow> = Vec::new();
        let mut first_tra_seen = false;
        for micro in program.ops() {
            match *micro {
                MicroOp::Aap {
                    dst: MicroRow::BGroup(b),
                    ..
                } => written.push(b),
                MicroOp::AapTra { a, b, c, .. } | MicroOp::ApTra { a, b, c } if !first_tra_seen => {
                    for row in [a, b, c] {
                        assert!(
                            written.contains(&row) || row.is_control(),
                            "{target:?} {op}: first TRA reads un-staged row {row:?}"
                        );
                    }
                    first_tra_seen = true;
                }
                _ => {}
            }
        }
    }
}

#[test]
fn programs_never_write_control_rows_and_every_op_validates() {
    for (target, op, program) in all_programs(16) {
        for micro in program.ops() {
            micro
                .validate()
                .unwrap_or_else(|e| panic!("{target:?} {op}: invalid μOp {micro:?}: {e}"));
        }
    }
}

#[test]
fn live_in_rows_are_limited_to_declared_operands() {
    for (target, op, program) in all_programs(8) {
        for row in live_in_rows(&program) {
            match row {
                MicroRow::InputA(bit) => assert!(bit < 8, "{target:?} {op}: A bit {bit}"),
                MicroRow::InputB(bit) => {
                    assert!(op.uses_second_operand(), "{target:?} {op} reads operand B");
                    assert!(bit < 8);
                }
                MicroRow::Pred => assert!(op.uses_predicate(), "{target:?} {op} reads a predicate"),
                other => panic!("{target:?} {op}: unexpected live-in row {other:?}"),
            }
        }
    }
}

#[test]
fn every_output_bit_is_written_exactly_where_expected() {
    for (target, op, program) in all_programs(8) {
        let out_width = op.output_width(8);
        let mut written = vec![false; out_width];
        for micro in program.ops() {
            if let MicroOp::Aap {
                dst: MicroRow::Output(bit),
                ..
            }
            | MicroOp::AapTra {
                dst: MicroRow::Output(bit),
                ..
            } = *micro
            {
                assert!(bit < out_width, "{target:?} {op}: writes output bit {bit}");
                written[bit] = true;
            }
        }
        assert!(
            written.iter().all(|&w| w),
            "{target:?} {op}: some output bits are never written: {written:?}"
        );
    }
}

#[test]
fn temporary_row_requirements_fit_the_default_reserved_region() {
    let reserved = simdram_dram::DramConfig::default().reserved_rows;
    for width in [8, 16, 32] {
        for (target, op, program) in all_programs(width) {
            assert!(
                program.temp_rows() <= reserved,
                "{target:?} {op} at {width} bits needs {} temporaries (> {reserved} reserved)",
                program.temp_rows()
            );
        }
    }
}

#[test]
fn command_counts_grow_monotonically_with_width_for_arithmetic() {
    for op in [
        Operation::Add,
        Operation::Sub,
        Operation::Mul,
        Operation::Div,
    ] {
        let mut previous = 0;
        for width in [4, 8, 16, 32] {
            let program = build_program(Target::Simdram, op, width, CodegenOptions::optimized());
            assert!(
                program.command_count() > previous,
                "{op}: commands did not grow from width {width}",
            );
            previous = program.command_count();
        }
    }
}
