//! Enforces the compiled fast path's zero-allocation invariant: once a μProgram has been
//! lowered into a [`CompiledProgram`] and the subarray's trace capacity is reserved,
//! running the kernel — with or without history, with or without a reused local trace —
//! must not touch the heap at all. Compilation itself may allocate (it happens once, at
//! library insertion), which is exactly the trade the fast-functional mode makes.
//!
//! The whole check lives in a single `#[test]` so the global allocation counter is not
//! perturbed by concurrently running tests in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use simdram_dram::{CommandCosts, CommandTrace, DramConfig, Subarray};
use simdram_logic::Operation;
use simdram_uprog::{build_program, CodegenOptions, CompiledProgram, RowBinding, Target};

struct CountingAllocator;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn compiled_execution_never_allocates() {
    let config = DramConfig::default();
    let costs = CommandCosts::new(&config);
    let program = build_program(
        Target::Simdram,
        Operation::Add,
        8,
        CodegenOptions::optimized(),
    );
    let compiled = CompiledProgram::compile(&program, &costs).unwrap();
    let binding = RowBinding {
        a_base: 0,
        b_base: 8,
        pred_row: 16,
        out_base: 17,
        temp_base: 30,
    };

    let mut sa = Subarray::new(&config);
    let mut local = CommandTrace::new();

    // Warm every measured path once: the subarray's cost table registers the program's
    // command shapes, the reused local trace grows to its final capacity, and any lazy
    // platform setup happens outside the measured window.
    compiled.execute_in(&mut sa, &binding, true).unwrap();
    compiled.execute_in(&mut sa, &binding, false).unwrap();
    compiled
        .run_into(&mut sa, &binding, true, &mut local)
        .unwrap();
    compiled
        .run_into(&mut sa, &binding, false, &mut local)
        .unwrap();

    const ROUNDS: usize = 4;
    const ATTEMPTS: usize = 5;
    // 3 compiled runs per round record into the cumulative trace; only the with_history
    // ones retain per-command history.
    let runs_per_round = 3;

    // The allocation counter is process-global, so a runtime thread can allocate during
    // the measured window and produce a spurious non-zero count. The datapath itself is
    // deterministic: if ANY attempt observes zero allocations, every allocation seen by
    // other attempts came from outside the datapath.
    let mut best = usize::MAX;
    let mut len_at_attempt_start = 0;
    for _ in 0..ATTEMPTS {
        sa.drain_trace();
        sa.reserve_trace(compiled.command_count() * runs_per_round * ROUNDS);
        len_at_attempt_start = sa.trace().len();
        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        for _ in 0..ROUNDS {
            compiled.execute_in(&mut sa, &binding, false).unwrap();
            compiled.execute_in(&mut sa, &binding, true).unwrap();
            compiled
                .run_into(&mut sa, &binding, false, &mut local)
                .unwrap();
        }
        best = best.min(ALLOC_CALLS.load(Ordering::SeqCst) - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best,
        0,
        "compiled execution must not allocate after warmup (best attempt saw {best} \
         allocations across {} runs)",
        runs_per_round * ROUNDS
    );

    // The measured runs really happened: cumulative counts grew by all of them, history
    // retained only the sampled (with_history) applications, and the reused local trace
    // matches the program's analytic command count.
    assert_eq!(
        sa.trace().len() - len_at_attempt_start,
        compiled.command_count() * runs_per_round * ROUNDS
    );
    assert_eq!(sa.trace().history_len(), compiled.command_count() * ROUNDS);
    assert_eq!(local.len(), compiled.command_count());
}
