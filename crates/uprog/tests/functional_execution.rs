//! End-to-end functional verification of generated μPrograms.
//!
//! For every operation and several widths, the μProgram is executed on a real (simulated)
//! subarray with operands laid out vertically, and each SIMD lane's result is compared
//! against the scalar reference semantics. This closes the loop between Step 1 (circuits),
//! Step 2 (μPrograms) and the DRAM substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_dram::{BitRow, DramConfig, RowAddr, Subarray};
use simdram_logic::{word_mask, Operation};
use simdram_uprog::{build_program, execute, CodegenOptions, MicroProgram, RowBinding, Target};

/// Writes one vertically laid-out operand: bit `b` of lane `l` goes to row `base + b`,
/// column `l`.
fn write_vertical(subarray: &mut Subarray, base: usize, width: usize, values: &[u64]) {
    let columns = subarray.columns();
    for bit in 0..width {
        let row = BitRow::from_fn(columns, |lane| {
            lane < values.len() && (values[lane] >> bit) & 1 == 1
        });
        subarray.poke(RowAddr::Data(base + bit), &row).unwrap();
    }
}

/// Reads a vertically laid-out result back into per-lane integers.
fn read_vertical(subarray: &Subarray, base: usize, width: usize, lanes: usize) -> Vec<u64> {
    let mut values = vec![0u64; lanes];
    for bit in 0..width {
        let row = subarray.peek(RowAddr::Data(base + bit)).unwrap();
        for (lane, value) in values.iter_mut().enumerate() {
            if row.get(lane) {
                *value |= 1 << bit;
            }
        }
    }
    values
}

fn binding_for(program: &MicroProgram) -> RowBinding {
    let width = program.width();
    RowBinding {
        a_base: 0,
        b_base: width,
        pred_row: 2 * width,
        out_base: 2 * width + 1,
        temp_base: 2 * width + 1 + program.operation().output_width(width),
    }
}

fn run_operation(
    target: Target,
    op: Operation,
    width: usize,
    a: &[u64],
    b: &[u64],
    pred: &[bool],
) -> Vec<u64> {
    let program = build_program(target, op, width, CodegenOptions::optimized());
    let config = DramConfig::tiny();
    let mut subarray = Subarray::new(&config);
    let binding = binding_for(&program);

    write_vertical(&mut subarray, binding.a_base, width, a);
    if op.uses_second_operand() {
        write_vertical(&mut subarray, binding.b_base, width, b);
    }
    if op.uses_predicate() {
        let pred_values: Vec<u64> = pred.iter().map(|&p| u64::from(p)).collect();
        write_vertical(&mut subarray, binding.pred_row, 1, &pred_values);
    }

    execute(&program, &mut subarray, &binding).unwrap();
    read_vertical(&subarray, binding.out_base, op.output_width(width), a.len())
}

fn check_against_reference(target: Target, op: Operation, width: usize, lanes: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = word_mask(width);
    let a: Vec<u64> = (0..lanes).map(|_| rng.random::<u64>() & mask).collect();
    let b: Vec<u64> = (0..lanes).map(|_| rng.random::<u64>() & mask).collect();
    let pred: Vec<bool> = (0..lanes).map(|_| rng.random::<bool>()).collect();

    let results = run_operation(target, op, width, &a, &b, &pred);
    for lane in 0..lanes {
        let expected = op.reference(width, a[lane], b[lane], pred[lane]);
        assert_eq!(
            results[lane], expected,
            "{target:?} {op} width={width} lane={lane}: a={} b={} pred={}",
            a[lane], b[lane], pred[lane]
        );
    }
}

#[test]
fn simdram_microprograms_compute_all_operations_width_8() {
    for op in Operation::ALL {
        check_against_reference(Target::Simdram, op, 8, 64, 0xC0FFEE);
    }
}

#[test]
fn ambit_microprograms_compute_all_operations_width_8() {
    for op in Operation::ALL {
        check_against_reference(Target::Ambit, op, 8, 64, 0xBEEF);
    }
}

#[test]
fn simdram_microprograms_compute_all_operations_width_16() {
    for op in Operation::ALL {
        check_against_reference(Target::Simdram, op, 16, 48, 0x5EED);
    }
}

#[test]
fn simdram_addition_width_32_matches_reference() {
    check_against_reference(Target::Simdram, Operation::Add, 32, 32, 0xABCD);
}

#[test]
fn naive_and_optimized_programs_compute_identical_results() {
    let op = Operation::Mul;
    let width = 8;
    let a: Vec<u64> = (0..32).map(|i| (i * 37 + 11) & 0xFF).collect();
    let b: Vec<u64> = (0..32).map(|i| (i * 91 + 3) & 0xFF).collect();
    let pred = vec![false; 32];

    let mut results = Vec::new();
    for options in [CodegenOptions::naive(), CodegenOptions::optimized()] {
        let program = build_program(Target::Simdram, op, width, options);
        let config = DramConfig::tiny();
        let mut subarray = Subarray::new(&config);
        let binding = binding_for(&program);
        write_vertical(&mut subarray, binding.a_base, width, &a);
        write_vertical(&mut subarray, binding.b_base, width, &b);
        execute(&program, &mut subarray, &binding).unwrap();
        results.push(read_vertical(&subarray, binding.out_base, width, 32));
    }
    assert_eq!(results[0], results[1]);
    for (lane, value) in results[0].iter().enumerate() {
        assert_eq!(*value, op.reference(width, a[lane], b[lane], false));
    }
    let _ = pred;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_lanes_match_reference_for_arithmetic(seed: u64) {
        for op in [Operation::Add, Operation::Sub, Operation::Greater, Operation::Max] {
            check_against_reference(Target::Simdram, op, 8, 32, seed);
        }
    }
}
