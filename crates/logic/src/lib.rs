//! # simdram-logic — Step 1 of the SIMDRAM framework
//!
//! SIMDRAM's first step turns a desired operation into an efficient **MAJ/NOT**
//! representation, because the DRAM substrate natively computes three-input majority
//! (triple-row activation) and NOT (dual-contact cells). This crate provides:
//!
//! * [`Mig`] — majority-inverter graphs with eager simplification and structural hashing,
//!   the output representation of Step 1;
//! * [`Aig`] — and-inverter graphs, the AND/OR/NOT representation used by the Ambit
//!   baseline the paper compares against;
//! * [`LogicBuilder`] — a builder trait both graphs implement, so that the word-level
//!   operation generators in [`ops`] produce *functionally identical* circuits for both
//!   targets;
//! * [`Operation`] — the paper's 16-operation set with scalar reference semantics;
//! * [`WordCircuit`] — a synthesized operation (graph + port bindings + statistics), the
//!   object handed to Step 2 (the μProgram generator in `simdram-uprog`).
//!
//! ## Example
//!
//! ```
//! use simdram_logic::{Aig, Mig, Operation, WordCircuit};
//!
//! // Step 1: derive the MAJ/NOT implementation of 16-bit addition...
//! let simdram_add: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 16);
//! // ...and the AND/OR/NOT implementation Ambit would use.
//! let ambit_add: WordCircuit<Aig> = WordCircuit::synthesize(Operation::Add, 16);
//!
//! // Both compute the same function…
//! assert_eq!(simdram_add.eval_scalar(1000, 2345, false),
//!            ambit_add.eval_scalar(1000, 2345, false));
//! // …but the majority-based circuit needs fewer gates, which is where SIMDRAM's
//! // throughput advantage over Ambit comes from.
//! assert!(simdram_add.gate_count() < ambit_add.gate_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
mod builder;
mod eval;
mod mig;
mod operation;
mod signal;
mod transform;
mod word;

pub mod ops;

pub use aig::{Aig, AigNode};
pub use builder::LogicBuilder;
pub use eval::EvalGraph;
pub use mig::{Mig, MigNode};
pub use operation::{word_mask, Operation, OperationClass};
pub use ops::WordPorts;
pub use signal::Signal;
pub use transform::{aig_to_mig, compact_mig};
pub use word::{CircuitStats, InputBit, WordCircuit};
