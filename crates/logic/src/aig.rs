//! And-Inverter Graphs (AIGs): the AND/OR/NOT representation used by the Ambit baseline.
//!
//! Ambit implements bulk bitwise computation out of two-input AND/OR (each realized with a
//! triple-row activation against a control row) plus NOT (through dual-contact cells). An
//! AIG captures exactly that cost model: every AND node corresponds to one in-DRAM
//! AND/OR-style operation, and complemented edges are NOTs. Building the *same* operation
//! generators over [`Aig`] and [`crate::Mig`] lets the benchmarks compare the number of DRAM
//! commands each representation needs — the source of SIMDRAM's throughput advantage.

use std::collections::HashMap;

use crate::builder::LogicBuilder;
use crate::eval::EvalGraph;
use crate::signal::Signal;

/// A node of an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-zero node (always node 0).
    Const0,
    /// The `n`-th primary input.
    Input(u32),
    /// A two-input AND gate over the given (sorted) fan-in signals.
    And([Signal; 2]),
}

/// An and-inverter graph with structural hashing and the usual local simplifications
/// (`a·a = a`, `a·¬a = 0`, constant absorption).
///
/// # Examples
///
/// ```
/// use simdram_logic::{Aig, LogicBuilder};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.or2(a, b);
/// assert_eq!(aig.and_count(), 1); // OR is one AND node plus complemented edges.
/// # let _ = f;
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<[Signal; 2], u32>,
    num_inputs: u32,
}

impl Default for Aig {
    fn default() -> Self {
        Aig::new()
    }
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const0],
            strash: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Total number of nodes, including the constant and the inputs.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes (each corresponds to one Ambit AND/OR-style in-DRAM operation).
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(_)))
            .count()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.num_inputs as usize
    }

    /// The node referenced by `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: u32) -> AigNode {
        self.nodes[index as usize]
    }

    /// Logic depth (number of AND levels) of the cone rooted at `signal`.
    pub fn depth_of(&self, signal: Signal) -> usize {
        let mut memo = vec![usize::MAX; self.nodes.len()];
        self.depth_rec(signal.node(), &mut memo)
    }

    /// Number of distinct AND nodes in the cones rooted at `outputs`.
    pub fn and_count_in_cone(&self, outputs: &[Signal]) -> usize {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = outputs.iter().map(|s| s.node()).collect();
        let mut count = 0;
        while let Some(idx) = stack.pop() {
            if visited[idx as usize] {
                continue;
            }
            visited[idx as usize] = true;
            if let AigNode::And(children) = self.nodes[idx as usize] {
                count += 1;
                stack.extend(children.iter().map(|s| s.node()));
            }
        }
        count
    }

    /// Topological order (children before parents) of the AND nodes in the cones rooted at
    /// `outputs`.
    pub fn topological_cone(&self, outputs: &[Signal]) -> Vec<u32> {
        let mut visited = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        for &out in outputs {
            self.topo_rec(out.node(), &mut visited, &mut order);
        }
        order
    }

    fn topo_rec(&self, idx: u32, visited: &mut [bool], order: &mut Vec<u32>) {
        if visited[idx as usize] {
            return;
        }
        visited[idx as usize] = true;
        if let AigNode::And(children) = self.nodes[idx as usize] {
            for child in children {
                self.topo_rec(child.node(), visited, order);
            }
            order.push(idx);
        }
    }

    fn depth_rec(&self, idx: u32, memo: &mut [usize]) -> usize {
        if memo[idx as usize] != usize::MAX {
            return memo[idx as usize];
        }
        let depth = match self.nodes[idx as usize] {
            AigNode::Const0 | AigNode::Input(_) => 0,
            AigNode::And(children) => {
                1 + children
                    .iter()
                    .map(|c| self.depth_rec(c.node(), memo))
                    .max()
                    .unwrap_or(0)
            }
        };
        memo[idx as usize] = depth;
        depth
    }

    fn push_node(&mut self, node: AigNode) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }
}

impl LogicBuilder for Aig {
    fn const_signal(&mut self, value: bool) -> Signal {
        Signal::new(0, value)
    }

    fn add_input(&mut self) -> Signal {
        let id = self.num_inputs;
        self.num_inputs += 1;
        let idx = self.push_node(AigNode::Input(id));
        Signal::new(idx, false)
    }

    fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        let zero = self.const_signal(false);
        let one = self.const_signal(true);
        // Local simplifications.
        if a == zero || b == zero || (a.node() == b.node() && a != b) {
            return zero;
        }
        if a == one {
            return b;
        }
        if b == one {
            return a;
        }
        if a == b {
            return a;
        }
        let mut key = [a, b];
        key.sort();
        if let Some(&idx) = self.strash.get(&key) {
            return Signal::new(idx, false);
        }
        let idx = self.push_node(AigNode::And(key));
        self.strash.insert(key, idx);
        Signal::new(idx, false)
    }
}

impl EvalGraph for Aig {
    fn input_count(&self) -> usize {
        self.num_inputs as usize
    }

    fn eval_packed(&self, inputs: &[u64], outputs: &[Signal]) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.num_inputs as usize,
            "expected one packed word per primary input"
        );
        let mut values = vec![0u64; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            values[idx] = match *node {
                AigNode::Const0 => 0,
                AigNode::Input(i) => inputs[i as usize],
                AigNode::And([a, b]) => read(&values, a) & read(&values, b),
            };
        }
        outputs.iter().map(|&s| read(&values, s)).collect()
    }
}

fn read(values: &[u64], signal: Signal) -> u64 {
    let v = values[signal.node() as usize];
    if signal.is_complemented() {
        !v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_inputs() -> (Aig, Signal, Signal) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        (aig, a, b)
    }

    #[test]
    fn and_or_xor_truth_tables() {
        let (mut aig, a, b) = two_inputs();
        let and = aig.and2(a, b);
        let or = aig.or2(a, b);
        let xor = aig.xor2(a, b);
        let out = aig.eval_packed(&[0b1100, 0b1010], &[and, or, xor]);
        assert_eq!(out[0] & 0xF, 0b1000);
        assert_eq!(out[1] & 0xF, 0b1110);
        assert_eq!(out[2] & 0xF, 0b0110);
    }

    #[test]
    fn simplifications_avoid_nodes() {
        let (mut aig, a, b) = two_inputs();
        let zero = aig.const_signal(false);
        let one = aig.const_signal(true);
        assert_eq!(aig.and2(a, zero), zero);
        assert_eq!(aig.and2(a, one), a);
        assert_eq!(aig.and2(a, a), a);
        assert_eq!(aig.and2(a, a.complement()), zero);
        assert_eq!(aig.and_count(), 0);
        let _ = b;
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let (mut aig, a, b) = two_inputs();
        let x = aig.and2(a, b);
        let y = aig.and2(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.and_count(), 1);
    }

    #[test]
    fn default_majority_matches_truth_table() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let out = aig.eval_packed(&[0b1111_0000, 0b1100_1100, 0b1010_1010], &[m]);
        assert_eq!(out[0] & 0xFF, 0b1110_1000);
        // The AND/OR expansion of a majority costs several AND nodes — this is exactly the
        // overhead SIMDRAM eliminates.
        assert!(aig.and_count() >= 4);
    }

    #[test]
    fn default_full_adder_is_correct_but_larger_than_mig() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let (sum, carry) = aig.full_adder(a, b, c);
        let va = 0b1111_0000u64;
        let vb = 0b1100_1100u64;
        let vc = 0b1010_1010u64;
        let out = aig.eval_packed(&[va, vb, vc], &[sum, carry]);
        assert_eq!(out[0] & 0xFF, (va ^ vb ^ vc) & 0xFF);
        assert_eq!(out[1] & 0xFF, ((va & vb) | (vb & vc) | (va & vc)) & 0xFF);
        assert!(
            aig.and_count() > 3,
            "AIG full adder should need more gates than the 3-MAJ MIG version"
        );
    }

    #[test]
    fn depth_and_cone_metrics() {
        let (mut aig, a, b) = two_inputs();
        let x = aig.and2(a, b);
        let y = aig.and2(x, a);
        assert_eq!(aig.depth_of(y), 2);
        assert_eq!(aig.and_count_in_cone(&[y]), 2);
        let topo = aig.topological_cone(&[y]);
        assert_eq!(topo, vec![x.node(), y.node()]);
    }
}
