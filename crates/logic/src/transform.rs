//! Graph transformations used by Step 1: AIG → MIG conversion and cone compaction.
//!
//! The paper describes Step 1 as *deriving an optimized MAJ/NOT implementation from an
//! AND/OR/NOT implementation*. In this reproduction most operations are synthesized
//! majority-natively (which is where the large gains come from), but the conversion path is
//! also provided: [`aig_to_mig`] replays an AND/OR/NOT circuit into a majority-inverter
//! graph, and [`compact_mig`] re-builds a MIG's output cone through the hashing,
//! simplifying constructor — eliminating dead nodes and re-applying the Ω simplification
//! axioms after any transformation.

use std::collections::HashMap;

use crate::aig::{Aig, AigNode};
use crate::builder::LogicBuilder;
use crate::mig::{Mig, MigNode};
use crate::signal::Signal;

/// Converts an AND/OR/NOT network (AIG) into a majority-inverter graph by replaying each
/// AND node as `MAJ(a, b, 0)`.
///
/// Returns the new graph together with the translation of the requested `outputs`. The
/// resulting MIG computes exactly the same functions (complemented edges are preserved), and
/// never contains more gates than the source AIG; the simplification axioms applied during
/// construction can only merge or remove nodes.
///
/// # Examples
///
/// ```
/// use simdram_logic::{aig_to_mig, Aig, EvalGraph, LogicBuilder};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.xor2(a, b);
/// let (mig, outputs) = aig_to_mig(&aig, &[f]);
/// assert_eq!(
///     mig.eval_packed(&[0b1100, 0b1010], &outputs),
///     aig.eval_packed(&[0b1100, 0b1010], &[f])
/// );
/// ```
pub fn aig_to_mig(aig: &Aig, outputs: &[Signal]) -> (Mig, Vec<Signal>) {
    let mut mig = Mig::new();
    // Inputs must keep their indices so evaluation assignments carry over unchanged.
    let inputs: Vec<Signal> = (0..aig.input_count()).map(|_| mig.add_input()).collect();

    let mut translated: HashMap<u32, Signal> = HashMap::new();
    let translate = |signal: Signal,
                     translated: &HashMap<u32, Signal>,
                     inputs: &[Signal],
                     mig: &mut Mig|
     -> Signal {
        let base = match aig.node(signal.node()) {
            AigNode::Const0 => mig.const_signal(false),
            AigNode::Input(i) => inputs[i as usize],
            AigNode::And(_) => translated[&signal.node()],
        };
        base.complement_if(signal.is_complemented())
    };

    for node_id in aig.topological_cone(outputs) {
        if let AigNode::And([x, y]) = aig.node(node_id) {
            let mx = translate(x, &translated, &inputs, &mut mig);
            let my = translate(y, &translated, &inputs, &mut mig);
            let m = mig.and2(mx, my);
            translated.insert(node_id, m);
        }
    }
    let mapped_outputs = outputs
        .iter()
        .map(|&s| translate(s, &translated, &inputs, &mut mig))
        .collect();
    (mig, mapped_outputs)
}

/// Re-builds the cone of `outputs` through the hashing, simplifying MIG constructor,
/// dropping every node that is not reachable from the outputs and re-canonicalizing
/// complement markings.
///
/// Returns the compacted graph and the translated output signals. The result is logically
/// equivalent to the input cone and never larger.
pub fn compact_mig(mig: &Mig, outputs: &[Signal]) -> (Mig, Vec<Signal>) {
    let mut compact = Mig::new();
    let inputs: Vec<Signal> = (0..mig.input_count())
        .map(|_| compact.add_input())
        .collect();

    let mut translated: HashMap<u32, Signal> = HashMap::new();
    let translate = |signal: Signal,
                     translated: &HashMap<u32, Signal>,
                     inputs: &[Signal],
                     compact: &mut Mig|
     -> Signal {
        let base = match mig.node(signal.node()) {
            MigNode::Const0 => compact.const_signal(false),
            MigNode::Input(i) => inputs[i as usize],
            MigNode::Maj(_) => translated[&signal.node()],
        };
        base.complement_if(signal.is_complemented())
    };

    for node_id in mig.topological_cone(outputs) {
        if let MigNode::Maj([x, y, z]) = mig.node(node_id) {
            let mx = translate(x, &translated, &inputs, &mut compact);
            let my = translate(y, &translated, &inputs, &mut compact);
            let mz = translate(z, &translated, &inputs, &mut compact);
            let m = compact.maj3(mx, my, mz);
            translated.insert(node_id, m);
        }
    }
    let mapped_outputs = outputs
        .iter()
        .map(|&s| translate(s, &translated, &inputs, &mut compact))
        .collect();
    (compact, mapped_outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalGraph;
    use crate::operation::Operation;
    use crate::ops::build_operation;
    use crate::word::WordCircuit;

    /// One pseudo-random 64-lane test word per primary input (deterministic).
    fn test_vectors(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| {
                (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 23) ^ 0x5DEE_CE66_D1CE_CAFE
            })
            .collect()
    }

    #[test]
    fn aig_to_mig_preserves_functionality_for_all_operations() {
        for op in Operation::ALL {
            let mut aig = Aig::new();
            let ports = build_operation(&mut aig, op, 3);
            let (mig, outputs) = aig_to_mig(&aig, &ports.outputs);
            let inputs = test_vectors(aig.input_count());
            let expected = aig.eval_packed(&inputs, &ports.outputs);
            let got = mig.eval_packed(&inputs, &outputs);
            assert_eq!(expected, got, "{op}");
            assert!(mig.maj_count() <= aig.and_count(), "{op}");
        }
    }

    #[test]
    fn compacting_a_fresh_circuit_does_not_grow_it() {
        for op in [
            Operation::Add,
            Operation::Mul,
            Operation::Max,
            Operation::BitCount,
        ] {
            let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, 8);
            let (compacted, outputs) = compact_mig(circuit.graph(), circuit.outputs());
            assert!(
                compacted.maj_count_in_cone(&outputs) <= circuit.gate_count(),
                "{op}"
            );
        }
    }

    #[test]
    fn compaction_drops_dead_nodes() {
        let mut mig = Mig::new();
        let a = mig.add_input();
        let b = mig.add_input();
        let c = mig.add_input();
        let kept = mig.maj3(a, b, c);
        // Two nodes that no output references.
        let dead = mig.maj3(kept, a, b);
        let _deader = mig.maj3(dead, c, a);
        assert_eq!(mig.maj_count(), 3);
        let (compacted, outputs) = compact_mig(&mig, &[kept]);
        assert_eq!(compacted.maj_count(), 1);
        let inputs = test_vectors(3);
        assert_eq!(
            compacted.eval_packed(&inputs, &outputs),
            mig.eval_packed(&inputs, &[kept])
        );
    }

    #[test]
    fn compaction_preserves_complemented_outputs() {
        let mut mig = Mig::new();
        let a = mig.add_input();
        let b = mig.add_input();
        let c = mig.add_input();
        let m = mig.maj3(a, b, c).complement();
        let (compacted, outputs) = compact_mig(&mig, &[m]);
        let inputs = test_vectors(3);
        assert_eq!(
            compacted.eval_packed(&inputs, &outputs),
            mig.eval_packed(&inputs, &[m])
        );
    }
}
