//! Word-level circuits: a synthesized operation together with its graph and port bindings.

use crate::aig::Aig;
use crate::builder::LogicBuilder;
use crate::eval::EvalGraph;
use crate::mig::Mig;
use crate::operation::{word_mask, Operation};
use crate::ops::{build_operation, WordPorts};
use crate::signal::Signal;

/// Where a primary input of a word circuit comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputBit {
    /// Bit `i` (LSB = 0) of operand A.
    A(usize),
    /// Bit `i` (LSB = 0) of operand B.
    B(usize),
    /// The 1-bit predicate.
    Pred,
}

/// Statistics shared by both graph representations, used for command-count tables.
pub trait CircuitStats {
    /// Number of logic gates (MAJ or AND nodes) in the cone of the given outputs.
    fn gate_count(&self, outputs: &[Signal]) -> usize;
    /// Logic depth (gate levels) over the given outputs.
    fn depth(&self, outputs: &[Signal]) -> usize;
}

impl CircuitStats for Mig {
    fn gate_count(&self, outputs: &[Signal]) -> usize {
        self.maj_count_in_cone(outputs)
    }

    fn depth(&self, outputs: &[Signal]) -> usize {
        outputs.iter().map(|&s| self.depth_of(s)).max().unwrap_or(0)
    }
}

impl CircuitStats for Aig {
    fn gate_count(&self, outputs: &[Signal]) -> usize {
        self.and_count_in_cone(outputs)
    }

    fn depth(&self, outputs: &[Signal]) -> usize {
        outputs.iter().map(|&s| self.depth_of(s)).max().unwrap_or(0)
    }
}

/// A synthesized word-level operation circuit over graph representation `G`.
///
/// `WordCircuit<Mig>` is the output of SIMDRAM's Step 1; `WordCircuit<Aig>` is the
/// corresponding Ambit-style AND/OR/NOT implementation used by the baseline. Both are
/// produced by the *same* generator, so they are functionally identical by construction
/// (and verified to be by the property tests).
///
/// # Examples
///
/// ```
/// use simdram_logic::{Mig, Operation, WordCircuit};
///
/// let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 8);
/// assert_eq!(circuit.eval_scalar(200, 60, false), (200u64 + 60) & 0xFF);
/// assert!(circuit.gate_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct WordCircuit<G> {
    graph: G,
    op: Operation,
    width: usize,
    ports: WordPorts,
}

impl<G: LogicBuilder + Default> WordCircuit<G> {
    /// Synthesizes the circuit for `op` with `width`-bit operands into a fresh graph.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn synthesize(op: Operation, width: usize) -> Self {
        let mut graph = G::default();
        let ports = build_operation(&mut graph, op, width);
        WordCircuit {
            graph,
            op,
            width,
            ports,
        }
    }
}

impl<G> WordCircuit<G> {
    /// The operation this circuit implements.
    pub fn operation(&self) -> Operation {
        self.op
    }

    /// The operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying logic graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The circuit's word-level ports.
    pub fn ports(&self) -> &WordPorts {
        &self.ports
    }

    /// The output signals (LSB first).
    pub fn outputs(&self) -> &[Signal] {
        &self.ports.outputs
    }

    /// Maps every primary-input index of the graph to the operand bit it carries.
    ///
    /// Index `i` of the returned vector describes the graph's `i`-th primary input.
    pub fn input_bindings(&self) -> Vec<InputBit> {
        let mut bindings = Vec::with_capacity(
            self.ports.a.len() + self.ports.b.len() + usize::from(self.ports.pred.is_some()),
        );
        bindings.extend((0..self.ports.a.len()).map(InputBit::A));
        bindings.extend((0..self.ports.b.len()).map(InputBit::B));
        if self.ports.pred.is_some() {
            bindings.push(InputBit::Pred);
        }
        bindings
    }
}

impl<G: CircuitStats> WordCircuit<G> {
    /// Number of logic gates in the circuit (MAJ nodes for a MIG, AND nodes for an AIG).
    pub fn gate_count(&self) -> usize {
        self.graph.gate_count(&self.ports.outputs)
    }

    /// Logic depth of the circuit.
    pub fn depth(&self) -> usize {
        self.graph.depth(&self.ports.outputs)
    }
}

impl<G: EvalGraph> WordCircuit<G> {
    /// Evaluates the circuit for a single pair of operand values and predicate, returning
    /// the result as an integer (LSB-first bit assembly).
    pub fn eval_scalar(&self, a: u64, b: u64, pred: bool) -> u64 {
        self.eval_lanes(&[a], &[b], &[pred])[0]
    }

    /// Evaluates the circuit for up to 64 SIMD lanes at once.
    ///
    /// Lane `i` takes operand values `a[i]`/`b[i]` and predicate `pred[i]`. Returns one
    /// result per lane.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or more than 64 lanes are supplied.
    pub fn eval_lanes(&self, a: &[u64], b: &[u64], pred: &[bool]) -> Vec<u64> {
        let lanes = a.len();
        assert!(lanes <= 64, "at most 64 lanes per packed evaluation");
        assert_eq!(b.len(), lanes, "operand B must have one value per lane");
        assert_eq!(pred.len(), lanes, "predicate must have one value per lane");

        // Build one packed word per primary input: bit `lane` of the word is that lane's
        // value of the input bit.
        let mut inputs = Vec::with_capacity(
            self.ports.a.len() + self.ports.b.len() + usize::from(self.ports.pred.is_some()),
        );
        for bit in 0..self.ports.a.len() {
            inputs.push(pack_lane_bits(a, bit));
        }
        for bit in 0..self.ports.b.len() {
            inputs.push(pack_lane_bits(b, bit));
        }
        if self.ports.pred.is_some() {
            let mut word = 0u64;
            for (lane, &p) in pred.iter().enumerate() {
                word |= u64::from(p) << lane;
            }
            inputs.push(word);
        }

        let packed_outputs = self.graph.eval_packed(&inputs, &self.ports.outputs);
        let out_mask = word_mask(self.op.output_width(self.width));
        (0..lanes)
            .map(|lane| {
                let mut value = 0u64;
                for (bit, word) in packed_outputs.iter().enumerate() {
                    value |= ((word >> lane) & 1) << bit;
                }
                value & out_mask
            })
            .collect()
    }
}

fn pack_lane_bits(values: &[u64], bit: usize) -> u64 {
    let mut word = 0u64;
    for (lane, &v) in values.iter().enumerate() {
        word |= ((v >> bit) & 1) << lane;
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mig_add_matches_reference() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 8);
        for (a, b) in [(0u64, 0u64), (1, 2), (255, 255), (100, 200), (17, 42)] {
            assert_eq!(
                circuit.eval_scalar(a, b, false),
                Operation::Add.reference(8, a, b, false)
            );
        }
    }

    #[test]
    fn aig_add_matches_reference() {
        let circuit: WordCircuit<Aig> = WordCircuit::synthesize(Operation::Add, 8);
        for (a, b) in [(0u64, 0u64), (1, 2), (255, 255), (100, 200), (17, 42)] {
            assert_eq!(
                circuit.eval_scalar(a, b, false),
                Operation::Add.reference(8, a, b, false)
            );
        }
    }

    #[test]
    fn mig_needs_fewer_gates_than_aig_for_addition() {
        let mig: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 32);
        let aig: WordCircuit<Aig> = WordCircuit::synthesize(Operation::Add, 32);
        assert!(
            mig.gate_count() < aig.gate_count(),
            "MAJ/NOT addition ({} gates) should be smaller than AND/OR/NOT addition ({} gates)",
            mig.gate_count(),
            aig.gate_count()
        );
    }

    #[test]
    fn lane_packed_evaluation_matches_scalar() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Max, 8);
        let a = [3u64, 200, 17, 255];
        let b = [5u64, 100, 17, 0];
        let pred = [false; 4];
        let lanes = circuit.eval_lanes(&a, &b, &pred);
        for i in 0..4 {
            assert_eq!(lanes[i], circuit.eval_scalar(a[i], b[i], false));
        }
    }

    #[test]
    fn input_bindings_follow_allocation_order() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::IfElse, 4);
        let bindings = circuit.input_bindings();
        assert_eq!(bindings.len(), 9);
        assert_eq!(bindings[0], InputBit::A(0));
        assert_eq!(bindings[3], InputBit::A(3));
        assert_eq!(bindings[4], InputBit::B(0));
        assert_eq!(bindings[8], InputBit::Pred);
    }

    #[test]
    fn one_bit_operations_report_single_output() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Equal, 16);
        assert_eq!(circuit.outputs().len(), 1);
        assert_eq!(circuit.eval_scalar(1234, 1234, false), 1);
        assert_eq!(circuit.eval_scalar(1234, 1235, false), 0);
    }

    #[test]
    fn depth_is_positive_for_nontrivial_circuits() {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Mul, 8);
        assert!(circuit.depth() >= 8);
        assert!(circuit.gate_count() > 50);
    }
}
