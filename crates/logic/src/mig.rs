//! Majority-Inverter Graphs (MIGs): the representation SIMDRAM Step 1 produces.
//!
//! A MIG is a directed acyclic graph whose internal nodes are three-input majority gates and
//! whose edges may be complemented. Together with complementation, majority is functionally
//! complete, and — crucially for SIMDRAM — it maps one-to-one onto the DRAM substrate's
//! triple-row activation, so *the number of majority nodes directly determines the number of
//! TRA commands* a μProgram needs.
//!
//! Construction applies the standard MIG simplification axioms eagerly:
//!
//! * **Majority** (Ω.M): `MAJ(x, x, y) = x` and `MAJ(x, ¬x, y) = y`.
//! * **Constant absorption**: duplicate/complementary constants reduce via the same rules
//!   (`MAJ(0, 1, y) = y`, `MAJ(0, 0, y) = 0`, …).
//! * **Inverter propagation** (Ω.I): `MAJ(¬x, ¬y, ¬z) = ¬MAJ(x, y, z)`; triples with two or
//!   more complemented fan-ins are canonicalized to their complemented form so that
//!   structurally identical nodes are shared.
//! * **Structural hashing**: identical (sorted) fan-in triples return the existing node.

use std::collections::HashMap;

use crate::builder::LogicBuilder;
use crate::eval::EvalGraph;
use crate::signal::Signal;

/// A node of a [`Mig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigNode {
    /// The constant-zero node (always node 0; constant one is its complement).
    Const0,
    /// The `n`-th primary input.
    Input(u32),
    /// A three-input majority gate over the given (sorted) fan-in signals.
    Maj([Signal; 3]),
}

/// A majority-inverter graph.
///
/// # Examples
///
/// ```
/// use simdram_logic::{LogicBuilder, Mig};
///
/// let mut mig = Mig::new();
/// let a = mig.add_input();
/// let b = mig.add_input();
/// let c = mig.add_input();
/// let m = mig.maj3(a, b, c);
/// assert_eq!(mig.maj_count(), 1);
/// // MAJ(a, a, b) simplifies away without creating a node.
/// assert_eq!(mig.maj3(a, a, b), a);
/// assert_eq!(mig.maj_count(), 1);
/// # let _ = (m, c);
/// ```
#[derive(Debug, Clone)]
pub struct Mig {
    nodes: Vec<MigNode>,
    strash: HashMap<[Signal; 3], u32>,
    num_inputs: u32,
}

impl Default for Mig {
    fn default() -> Self {
        Mig::new()
    }
}

impl Mig {
    /// Creates an empty MIG containing only the constant node.
    pub fn new() -> Self {
        Mig {
            nodes: vec![MigNode::Const0],
            strash: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Total number of nodes, including the constant and the inputs.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of majority nodes (each one costs one triple-row activation in DRAM).
    pub fn maj_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, MigNode::Maj(_)))
            .count()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.num_inputs as usize
    }

    /// The node referenced by `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: u32) -> MigNode {
        self.nodes[index as usize]
    }

    /// Logic depth (number of majority levels) of the cone rooted at `signal`.
    pub fn depth_of(&self, signal: Signal) -> usize {
        let mut memo = vec![usize::MAX; self.nodes.len()];
        self.depth_rec(signal.node(), &mut memo)
    }

    /// Number of distinct majority nodes in the cones rooted at `outputs`.
    pub fn maj_count_in_cone(&self, outputs: &[Signal]) -> usize {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = outputs.iter().map(|s| s.node()).collect();
        let mut count = 0;
        while let Some(idx) = stack.pop() {
            if visited[idx as usize] {
                continue;
            }
            visited[idx as usize] = true;
            if let MigNode::Maj(children) = self.nodes[idx as usize] {
                count += 1;
                stack.extend(children.iter().map(|s| s.node()));
            }
        }
        count
    }

    /// Topological order (children before parents) of the majority nodes in the cones rooted
    /// at `outputs`. The returned indices can be used to schedule TRA commands.
    pub fn topological_cone(&self, outputs: &[Signal]) -> Vec<u32> {
        let mut visited = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        for &out in outputs {
            self.topo_rec(out.node(), &mut visited, &mut order);
        }
        order
    }

    fn topo_rec(&self, idx: u32, visited: &mut [bool], order: &mut Vec<u32>) {
        if visited[idx as usize] {
            return;
        }
        visited[idx as usize] = true;
        if let MigNode::Maj(children) = self.nodes[idx as usize] {
            for child in children {
                self.topo_rec(child.node(), visited, order);
            }
            order.push(idx);
        }
    }

    fn depth_rec(&self, idx: u32, memo: &mut [usize]) -> usize {
        if memo[idx as usize] != usize::MAX {
            return memo[idx as usize];
        }
        let depth = match self.nodes[idx as usize] {
            MigNode::Const0 | MigNode::Input(_) => 0,
            MigNode::Maj(children) => {
                1 + children
                    .iter()
                    .map(|c| self.depth_rec(c.node(), memo))
                    .max()
                    .unwrap_or(0)
            }
        };
        memo[idx as usize] = depth;
        depth
    }

    fn push_node(&mut self, node: MigNode) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }
}

impl LogicBuilder for Mig {
    fn const_signal(&mut self, value: bool) -> Signal {
        Signal::new(0, value)
    }

    fn add_input(&mut self) -> Signal {
        let id = self.num_inputs;
        self.num_inputs += 1;
        let idx = self.push_node(MigNode::Input(id));
        Signal::new(idx, false)
    }

    fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        let zero = self.const_signal(false);
        self.maj3(a, b, zero)
    }

    fn or2(&mut self, a: Signal, b: Signal) -> Signal {
        let one = self.const_signal(true);
        self.maj3(a, b, one)
    }

    fn maj3(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let mut fanins = [a, b, c];
        fanins.sort();
        let [x, y, z] = fanins;

        // Ω.M: two identical fan-ins dominate.
        if x == y {
            return x;
        }
        if y == z {
            return y;
        }
        // Ω.M': a complementary pair cancels, leaving the third fan-in.
        if x.node() == y.node() && x != y {
            return z;
        }
        if y.node() == z.node() && y != z {
            return x;
        }
        if x.node() == z.node() && x != z {
            return y;
        }

        // Ω.I: canonicalize so that at most one fan-in is complemented, sharing nodes between
        // a majority and its complement.
        let complemented = fanins.iter().filter(|s| s.is_complemented()).count();
        let (mut key, invert_output) = if complemented >= 2 {
            ([x.complement(), y.complement(), z.complement()], true)
        } else {
            (fanins, false)
        };
        key.sort();

        if let Some(&idx) = self.strash.get(&key) {
            return Signal::new(idx, invert_output);
        }
        let idx = self.push_node(MigNode::Maj(key));
        self.strash.insert(key, idx);
        Signal::new(idx, invert_output)
    }

    fn full_adder(&mut self, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
        // The majority-native full adder used by SIMDRAM: three majority gates total.
        //   carry = MAJ(a, b, cin)
        //   sum   = MAJ(¬carry, cin, MAJ(a, b, ¬cin))
        let carry = self.maj3(a, b, cin);
        let inner = self.maj3(a, b, cin.complement());
        let sum = self.maj3(carry.complement(), cin, inner);
        (sum, carry)
    }
}

impl EvalGraph for Mig {
    fn input_count(&self) -> usize {
        self.num_inputs as usize
    }

    fn eval_packed(&self, inputs: &[u64], outputs: &[Signal]) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.num_inputs as usize,
            "expected one packed word per primary input"
        );
        let mut values = vec![0u64; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            values[idx] = match *node {
                MigNode::Const0 => 0,
                MigNode::Input(i) => inputs[i as usize],
                MigNode::Maj([a, b, c]) => {
                    let va = read(&values, a);
                    let vb = read(&values, b);
                    let vc = read(&values, c);
                    (va & vb) | (vb & vc) | (va & vc)
                }
            };
        }
        outputs.iter().map(|&s| read(&values, s)).collect()
    }
}

fn read(values: &[u64], signal: Signal) -> u64 {
    let v = values[signal.node() as usize];
    if signal.is_complemented() {
        !v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_inputs() -> (Mig, Signal, Signal, Signal) {
        let mut mig = Mig::new();
        let a = mig.add_input();
        let b = mig.add_input();
        let c = mig.add_input();
        (mig, a, b, c)
    }

    #[test]
    fn maj_truth_table() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj3(a, b, c);
        // Pack the 8 input combinations into the low bits of the lanes.
        let va = 0b1111_0000u64;
        let vb = 0b1100_1100u64;
        let vc = 0b1010_1010u64;
        let out = mig.eval_packed(&[va, vb, vc], &[m]);
        assert_eq!(out[0] & 0xFF, 0b1110_1000);
    }

    #[test]
    fn and_or_via_constants() {
        let (mut mig, a, b, _) = three_inputs();
        let and = mig.and2(a, b);
        let or = mig.or2(a, b);
        let out = mig.eval_packed(&[0b1100, 0b1010, 0], &[and, or]);
        assert_eq!(out[0] & 0xF, 0b1000);
        assert_eq!(out[1] & 0xF, 0b1110);
    }

    #[test]
    fn identical_fanins_simplify() {
        let (mut mig, a, b, _) = three_inputs();
        assert_eq!(mig.maj3(a, a, b), a);
        assert_eq!(mig.maj3(a, a, a), a);
        assert_eq!(mig.maj_count(), 0);
    }

    #[test]
    fn complementary_pair_simplifies() {
        let (mut mig, a, b, _) = three_inputs();
        assert_eq!(mig.maj3(a, a.complement(), b), b);
        assert_eq!(mig.maj_count(), 0);
    }

    #[test]
    fn constant_pairs_simplify() {
        let (mut mig, a, _, _) = three_inputs();
        let zero = mig.const_signal(false);
        let one = mig.const_signal(true);
        assert_eq!(mig.maj3(zero, one, a), a);
        assert_eq!(mig.maj3(zero, zero, a), zero);
        assert_eq!(mig.maj3(one, one, a), one);
        assert_eq!(mig.maj_count(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let (mut mig, a, b, c) = three_inputs();
        let m1 = mig.maj3(a, b, c);
        let m2 = mig.maj3(c, a, b);
        assert_eq!(m1, m2);
        assert_eq!(mig.maj_count(), 1);
    }

    #[test]
    fn inverter_propagation_shares_complemented_nodes() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj3(a, b, c);
        let m_comp = mig.maj3(a.complement(), b.complement(), c.complement());
        assert_eq!(m_comp, m.complement());
        assert_eq!(mig.maj_count(), 1);
    }

    #[test]
    fn native_full_adder_uses_three_majorities_and_is_correct() {
        let (mut mig, a, b, c) = three_inputs();
        let (sum, carry) = mig.full_adder(a, b, c);
        assert_eq!(mig.maj_count(), 3);
        let va = 0b1111_0000u64;
        let vb = 0b1100_1100u64;
        let vc = 0b1010_1010u64;
        let out = mig.eval_packed(&[va, vb, vc], &[sum, carry]);
        // sum = a ^ b ^ c, carry = maj(a, b, c).
        assert_eq!(out[0] & 0xFF, (va ^ vb ^ vc) & 0xFF);
        assert_eq!(out[1] & 0xFF, ((va & vb) | (vb & vc) | (va & vc)) & 0xFF);
    }

    #[test]
    fn xor_matches_reference() {
        let (mut mig, a, b, _) = three_inputs();
        let x = mig.xor2(a, b);
        let out = mig.eval_packed(&[0b1100, 0b1010, 0], &[x]);
        assert_eq!(out[0] & 0xF, 0b0110);
    }

    #[test]
    fn depth_and_cone_size() {
        let (mut mig, a, b, c) = three_inputs();
        let m1 = mig.maj3(a, b, c);
        let m2 = mig.maj3(m1, a, b);
        assert_eq!(mig.depth_of(m2), 2);
        assert_eq!(mig.depth_of(a), 0);
        assert_eq!(mig.maj_count_in_cone(&[m2]), 2);
        assert_eq!(mig.maj_count_in_cone(&[m1]), 1);
        let topo = mig.topological_cone(&[m2]);
        assert_eq!(topo.len(), 2);
        assert_eq!(topo[0], m1.node());
        assert_eq!(topo[1], m2.node());
    }

    #[test]
    fn mux_selects_correctly() {
        let (mut mig, sel, t, e) = three_inputs();
        let m = mig.mux(sel, t, e);
        // sel=1 lanes take t, sel=0 lanes take e.
        let out = mig.eval_packed(&[0b1100, 0b1010, 0b0110], &[m]);
        assert_eq!(
            out[0] & 0xF,
            (0b1100 & 0b1010) | (!0b1100u64 & 0b0110) & 0xF
        );
    }
}
