//! N-input logic reductions and population count.

use crate::builder::LogicBuilder;
use crate::signal::Signal;

/// AND-reduction of all bits of the operand.
pub(crate) fn build_and_red<B: LogicBuilder>(b: &mut B, x: &[Signal]) -> Vec<Signal> {
    vec![b.and_many(x)]
}

/// OR-reduction of all bits of the operand.
pub(crate) fn build_or_red<B: LogicBuilder>(b: &mut B, x: &[Signal]) -> Vec<Signal> {
    vec![b.or_many(x)]
}

/// XOR-reduction (parity) of all bits of the operand.
pub(crate) fn build_xor_red<B: LogicBuilder>(b: &mut B, x: &[Signal]) -> Vec<Signal> {
    vec![b.xor_many(x)]
}

/// Population count of the operand, zero-extended to the operand width.
///
/// The count is accumulated in a `ceil(log2(width + 1))`-bit register with an incrementer
/// chain per input bit, then zero-extended so all operations share the convention that the
/// destination vector is `width` bits wide.
pub(crate) fn build_bitcount<B: LogicBuilder>(b: &mut B, x: &[Signal]) -> Vec<Signal> {
    let width = x.len();
    let zero = b.const_signal(false);
    let acc_width = usize::BITS as usize - width.leading_zeros() as usize; // ceil(log2(width + 1))
    let mut acc: Vec<Signal> = vec![zero; acc_width.max(1)];
    for &bit in x {
        let mut carry = bit;
        for slot in acc.iter_mut() {
            let (s, c) = b.half_adder(*slot, carry);
            *slot = s;
            carry = c;
        }
    }
    acc.resize(width, zero);
    acc.truncate(width);
    acc
}
