//! Word-level circuit generators for the 16 SIMDRAM operations.
//!
//! Every generator is written once against [`LogicBuilder`] and can therefore be
//! instantiated over a [`crate::Mig`] (to obtain the SIMDRAM MAJ/NOT implementation, Step 1
//! of the framework) or over an [`crate::Aig`] (to obtain the Ambit-style AND/OR/NOT
//! implementation used as a baseline). Inputs and outputs are word-level ports
//! ([`WordPorts`]) with LSB-first bit order.

mod arith;
mod cmp;
mod misc;
mod reduce;

use crate::builder::LogicBuilder;
use crate::operation::Operation;
use crate::signal::Signal;

pub(crate) use arith::{build_abs, build_add, build_div, build_mul, build_sub};
pub(crate) use cmp::{build_equal, build_greater, build_greater_equal, build_max, build_min};
pub(crate) use misc::{build_if_else, build_relu};
pub(crate) use reduce::{build_and_red, build_bitcount, build_or_red, build_xor_red};

/// The word-level ports of a synthesized operation circuit.
///
/// Bit order is LSB first. Operand `b` is empty for single-operand operations and `pred` is
/// `None` unless the operation is predicated ([`Operation::IfElse`]).
#[derive(Debug, Clone)]
pub struct WordPorts {
    /// Bits of the first word operand (always present).
    pub a: Vec<Signal>,
    /// Bits of the second word operand (empty when unused).
    pub b: Vec<Signal>,
    /// The 1-bit predicate input (only for predicated operations).
    pub pred: Option<Signal>,
    /// Bits of the result, LSB first; length equals [`Operation::output_width`].
    pub outputs: Vec<Signal>,
}

/// Synthesizes the circuit for `op` at the given operand `width` into `builder`, allocating
/// fresh primary inputs, and returns the circuit's ports.
///
/// Inputs are allocated in a fixed order — operand A bits (LSB first), then operand B bits
/// (if any), then the predicate bit (if any) — so callers can map primary-input indices back
/// to operand bits.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
pub fn build_operation<B: LogicBuilder>(builder: &mut B, op: Operation, width: usize) -> WordPorts {
    assert!((1..=64).contains(&width), "operand width must be in 1..=64");
    let a: Vec<Signal> = (0..width).map(|_| builder.add_input()).collect();
    let b: Vec<Signal> = if op.uses_second_operand() {
        (0..width).map(|_| builder.add_input()).collect()
    } else {
        Vec::new()
    };
    let pred = if op.uses_predicate() {
        Some(builder.add_input())
    } else {
        None
    };

    let outputs = match op {
        Operation::Abs => build_abs(builder, &a),
        Operation::Add => build_add(builder, &a, &b),
        Operation::AndRed => build_and_red(builder, &a),
        Operation::BitCount => build_bitcount(builder, &a),
        Operation::Div => build_div(builder, &a, &b),
        Operation::Equal => build_equal(builder, &a, &b),
        Operation::Greater => build_greater(builder, &a, &b),
        Operation::GreaterEqual => build_greater_equal(builder, &a, &b),
        Operation::IfElse => build_if_else(builder, &a, &b, pred.expect("if_else has a predicate")),
        Operation::Max => build_max(builder, &a, &b),
        Operation::Min => build_min(builder, &a, &b),
        Operation::Mul => build_mul(builder, &a, &b),
        Operation::OrRed => build_or_red(builder, &a),
        Operation::Relu => build_relu(builder, &a),
        Operation::Sub => build_sub(builder, &a, &b),
        Operation::XorRed => build_xor_red(builder, &a),
    };
    debug_assert_eq!(outputs.len(), op.output_width(width));

    WordPorts {
        a,
        b,
        pred,
        outputs,
    }
}
