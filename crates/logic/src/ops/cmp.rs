//! Relational operation generators: equality, unsigned comparisons, max and min.

use crate::builder::LogicBuilder;
use crate::signal::Signal;

/// Equality: AND-reduction over per-bit XNORs.
pub(crate) fn build_equal<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let xnors: Vec<Signal> = x.iter().zip(y).map(|(&xi, &yi)| b.xnor2(xi, yi)).collect();
    vec![b.and_many(&xnors)]
}

/// Unsigned `x >= y`: the carry-out of `x + ¬y + 1`.
pub(crate) fn build_greater_equal<B: LogicBuilder>(
    b: &mut B,
    x: &[Signal],
    y: &[Signal],
) -> Vec<Signal> {
    vec![unsigned_ge(b, x, y)]
}

/// Unsigned `x > y`, computed as `¬(y >= x)`.
pub(crate) fn build_greater<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    vec![unsigned_ge(b, y, x).complement()]
}

/// Unsigned maximum: select with the `x >= y` flag.
pub(crate) fn build_max<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let ge = unsigned_ge(b, x, y);
    b.mux_word(ge, x, y)
}

/// Unsigned minimum: select with the `x >= y` flag.
pub(crate) fn build_min<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let ge = unsigned_ge(b, x, y);
    b.mux_word(ge, y, x)
}

/// Shared helper: the carry chain of `x - y`, whose final carry is 1 iff `x >= y` (unsigned).
fn unsigned_ge<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Signal {
    let one = b.const_signal(true);
    let not_y: Vec<Signal> = y.iter().map(|s| s.complement()).collect();
    let (_, carry) = b.ripple_add(x, &not_y, one);
    carry
}
