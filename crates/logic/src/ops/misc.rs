//! Predication and activation-function generators: if-then-else and ReLU.

use crate::builder::LogicBuilder;
use crate::signal::Signal;

/// Predicated select: each output bit is `pred ? a_i : b_i`.
///
/// This is the building block of SIMDRAM's predication support: branch-free execution of
/// `if-then-else` bodies by computing both sides and selecting per SIMD lane.
pub(crate) fn build_if_else<B: LogicBuilder>(
    b: &mut B,
    x: &[Signal],
    y: &[Signal],
    pred: Signal,
) -> Vec<Signal> {
    b.mux_word(pred, x, y)
}

/// ReLU for two's-complement operands: zero when the sign bit is set, the operand otherwise.
pub(crate) fn build_relu<B: LogicBuilder>(b: &mut B, x: &[Signal]) -> Vec<Signal> {
    let sign = x[x.len() - 1];
    x.iter()
        .map(|&bit| b.and2(bit, sign.complement()))
        .collect()
}
