//! Arithmetic operation generators: addition, subtraction, multiplication, division and
//! absolute value.

use crate::builder::LogicBuilder;
use crate::signal::Signal;

/// Ripple-carry addition, discarding the final carry (wrap-around semantics).
pub(crate) fn build_add<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let zero = b.const_signal(false);
    let (sum, _) = b.ripple_add(x, y, zero);
    sum
}

/// Two's-complement subtraction: `x + ¬y + 1`, discarding the final carry.
pub(crate) fn build_sub<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let one = b.const_signal(true);
    let not_y: Vec<Signal> = y.iter().map(|s| s.complement()).collect();
    let (diff, _) = b.ripple_add(x, &not_y, one);
    diff
}

/// Shift-and-add multiplication returning the low `width` bits of the product.
pub(crate) fn build_mul<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let width = x.len();
    let zero = b.const_signal(false);
    let mut acc: Vec<Signal> = vec![zero; width];
    for i in 0..width {
        // Partial product i only affects bits i..width of the low word.
        let addend: Vec<Signal> = (0..width - i).map(|j| b.and2(x[j], y[i])).collect();
        let acc_hi: Vec<Signal> = acc[i..].to_vec();
        let (sum, _) = b.ripple_add(&acc_hi, &addend, zero);
        acc[i..].copy_from_slice(&sum);
    }
    acc
}

/// Restoring division producing the unsigned quotient (all-ones when the divisor is zero).
///
/// Uses a `width + 1`-bit partial remainder so the intermediate `2·rem + bit` never
/// overflows.
pub(crate) fn build_div<B: LogicBuilder>(b: &mut B, x: &[Signal], y: &[Signal]) -> Vec<Signal> {
    let width = x.len();
    let zero = b.const_signal(false);
    let one = b.const_signal(true);

    // Remainder register of width + 1 bits, initially zero.
    let mut rem: Vec<Signal> = vec![zero; width + 1];
    // Divisor zero-extended to width + 1 bits and complemented for subtraction.
    let not_y_ext: Vec<Signal> = y
        .iter()
        .map(|s| s.complement())
        .chain(std::iter::once(zero.complement()))
        .collect();

    let mut quotient = vec![zero; width];
    for i in (0..width).rev() {
        // rem = (rem << 1) | x_i, keeping width + 1 bits.
        let mut shifted = Vec::with_capacity(width + 1);
        shifted.push(x[i]);
        shifted.extend_from_slice(&rem[..width]);
        // trial = rem - y  (rem + ¬y + 1); carry-out means rem >= y.
        let (trial, ge) = b.ripple_add(&shifted, &not_y_ext, one);
        quotient[i] = ge;
        rem = b.mux_word(ge, &trial, &shifted);
    }
    quotient
}

/// Two's-complement absolute value: conditionally negate based on the sign bit.
pub(crate) fn build_abs<B: LogicBuilder>(b: &mut B, x: &[Signal]) -> Vec<Signal> {
    let width = x.len();
    let sign = x[width - 1];
    // (x XOR sign) + sign  — implemented with an incrementer chain of half adders.
    let mut carry = sign;
    let mut out = Vec::with_capacity(width);
    for &bit in x {
        let flipped = b.xor2(bit, sign);
        let (s, c) = b.half_adder(flipped, carry);
        out.push(s);
        carry = c;
    }
    out
}
