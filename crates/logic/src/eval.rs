//! Bit-parallel evaluation of logic graphs, used to verify synthesized circuits.

use crate::signal::Signal;

/// A logic graph that can be simulated.
///
/// Evaluation is *packed*: every primary input is assigned a 64-bit word, and the graph is
/// evaluated bitwise, so 64 independent test vectors are simulated per call. This is the
/// software analogue of the DRAM substrate's SIMD execution (where each bitline is a lane)
/// and is what the property-based tests use to compare circuits against reference
/// semantics.
pub trait EvalGraph {
    /// Number of primary inputs the graph declares.
    fn input_count(&self) -> usize;

    /// Evaluates the graph with the given packed input assignment and returns the packed
    /// value of each requested output signal.
    ///
    /// # Panics
    ///
    /// Implementations panic if `inputs.len()` differs from [`EvalGraph::input_count`].
    fn eval_packed(&self, inputs: &[u64], outputs: &[Signal]) -> Vec<u64>;

    /// Evaluates the graph for a single assignment of boolean input values.
    fn eval_single(&self, inputs: &[bool], outputs: &[Signal]) -> Vec<bool> {
        let packed: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_packed(&packed, outputs)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}
