//! The [`LogicBuilder`] abstraction: one set of operation generators, two target
//! representations.
//!
//! SIMDRAM's Step 1 derives an optimized MAJ/NOT implementation of each operation, while the
//! Ambit baseline implements the *same* operation out of AND/OR/NOT building blocks. To
//! guarantee both implementations compute identical functions, every operation generator in
//! [`crate::ops`] is written once against the [`LogicBuilder`] trait and instantiated over
//! both [`crate::Mig`] (majority-inverter graph) and [`crate::Aig`] (and-inverter graph).
//!
//! Default method implementations express derived gates (OR, XOR, MUX, majority, full adder)
//! in terms of AND/NOT, which is what an AIG uses. The MIG implementation overrides the
//! majority-friendly ones (`and2`, `or2`, `maj3`, `full_adder`) with majority-native
//! constructions, which is precisely where SIMDRAM's command-count advantage comes from.

use crate::signal::Signal;

/// A builder of combinational logic networks.
///
/// Complementation (`NOT`) is free in both target representations (complemented edges), so
/// it is provided by [`Signal::complement`] rather than by the builder.
pub trait LogicBuilder {
    /// Returns the constant signal with the given value.
    fn const_signal(&mut self, value: bool) -> Signal;

    /// Allocates a new primary input and returns its signal.
    fn add_input(&mut self) -> Signal;

    /// Two-input AND.
    fn and2(&mut self, a: Signal, b: Signal) -> Signal;

    /// Two-input OR. Default: De Morgan over [`LogicBuilder::and2`].
    fn or2(&mut self, a: Signal, b: Signal) -> Signal {
        self.and2(a.complement(), b.complement()).complement()
    }

    /// Three-input majority. Default: `(a·b) + (b·c) + (a·c)`.
    fn maj3(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let ab = self.and2(a, b);
        let bc = self.and2(b, c);
        let ac = self.and2(a, c);
        let t = self.or2(ab, bc);
        self.or2(t, ac)
    }

    /// Two-input XOR. Default: `a·¬b + ¬a·b`.
    fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        let x = self.and2(a, b.complement());
        let y = self.and2(a.complement(), b);
        self.or2(x, y)
    }

    /// Two-input XNOR.
    fn xnor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.xor2(a, b).complement()
    }

    /// Two-to-one multiplexer: returns `then_s` when `sel` is 1, `else_s` otherwise.
    fn mux(&mut self, sel: Signal, then_s: Signal, else_s: Signal) -> Signal {
        let a = self.and2(sel, then_s);
        let b = self.and2(sel.complement(), else_s);
        self.or2(a, b)
    }

    /// Full adder: returns `(sum, carry_out)`.
    ///
    /// Default: carry = `MAJ(a, b, cin)` (expanded per the representation), sum via two XORs.
    fn full_adder(&mut self, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
        let carry = self.maj3(a, b, cin);
        let t = self.xor2(a, b);
        let sum = self.xor2(t, cin);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry_out)`.
    fn half_adder(&mut self, a: Signal, b: Signal) -> (Signal, Signal) {
        let sum = self.xor2(a, b);
        let carry = self.and2(a, b);
        (sum, carry)
    }

    /// AND over an arbitrary number of signals (returns constant 1 for an empty slice).
    fn and_many(&mut self, signals: &[Signal]) -> Signal {
        match signals {
            [] => self.const_signal(true),
            [only] => *only,
            [first, rest @ ..] => {
                let mut acc = *first;
                for &s in rest {
                    acc = self.and2(acc, s);
                }
                acc
            }
        }
    }

    /// OR over an arbitrary number of signals (returns constant 0 for an empty slice).
    fn or_many(&mut self, signals: &[Signal]) -> Signal {
        match signals {
            [] => self.const_signal(false),
            [only] => *only,
            [first, rest @ ..] => {
                let mut acc = *first;
                for &s in rest {
                    acc = self.or2(acc, s);
                }
                acc
            }
        }
    }

    /// XOR over an arbitrary number of signals (returns constant 0 for an empty slice).
    fn xor_many(&mut self, signals: &[Signal]) -> Signal {
        match signals {
            [] => self.const_signal(false),
            [only] => *only,
            [first, rest @ ..] => {
                let mut acc = *first;
                for &s in rest {
                    acc = self.xor2(acc, s);
                }
                acc
            }
        }
    }

    /// Ripple-carry addition of two equally sized words, with an explicit carry-in.
    /// Returns the sum bits (LSB first) and the final carry-out.
    fn ripple_add(
        &mut self,
        a: &[Signal],
        b: &[Signal],
        carry_in: Signal,
    ) -> (Vec<Signal>, Signal) {
        assert_eq!(a.len(), b.len(), "ripple_add requires equal operand widths");
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, c) = self.full_adder(ai, bi, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Word-level multiplexer over equally sized words.
    fn mux_word(&mut self, sel: Signal, then_w: &[Signal], else_w: &[Signal]) -> Vec<Signal> {
        assert_eq!(then_w.len(), else_w.len(), "mux_word requires equal widths");
        then_w
            .iter()
            .zip(else_w)
            .map(|(&t, &e)| self.mux(sel, t, e))
            .collect()
    }
}
