//! Signals (node references with optional complementation) shared by the MIG and AIG
//! representations.

use std::fmt;

/// A reference to a logic node, possibly complemented.
///
/// Signals are encoded like AIG literals: the node index shifted left by one, with the
/// least-significant bit holding the complement flag. Complementation is therefore free —
/// it never allocates a node — which matches both representations used by SIMDRAM
/// (majority-*inverter* graphs) and Ambit (and-*inverter* graphs).
///
/// # Examples
///
/// ```
/// use simdram_logic::Signal;
///
/// let s = Signal::new(5, false);
/// assert_eq!(s.node(), 5);
/// assert!(!s.is_complemented());
/// assert_eq!(s.complement().node(), 5);
/// assert!(s.complement().is_complemented());
/// assert_eq!(s.complement().complement(), s);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal {
    lit: u32,
}

impl Signal {
    /// Creates a signal referring to node `node`, complemented if `complemented` is true.
    pub fn new(node: u32, complemented: bool) -> Self {
        Signal {
            lit: (node << 1) | u32::from(complemented),
        }
    }

    /// The index of the referenced node.
    pub fn node(self) -> u32 {
        self.lit >> 1
    }

    /// Whether the signal is complemented.
    pub fn is_complemented(self) -> bool {
        self.lit & 1 == 1
    }

    /// Returns the complemented version of this signal.
    #[must_use]
    pub fn complement(self) -> Signal {
        Signal { lit: self.lit ^ 1 }
    }

    /// Returns this signal complemented if `cond` is true, unchanged otherwise.
    #[must_use]
    pub fn complement_if(self, cond: bool) -> Signal {
        Signal {
            lit: self.lit ^ u32::from(cond),
        }
    }

    /// The raw literal encoding (node index × 2 + complement bit).
    pub fn literal(self) -> u32 {
        self.lit
    }

    /// Rebuilds a signal from its raw literal encoding.
    pub fn from_literal(lit: u32) -> Self {
        Signal { lit }
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for node in [0u32, 1, 7, 1000] {
            for comp in [false, true] {
                let s = Signal::new(node, comp);
                assert_eq!(s.node(), node);
                assert_eq!(s.is_complemented(), comp);
                assert_eq!(Signal::from_literal(s.literal()), s);
            }
        }
    }

    #[test]
    fn complement_is_involutive() {
        let s = Signal::new(42, false);
        assert_eq!(s.complement().complement(), s);
        assert_ne!(s.complement(), s);
    }

    #[test]
    fn complement_if_only_flips_when_true() {
        let s = Signal::new(3, false);
        assert_eq!(s.complement_if(false), s);
        assert_eq!(s.complement_if(true), s.complement());
    }

    #[test]
    fn debug_format_marks_complemented_signals() {
        assert_eq!(format!("{:?}", Signal::new(2, true)), "!n2");
        assert_eq!(format!("{}", Signal::new(2, false)), "n2");
    }
}
