//! The SIMDRAM operation set and its reference (scalar) semantics.
//!
//! The paper demonstrates the framework on a set of 16 operations spanning five classes:
//! N-input logic operations, relational operations, arithmetic, predication, and "other"
//! complex operations (bitcount, ReLU). This module enumerates them, records their shape
//! (number of word operands, whether a 1-bit predicate is used, output width) and provides a
//! scalar reference implementation used to verify both the synthesized circuits and the
//! end-to-end in-DRAM execution.
//!
//! ## Semantics conventions
//!
//! * Words are `width`-bit values stored LSB-first; `width` may be 1–64.
//! * `Add`, `Sub` and `Mul` wrap modulo `2^width` (`Mul` returns the low half).
//! * `Div` is unsigned integer division; division by zero yields all-ones (the hardware
//!   convention of saturating to the maximum representable value).
//! * `Greater`, `GreaterEqual`, `Equal` are unsigned comparisons producing a 1-bit result.
//! * `Max`/`Min` are unsigned selections.
//! * `Abs` and `Relu` interpret their operand as a two's-complement signed value.
//! * `AndRed`/`OrRed`/`XorRed` reduce the bits of operand A to a single bit.
//! * `BitCount` returns the population count of operand A (in `width` output bits).
//! * `IfElse` selects operand A where the 1-bit predicate is set, operand B elsewhere.

use std::fmt;

/// One of the 16 operations the SIMDRAM paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operation {
    /// Two's-complement absolute value of A.
    Abs,
    /// A + B (mod 2^width).
    Add,
    /// AND-reduction of the bits of A (1-bit result).
    AndRed,
    /// Population count of A.
    BitCount,
    /// Unsigned A / B (all-ones when B = 0).
    Div,
    /// A == B (1-bit result).
    Equal,
    /// Unsigned A > B (1-bit result).
    Greater,
    /// Unsigned A >= B (1-bit result).
    GreaterEqual,
    /// Predicated select: predicate ? A : B.
    IfElse,
    /// Unsigned max(A, B).
    Max,
    /// Unsigned min(A, B).
    Min,
    /// A × B (low `width` bits).
    Mul,
    /// OR-reduction of the bits of A (1-bit result).
    OrRed,
    /// ReLU(A) for two's-complement A: A if A ≥ 0, else 0.
    Relu,
    /// A − B (mod 2^width).
    Sub,
    /// XOR-reduction of the bits of A (1-bit result).
    XorRed,
}

impl Operation {
    /// All 16 operations, in a stable order used by tables and figures.
    pub const ALL: [Operation; 16] = [
        Operation::Abs,
        Operation::Add,
        Operation::AndRed,
        Operation::BitCount,
        Operation::Div,
        Operation::Equal,
        Operation::Greater,
        Operation::GreaterEqual,
        Operation::IfElse,
        Operation::Max,
        Operation::Min,
        Operation::Mul,
        Operation::OrRed,
        Operation::Relu,
        Operation::Sub,
        Operation::XorRed,
    ];

    /// Short lower-case name used in tables (matches the paper's operation names).
    pub fn name(self) -> &'static str {
        match self {
            Operation::Abs => "abs",
            Operation::Add => "addition",
            Operation::AndRed => "and_red",
            Operation::BitCount => "bitcount",
            Operation::Div => "division",
            Operation::Equal => "equal",
            Operation::Greater => "greater",
            Operation::GreaterEqual => "greater_equal",
            Operation::IfElse => "if_else",
            Operation::Max => "max",
            Operation::Min => "min",
            Operation::Mul => "multiplication",
            Operation::OrRed => "or_red",
            Operation::Relu => "relu",
            Operation::Sub => "subtraction",
            Operation::XorRed => "xor_red",
        }
    }

    /// The class the paper assigns the operation to.
    pub fn class(self) -> OperationClass {
        match self {
            Operation::AndRed | Operation::OrRed | Operation::XorRed => OperationClass::NInputLogic,
            Operation::Equal
            | Operation::Greater
            | Operation::GreaterEqual
            | Operation::Max
            | Operation::Min => OperationClass::Relational,
            Operation::Add | Operation::Sub | Operation::Mul | Operation::Div => {
                OperationClass::Arithmetic
            }
            Operation::IfElse => OperationClass::Predication,
            Operation::Abs | Operation::BitCount | Operation::Relu => OperationClass::Other,
        }
    }

    /// Whether the operation consumes a second word operand (B).
    pub fn uses_second_operand(self) -> bool {
        matches!(
            self,
            Operation::Add
                | Operation::Sub
                | Operation::Mul
                | Operation::Div
                | Operation::Equal
                | Operation::Greater
                | Operation::GreaterEqual
                | Operation::Max
                | Operation::Min
                | Operation::IfElse
        )
    }

    /// Whether the operation consumes a 1-bit predicate input.
    pub fn uses_predicate(self) -> bool {
        matches!(self, Operation::IfElse)
    }

    /// Width of the result in bits, for a given operand width.
    pub fn output_width(self, width: usize) -> usize {
        match self {
            Operation::Equal
            | Operation::Greater
            | Operation::GreaterEqual
            | Operation::AndRed
            | Operation::OrRed
            | Operation::XorRed => 1,
            _ => width,
        }
    }

    /// Scalar reference semantics.
    ///
    /// `a` and `b` are interpreted as `width`-bit values (higher bits are ignored); `pred`
    /// is the 1-bit predicate (only used by [`Operation::IfElse`]). The result is truncated
    /// to [`Operation::output_width`] bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn reference(self, width: usize, a: u64, b: u64, pred: bool) -> u64 {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let mask = word_mask(width);
        let a = a & mask;
        let b = b & mask;
        let sign_bit = 1u64 << (width - 1);
        let result = match self {
            Operation::Abs => {
                if a & sign_bit != 0 {
                    a.wrapping_neg()
                } else {
                    a
                }
            }
            Operation::Add => a.wrapping_add(b),
            Operation::AndRed => u64::from(a == mask),
            Operation::BitCount => u64::from(a.count_ones()),
            Operation::Div => a.checked_div(b).unwrap_or(mask),
            Operation::Equal => u64::from(a == b),
            Operation::Greater => u64::from(a > b),
            Operation::GreaterEqual => u64::from(a >= b),
            Operation::IfElse => {
                if pred {
                    a
                } else {
                    b
                }
            }
            Operation::Max => a.max(b),
            Operation::Min => a.min(b),
            Operation::Mul => a.wrapping_mul(b),
            Operation::OrRed => u64::from(a != 0),
            Operation::Relu => {
                if a & sign_bit != 0 {
                    0
                } else {
                    a
                }
            }
            Operation::Sub => a.wrapping_sub(b),
            Operation::XorRed => u64::from(a.count_ones() % 2 == 1),
        };
        result & word_mask(self.output_width(width))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The five operation classes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationClass {
    /// N-input bitwise logic (AND/OR/XOR reductions).
    NInputLogic,
    /// Relational operations (comparisons, max/min).
    Relational,
    /// Arithmetic operations.
    Arithmetic,
    /// Predication (if-then-else).
    Predication,
    /// Other complex operations (bitcount, ReLU, abs).
    Other,
}

impl fmt::Display for OperationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OperationClass::NInputLogic => "N-input logic",
            OperationClass::Relational => "relational",
            OperationClass::Arithmetic => "arithmetic",
            OperationClass::Predication => "predication",
            OperationClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Mask selecting the low `width` bits of a word.
///
/// # Panics
///
/// Panics if `width > 64`.
pub fn word_mask(width: usize) -> u64 {
    assert!(width <= 64);
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_sixteen_distinct_operations() {
        let mut names: Vec<&str> = Operation::ALL.iter().map(|op| op.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn arithmetic_wraps_modulo_width() {
        assert_eq!(Operation::Add.reference(8, 0xFF, 0x01, false), 0x00);
        assert_eq!(Operation::Sub.reference(8, 0x00, 0x01, false), 0xFF);
        assert_eq!(Operation::Mul.reference(8, 0x10, 0x10, false), 0x00);
        assert_eq!(Operation::Mul.reference(8, 7, 9, false), 63);
    }

    #[test]
    fn division_by_zero_saturates() {
        assert_eq!(Operation::Div.reference(8, 42, 0, false), 0xFF);
        assert_eq!(Operation::Div.reference(8, 42, 5, false), 8);
    }

    #[test]
    fn comparisons_are_unsigned_one_bit() {
        assert_eq!(Operation::Greater.reference(8, 200, 100, false), 1);
        assert_eq!(Operation::Greater.reference(8, 100, 200, false), 0);
        assert_eq!(Operation::GreaterEqual.reference(8, 5, 5, false), 1);
        assert_eq!(Operation::Equal.reference(8, 5, 6, false), 0);
        assert_eq!(Operation::Equal.reference(8, 6, 6, false), 1);
    }

    #[test]
    fn signed_operations_use_twos_complement() {
        // -1 in 8 bits is 0xFF.
        assert_eq!(Operation::Abs.reference(8, 0xFF, 0, false), 1);
        assert_eq!(Operation::Abs.reference(8, 0x05, 0, false), 5);
        assert_eq!(Operation::Relu.reference(8, 0xFF, 0, false), 0);
        assert_eq!(Operation::Relu.reference(8, 0x7F, 0, false), 0x7F);
    }

    #[test]
    fn reductions_and_bitcount() {
        assert_eq!(Operation::AndRed.reference(4, 0b1111, 0, false), 1);
        assert_eq!(Operation::AndRed.reference(4, 0b1110, 0, false), 0);
        assert_eq!(Operation::OrRed.reference(4, 0b0000, 0, false), 0);
        assert_eq!(Operation::OrRed.reference(4, 0b0100, 0, false), 1);
        assert_eq!(Operation::XorRed.reference(4, 0b0110, 0, false), 0);
        assert_eq!(Operation::XorRed.reference(4, 0b0111, 0, false), 1);
        assert_eq!(Operation::BitCount.reference(8, 0b1011_0110, 0, false), 5);
    }

    #[test]
    fn if_else_uses_predicate() {
        assert_eq!(Operation::IfElse.reference(8, 1, 2, true), 1);
        assert_eq!(Operation::IfElse.reference(8, 1, 2, false), 2);
    }

    #[test]
    fn max_min_select_operands() {
        assert_eq!(Operation::Max.reference(8, 9, 200, false), 200);
        assert_eq!(Operation::Min.reference(8, 9, 200, false), 9);
    }

    #[test]
    fn output_width_shrinks_for_flags() {
        assert_eq!(Operation::Equal.output_width(32), 1);
        assert_eq!(Operation::Add.output_width(32), 32);
        assert_eq!(Operation::BitCount.output_width(32), 32);
    }

    #[test]
    fn operand_shape_metadata() {
        assert!(Operation::Add.uses_second_operand());
        assert!(!Operation::Abs.uses_second_operand());
        assert!(Operation::IfElse.uses_predicate());
        assert!(!Operation::Add.uses_predicate());
    }

    #[test]
    fn classes_cover_paper_taxonomy() {
        assert_eq!(Operation::AndRed.class(), OperationClass::NInputLogic);
        assert_eq!(Operation::Max.class(), OperationClass::Relational);
        assert_eq!(Operation::Div.class(), OperationClass::Arithmetic);
        assert_eq!(Operation::IfElse.class(), OperationClass::Predication);
        assert_eq!(Operation::Relu.class(), OperationClass::Other);
    }

    #[test]
    fn word_mask_edges() {
        assert_eq!(word_mask(1), 1);
        assert_eq!(word_mask(8), 0xFF);
        assert_eq!(word_mask(64), u64::MAX);
    }
}
