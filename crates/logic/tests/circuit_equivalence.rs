//! Property-based and exhaustive verification of the synthesized operation circuits.
//!
//! Every operation circuit — in both the MIG (SIMDRAM) and AIG (Ambit) representations —
//! must match the scalar reference semantics of [`Operation::reference`] for all operand
//! values. Small widths are checked exhaustively; larger widths are checked with proptest.

use proptest::prelude::*;
use simdram_logic::{Aig, Mig, Operation, WordCircuit};

fn check_exhaustive_width(op: Operation, width: usize) {
    let mig: WordCircuit<Mig> = WordCircuit::synthesize(op, width);
    let aig: WordCircuit<Aig> = WordCircuit::synthesize(op, width);
    let limit = 1u64 << width;
    for a in 0..limit {
        for b in 0..if op.uses_second_operand() { limit } else { 1 } {
            for pred in if op.uses_predicate() {
                vec![false, true]
            } else {
                vec![false]
            } {
                let expected = op.reference(width, a, b, pred);
                assert_eq!(
                    mig.eval_scalar(a, b, pred),
                    expected,
                    "MIG {op} width={width} a={a} b={b} pred={pred}"
                );
                assert_eq!(
                    aig.eval_scalar(a, b, pred),
                    expected,
                    "AIG {op} width={width} a={a} b={b} pred={pred}"
                );
            }
        }
    }
}

#[test]
fn all_operations_exhaustive_at_width_3() {
    for op in Operation::ALL {
        check_exhaustive_width(op, 3);
    }
}

#[test]
fn all_operations_exhaustive_at_width_4() {
    for op in Operation::ALL {
        check_exhaustive_width(op, 4);
    }
}

#[test]
fn single_bit_operations_are_correct() {
    for op in Operation::ALL {
        check_exhaustive_width(op, 1);
    }
}

#[test]
fn mig_is_never_larger_than_aig() {
    // The whole point of Step 1: the MAJ/NOT implementation needs at most as many gates as
    // the AND/OR/NOT implementation, and strictly fewer for the arithmetic-heavy operations.
    for op in Operation::ALL {
        let mig: WordCircuit<Mig> = WordCircuit::synthesize(op, 16);
        let aig: WordCircuit<Aig> = WordCircuit::synthesize(op, 16);
        assert!(
            mig.gate_count() <= aig.gate_count(),
            "{op}: MIG {} gates > AIG {} gates",
            mig.gate_count(),
            aig.gate_count()
        );
    }
    let mig_add: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 16);
    let aig_add: WordCircuit<Aig> = WordCircuit::synthesize(Operation::Add, 16);
    assert!(mig_add.gate_count() < aig_add.gate_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mig_matches_reference_width_8(a in 0u64..256, b in 0u64..256, pred: bool) {
        for op in Operation::ALL {
            let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, 8);
            prop_assert_eq!(circuit.eval_scalar(a, b, pred), op.reference(8, a, b, pred));
        }
    }

    #[test]
    fn aig_matches_reference_width_8(a in 0u64..256, b in 0u64..256, pred: bool) {
        for op in Operation::ALL {
            let circuit: WordCircuit<Aig> = WordCircuit::synthesize(op, 8);
            prop_assert_eq!(circuit.eval_scalar(a, b, pred), op.reference(8, a, b, pred));
        }
    }

    #[test]
    fn mig_matches_reference_width_16_arithmetic(a in 0u64..65536, b in 0u64..65536) {
        for op in [Operation::Add, Operation::Sub, Operation::Mul, Operation::Div,
                   Operation::Greater, Operation::GreaterEqual, Operation::Equal,
                   Operation::Max, Operation::Min] {
            let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, 16);
            prop_assert_eq!(circuit.eval_scalar(a, b, false), op.reference(16, a, b, false));
        }
    }

    #[test]
    fn mig_matches_reference_width_32_add_sub(a: u32, b: u32) {
        for op in [Operation::Add, Operation::Sub, Operation::Relu, Operation::Abs,
                   Operation::BitCount] {
            let circuit: WordCircuit<Mig> = WordCircuit::synthesize(op, 32);
            prop_assert_eq!(
                circuit.eval_scalar(a as u64, b as u64, false),
                op.reference(32, a as u64, b as u64, false)
            );
        }
    }

    #[test]
    fn lane_evaluation_matches_scalar_evaluation(
        values in proptest::collection::vec((0u64..256, 0u64..256, any::<bool>()), 1..32)
    ) {
        let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::IfElse, 8);
        let a: Vec<u64> = values.iter().map(|v| v.0).collect();
        let b: Vec<u64> = values.iter().map(|v| v.1).collect();
        let p: Vec<bool> = values.iter().map(|v| v.2).collect();
        let lanes = circuit.eval_lanes(&a, &b, &p);
        for (i, lane) in lanes.iter().enumerate() {
            prop_assert_eq!(*lane, circuit.eval_scalar(a[i], b[i], p[i]));
        }
    }
}
