//! Property tests of the serving layer's packing invariants: concurrently admitted
//! plans never receive overlapping subarray sets, serving N independent plans is
//! bit-identical to running them sequentially on dedicated machines, and everything
//! is identical under both `SIMDRAM_EXEC` execution policies.

use proptest::prelude::*;
use simdram_core::{
    ExecutionPolicy, Plan, PlanBuilder, PlanOutput, SimdVector, SimdramConfig, SimdramMachine,
};
use simdram_logic::{word_mask, Operation};
use simdram_serve::{PlanServer, ServeConfig, TenantSpec};

/// Width-preserving binary operations, so any two compose.
const OPS: [Operation; 5] = [
    Operation::Add,
    Operation::Sub,
    Operation::Mul,
    Operation::Min,
    Operation::Max,
];

/// One random job: two op choices, an element width, a constant and a length seed.
type JobSpec = (u8, u8, usize, u64, usize);

fn machine_with(policy: ExecutionPolicy) -> SimdramMachine {
    let mut config = SimdramConfig::functional_test();
    config.execution = policy;
    SimdramMachine::new(config).unwrap()
}

fn job_len(len_seed: usize, lanes: usize) -> usize {
    // 1..=lanes elements, spanning one to all subarray chunks.
    len_seed % lanes + 1
}

fn job_values(len: usize, width: usize, seed: u64) -> Vec<u64> {
    let mask = word_mask(width);
    (0..len as u64).map(|i| (i * 37 + seed) & mask).collect()
}

/// Builds the job's two-op plan over the given machine-resident input.
fn build_plan(input: &SimdVector, spec: &JobSpec) -> (Plan, PlanOutput) {
    let (op1, op2, width, constant, _) = *spec;
    let mut builder = PlanBuilder::new();
    let x = builder.input(input);
    let c = builder
        .constant(width, input.len(), constant & word_mask(width))
        .unwrap();
    let first = builder.binary(OPS[op1 as usize % OPS.len()], x, c).unwrap();
    let second = builder
        .binary(OPS[op2 as usize % OPS.len()], first, x)
        .unwrap();
    let out = builder.materialize(second).unwrap();
    (builder.compile().unwrap(), out)
}

/// Serves every job through one shared `PlanServer`, returning the per-job outputs
/// (in job order) and the drained server for invariant checks.
fn run_served(
    policy: ExecutionPolicy,
    tenants: usize,
    jobs: &[JobSpec],
) -> (Vec<Vec<u64>>, PlanServer) {
    let mut server = PlanServer::new(machine_with(policy), ServeConfig::new());
    let lanes = server.machine().lanes();
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            server.register_tenant(TenantSpec::new(format!("tenant-{t}")).with_weight(t as u64 + 1))
        })
        .collect();
    let mut handles = Vec::new();
    for (index, spec) in jobs.iter().enumerate() {
        let tenant = ids[index % ids.len()];
        let (_, _, width, seed, len_seed) = *spec;
        let len = job_len(len_seed, lanes);
        let values = job_values(len, width, seed);
        let input = server.write_input(tenant, width, &values).unwrap();
        let (plan, out) = build_plan(&input, spec);
        let job = server.submit(tenant, plan).unwrap();
        handles.push((job, out));
    }
    server.serve().unwrap();
    let outputs = handles
        .into_iter()
        .map(|(job, out)| server.take_result(job).unwrap().output(out).to_vec())
        .collect();
    (outputs, server)
}

/// Runs every job alone on a dedicated machine — the sequential reference.
fn run_sequential(policy: ExecutionPolicy, jobs: &[JobSpec]) -> (Vec<Vec<u64>>, usize) {
    let mut outputs = Vec::new();
    let mut dispatches = 0;
    for spec in jobs {
        let mut m = machine_with(policy);
        let (_, _, width, seed, len_seed) = *spec;
        let len = job_len(len_seed, m.lanes());
        let values = job_values(len, width, seed);
        let input = m.alloc_and_write(width, &values).unwrap();
        let (plan, out) = build_plan(&input, spec);
        let exec = m.run_plan(&plan).unwrap();
        outputs.push(m.read(exec.output(out)).unwrap());
        dispatches += exec.report().broadcasts;
    }
    (outputs, dispatches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn served_plans_are_isolated_fused_and_bit_identical(
        jobs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 2usize..=8, any::<u64>(), any::<usize>()),
            2..10,
        ),
        tenants in 2usize..=4,
        max_threads in 1usize..=4,
    ) {
        let policies = [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Threaded { max_threads },
        ];
        let mut served_runs = Vec::new();
        for policy in policies {
            let (served, server) = run_served(policy, tenants, &jobs);
            let (sequential, sequential_dispatches) = run_sequential(policy, &jobs);

            // Bit-identical to dedicated sequential machines, job by job.
            for (job, (s, q)) in served.iter().zip(&sequential).enumerate() {
                prop_assert_eq!(s, q, "job {} diverged from its solo run", job);
            }

            // Placements within a window are pairwise disjoint and in range.
            let total_chunks = server.machine().compute_chunks();
            for window in server.window_log() {
                for (i, a) in window.placements.iter().enumerate() {
                    prop_assert!(a.chunks > 0);
                    prop_assert!(a.offset + a.chunks <= total_chunks);
                    for b in &window.placements[i + 1..] {
                        let disjoint =
                            a.offset + a.chunks <= b.offset || b.offset + b.chunks <= a.offset;
                        prop_assert!(
                            disjoint,
                            "window {} placed jobs {} and {} on overlapping chunks",
                            window.window, a.job, b.job
                        );
                    }
                }
            }

            // Fusion never issues more dispatches than back-to-back execution, and the
            // report agrees with the log.
            let report = server.report();
            prop_assert_eq!(report.sequential_dispatches, sequential_dispatches);
            prop_assert!(report.fused_dispatches <= report.sequential_dispatches);
            prop_assert_eq!(report.jobs_completed, jobs.len());
            prop_assert_eq!(
                report.fused_dispatches,
                server.window_log().iter().map(|w| w.dispatches).sum::<usize>()
            );

            served_runs.push(served);
        }

        // Identical under both execution policies.
        prop_assert_eq!(&served_runs[0], &served_runs[1]);
    }
}
