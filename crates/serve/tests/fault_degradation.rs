//! Graceful degradation under injected faults: a job whose placement keeps faulting
//! is dropped with a typed error (never a panic, never a poisoned server), the
//! window's other jobs still complete with correct results, and a chunk that faults
//! repeatedly is quarantined — visibly shrinking the placement pool.

use simdram_core::{FaultModel, GuardMode, PlanBuilder, SimdramConfig, SimdramMachine};
use simdram_serve::{PlanServer, ServeConfig, ServeError, TenantSpec};

/// A server over the tiny functional-test machine (2 banks × 2 subarrays = 4 chunks)
/// with a weak-cell row map and guarded execution. The rowmap model plants
/// persistent weak cells in a seed-chosen subset of subarrays whose flips rarely
/// repeat identically, so guarded re-execution detects them but retry rarely
/// converges — exactly the profile that exercises the drop/quarantine path.
///
/// The fault and guard modes are set explicitly (not from the environment) so the
/// test is deterministic under the CI matrix's `SIMDRAM_FAULTS` / `SIMDRAM_GUARD`
/// legs too.
fn degraded_server(seed: u64) -> PlanServer {
    let mut config = SimdramConfig::functional_test();
    config.faults = FaultModel::rowmap(seed);
    config.guard = GuardMode::redundant();
    let machine = SimdramMachine::new(config).unwrap();
    PlanServer::new(machine, ServeConfig::new())
}

/// One single-chunk job: out = input + 1.
fn submit_add_one(
    server: &mut PlanServer,
    tenant: simdram_serve::TenantId,
    values: &[u64],
) -> (simdram_serve::JobId, simdram_core::PlanOutput) {
    let input = server.write_input(tenant, 8, values).unwrap();
    let mut builder = PlanBuilder::new();
    let x = builder.input(&input);
    let one = builder.constant(8, values.len(), 1).unwrap();
    let sum = builder.add(x, one).unwrap();
    let out = builder.materialize(sum).unwrap();
    let job = server.submit(tenant, builder.compile().unwrap()).unwrap();
    (job, out)
}

#[test]
fn faulted_jobs_are_dropped_typed_and_repeated_faults_quarantine_the_chunk() {
    // Seed 2 plants exactly one weak subarray (chunk 2) among the machine's four
    // chunks, so one job per full window lands on it and faults.
    let mut server = degraded_server(2);
    let a = server.register_tenant(TenantSpec::new("a"));
    let b = server.register_tenant(TenantSpec::new("b"));

    // Two rounds of four single-chunk jobs: each round fills the machine, so every
    // chunk — weak ones included — hosts a job, and a weak chunk faults once per
    // round until it crosses the quarantine threshold.
    let jobs: Vec<_> = (0..8)
        .map(|i| {
            let tenant = if i % 2 == 0 { a } else { b };
            submit_add_one(&mut server, tenant, &[10 + i, 20 + i])
        })
        .collect();

    // serve() must run to completion: unrecovered faults are contained to their
    // jobs, never propagated out of the window loop.
    let report = server.serve().unwrap();
    let health = server.health();

    // The seed plants at least one weak subarray among the four chunks, and the
    // rowmap's non-repeating flips defeat the retry budget, so jobs were dropped.
    assert!(
        report.jobs_faulted >= 1,
        "expected dropped jobs, got report {report}"
    );
    assert_eq!(report.jobs_faulted, health.jobs_faulted);
    assert!(health.detected_faults >= health.exhausted_faults);
    assert!(health.exhausted_faults as usize >= report.jobs_faulted);
    assert!(!health.is_healthy());

    // The weak chunk faulted in at least two windows, crossing the quarantine
    // threshold: capacity visibly shrinks and stays shrunk after all reservations
    // are released.
    assert!(
        health.quarantined_chunks >= 1,
        "expected quarantined capacity, got {health}"
    );
    assert_eq!(
        health.free_chunks,
        health.compute_chunks - health.quarantined_chunks
    );
    assert!(health.degraded_fraction > 0.0);

    // Every job either completed with the exact expected result or reports a typed
    // fault that names a chunk inside the machine.
    let mut completed = 0;
    let mut faulted = 0;
    for (i, (job, out)) in jobs.into_iter().enumerate() {
        match server.take_result(job) {
            Ok(result) => {
                completed += 1;
                let i = i as u64;
                assert_eq!(result.output(out), &[11 + i, 21 + i]);
            }
            Err(ServeError::JobFaulted { job: j, report }) => {
                faulted += 1;
                assert_eq!(j, job);
                assert!(report.fault.chunk < health.compute_chunks);
                assert!(report.fault.attempts >= 1);
                // The typed failure is stable across repeated queries.
                assert!(matches!(
                    server.take_result(job),
                    Err(ServeError::JobFaulted { .. })
                ));
            }
            Err(other) => panic!("expected a result or JobFaulted, got {other:?}"),
        }
    }
    assert_eq!(completed, report.jobs_completed);
    assert_eq!(faulted, report.jobs_faulted);
    assert_eq!(completed + faulted, 8);

    // The per-tenant ledgers agree with the aggregate.
    let tenant_faulted: usize = report.tenants.iter().map(|t| t.jobs_faulted).sum();
    assert_eq!(tenant_faulted, report.jobs_faulted);

    // The degraded server still serves: a fresh job placed on the surviving chunks
    // completes correctly.
    let (job, out) = submit_add_one(&mut server, a, &[100]);
    server.serve().unwrap();
    assert_eq!(server.take_result(job).unwrap().output(out), &[101]);
}

#[test]
fn fault_free_server_reports_healthy_and_identical_results() {
    let mut config = SimdramConfig::functional_test();
    config.faults = FaultModel::Off;
    config.guard = GuardMode::Off;
    let machine = SimdramMachine::new(config).unwrap();
    let mut server = PlanServer::new(machine, ServeConfig::new());
    let a = server.register_tenant(TenantSpec::new("a"));
    let (job, out) = submit_add_one(&mut server, a, &[7, 8, 9]);
    let report = server.serve().unwrap();
    let health = server.health();

    assert_eq!(server.take_result(job).unwrap().output(out), &[8, 9, 10]);
    assert!(health.is_healthy());
    assert_eq!(health.free_chunks, health.compute_chunks);
    assert_eq!(health.quarantined_chunks, 0);
    assert_eq!(report.jobs_faulted, 0);
    assert_eq!(report.fault_retries, 0);
    assert_eq!(report.quarantined_chunks, 0);
    // The fault lines are omitted entirely from a healthy report's display, keeping
    // faults-off output byte-identical to previous releases.
    assert!(!format!("{report}").contains("faults:"));
}
