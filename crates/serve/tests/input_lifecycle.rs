//! Regression tests for the staged-input lifecycle: a tenant must not be able to
//! free an input out from under a queued plan (the write_input → submit →
//! release_input → run_window sequence used to panic the whole server), and the
//! scheduler must clamp hostile tenant specs.

use simdram_core::{PlanBuilder, SimdramConfig, SimdramMachine};
use simdram_serve::{PlanServer, ServeConfig, ServeError, TenantSpec};

fn server() -> PlanServer {
    let machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
    PlanServer::new(machine, ServeConfig::new())
}

#[test]
fn release_input_is_refused_while_a_queued_plan_reads_it() {
    let mut server = server();
    let tenant = server.register_tenant(TenantSpec::new("a"));
    let input = server.write_input(tenant, 8, &[1, 2, 3]).unwrap();

    let mut builder = PlanBuilder::new();
    let x = builder.input(&input);
    let one = builder.constant(8, 3, 1).unwrap();
    let sum = builder.add(x, one).unwrap();
    let out = builder.materialize(sum).unwrap();
    let job = server.submit(tenant, builder.compile().unwrap()).unwrap();

    // The release is refused with a typed error naming the blocking job — before the
    // fix this freed the rows and the next window panicked mid-dispatch.
    match server.release_input(tenant, &input) {
        Err(ServeError::InputInUse { vector, job: j }) => {
            assert_eq!(vector, input.id());
            assert_eq!(j, job);
        }
        other => panic!("expected InputInUse, got {other:?}"),
    }

    // The queued job is unharmed and runs to completion.
    server.serve().unwrap();
    assert_eq!(server.take_result(job).unwrap().output(out), &[2, 3, 4]);

    // Once the queue drains, the release goes through.
    server.release_input(tenant, &input).unwrap();
}

#[test]
fn zero_weight_specs_are_clamped_at_registration() {
    let mut server = server();
    // TenantSpec's fields are pub, so a weight of 0 is constructible directly,
    // bypassing with_weight's clamp; registration must clamp it again or the
    // scheduler's credit accrual divides by zero.
    let mut spec = TenantSpec::new("zero");
    spec.weight = 0;
    let tenant = server.register_tenant(spec);

    let input = server.write_input(tenant, 8, &[5]).unwrap();
    let mut builder = PlanBuilder::new();
    let x = builder.input(&input);
    let one = builder.constant(8, 1, 1).unwrap();
    let sum = builder.add(x, one).unwrap();
    let out = builder.materialize(sum).unwrap();
    let job = server.submit(tenant, builder.compile().unwrap()).unwrap();

    let report = server.serve().unwrap();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.tenants[0].weight, 1);
    assert_eq!(server.take_result(job).unwrap().output(out), &[6]);
}
