//! The [`PlanServer`]: submission queues, dispatch windows and result delivery.

use std::collections::{HashMap, HashSet, VecDeque};

use simdram_core::{CoreError, Plan, Reservation, SimdVector, SimdramMachine};

use crate::config::ServeConfig;
use crate::error::{Result, ServeError};
use crate::queue::{JobId, JobResult, PendingJob};
use crate::report::{
    percentile, FaultReport, JobPlacement, ServeReport, ServerHealth, TenantReport, WindowRecord,
};
use crate::scheduler::plan_window;
use crate::tenant::{Tenant, TenantId, TenantSpec};

/// An input vector staged host-side: rows are allocated machine-wide once, but the
/// data is shipped to whichever placement each job is granted, at dispatch time.
#[derive(Debug)]
struct StagedInput {
    owner: TenantId,
    vector: SimdVector,
    values: Vec<u64>,
}

/// A multi-tenant server wrapped around one [`SimdramMachine`].
///
/// Tenants register with a [`TenantSpec`], stage inputs with
/// [`write_input`](Self::write_input), submit compiled [`Plan`]s with
/// [`submit`](Self::submit), and collect host-side [`JobResult`]s with
/// [`take_result`](Self::take_result). [`run_window`](Self::run_window) (or
/// [`serve`](Self::serve), which loops it) admits queued jobs with a weighted
/// deficit-round-robin scheduler, grants each admitted job a disjoint subarray
/// [`Reservation`], and executes all of them **concurrently** through
/// [`SimdramMachine::run_plans_on`] — compatible batches from different tenants fuse
/// into single broadcast dispatches, which is the serving layer's whole throughput
/// argument.
///
/// Time is a deterministic *modeled* clock: it advances by each window's modeled busy
/// latency (compute plus data-shipping transposition), never by wall-clock time, so
/// queueing and tail-latency numbers are exactly reproducible across runs and
/// [`ExecutionPolicy`](simdram_core::ExecutionPolicy)s.
#[derive(Debug)]
pub struct PlanServer {
    machine: SimdramMachine,
    config: ServeConfig,
    tenants: Vec<Tenant>,
    queues: Vec<VecDeque<PendingJob>>,
    staged: HashMap<u64, StagedInput>,
    results: HashMap<JobId, JobResult>,
    aborted: HashSet<JobId>,
    /// Jobs dropped from a window after exhausting the machine's fault-retry budget.
    /// Entries stay so repeated [`take_result`](Self::take_result) calls keep reporting
    /// the same typed failure, and so [`health`](Self::health) can count them.
    faulted: HashMap<JobId, FaultReport>,
    window_log: Vec<WindowRecord>,
    next_job_id: u64,
    now_ns: f64,
    jobs_completed: usize,
    fused_dispatches: usize,
    sequential_dispatches: usize,
    busy_ns: f64,
    energy_nj: f64,
}

impl PlanServer {
    /// Wraps `machine` in a server with the given serving policy.
    pub fn new(machine: SimdramMachine, config: ServeConfig) -> Self {
        PlanServer {
            machine,
            config,
            tenants: Vec::new(),
            queues: Vec::new(),
            staged: HashMap::new(),
            results: HashMap::new(),
            aborted: HashSet::new(),
            faulted: HashMap::new(),
            window_log: Vec::new(),
            next_job_id: 0,
            now_ns: 0.0,
            jobs_completed: 0,
            fused_dispatches: 0,
            sequential_dispatches: 0,
            busy_ns: 0.0,
            energy_nj: 0.0,
        }
    }

    /// Registers a tenant and returns its id.
    ///
    /// The fairness weight is clamped up to at least 1 (a zero weight would give the
    /// scheduler a zero-credit tenant that can never be served fairly).
    pub fn register_tenant(&mut self, mut spec: TenantSpec) -> TenantId {
        let id = TenantId(self.tenants.len() as u64);
        spec.weight = spec.weight.max(1);
        self.tenants.push(Tenant::new(spec));
        self.queues.push(VecDeque::new());
        id
    }

    /// The wrapped machine (read-only — placed state is managed by the server).
    pub fn machine(&self) -> &SimdramMachine {
        &self.machine
    }

    /// The serving policy in effect.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The modeled clock, in nanoseconds since the server started.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Jobs queued across all tenants (excluding completed ones).
    pub fn pending_jobs(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Every dispatch window run so far, with its placements — the ground truth the
    /// packing property tests check disjointness against.
    pub fn window_log(&self) -> &[WindowRecord] {
        &self.window_log
    }

    /// Tears the server down, returning the machine (staged inputs stay allocated).
    pub fn into_machine(self) -> SimdramMachine {
        self.machine
    }

    fn tenant(&self, tenant: TenantId) -> Result<usize> {
        let index = tenant.0 as usize;
        if index < self.tenants.len() {
            Ok(index)
        } else {
            Err(ServeError::UnknownTenant { tenant })
        }
    }

    /// Allocates an input vector and stages `values` for it.
    ///
    /// Rows are allocated machine-wide (every placement sees the same row addresses),
    /// but the data itself is shipped to a job's granted placement at dispatch time —
    /// staging is free of DRAM traffic. The returned handle is what
    /// [`PlanBuilder::input`](simdram_core::PlanBuilder::input) captures.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for an unregistered tenant, or a wrapped
    /// allocation error when the rows or lanes run out.
    pub fn write_input(
        &mut self,
        tenant: TenantId,
        width: usize,
        values: &[u64],
    ) -> Result<SimdVector> {
        let owner = TenantId(self.tenant(tenant)? as u64);
        let vector = self.machine.alloc(width, values.len())?;
        self.staged.insert(
            vector.id(),
            StagedInput {
                owner,
                vector,
                values: values.to_vec(),
            },
        );
        Ok(vector)
    }

    /// Releases a staged input's rows and host copy.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownInput`] if the vector was never staged,
    /// [`ServeError::ForeignInput`] if another tenant staged it,
    /// [`ServeError::InputInUse`] while any queued job's plan still reads it (take or
    /// abandon those jobs first — releasing under a pending plan would let its rows be
    /// reallocated out from under the dispatch).
    pub fn release_input(&mut self, tenant: TenantId, vector: &SimdVector) -> Result<()> {
        self.tenant(tenant)?;
        match self.staged.get(&vector.id()) {
            None => Err(ServeError::UnknownInput {
                vector: vector.id(),
            }),
            Some(staged) if staged.owner != tenant => Err(ServeError::ForeignInput {
                tenant,
                vector: vector.id(),
            }),
            Some(_) => {
                if let Some(job) = self
                    .queues
                    .iter()
                    .flatten()
                    .find(|job| job.plan.input_vectors().any(|v| v.id() == vector.id()))
                {
                    return Err(ServeError::InputInUse {
                        vector: vector.id(),
                        job: job.id,
                    });
                }
                let staged = self.staged.remove(&vector.id()).expect("checked above");
                self.machine.free(staged.vector);
                Ok(())
            }
        }
    }

    /// Submits a compiled plan for the tenant, returning the job's id.
    ///
    /// Admission checks, in order: the tenant exists; the plan's widest batch fits the
    /// tenant's effective chunk quota (the minimum of the tenant's
    /// [`TenantSpec::max_chunks`], the server's
    /// [`ServeConfig::max_chunks_per_job`] and the machine size); the tenant's queue
    /// has room; every input the plan reads was staged by this tenant. Rejections are
    /// counted in the tenant's ledger.
    ///
    /// # Errors
    ///
    /// [`ServeError::QuotaExceeded`], [`ServeError::QueueFull`],
    /// [`ServeError::UnknownInput`], [`ServeError::ForeignInput`] or
    /// [`ServeError::UnknownTenant`], per the checks above.
    pub fn submit(&mut self, tenant: TenantId, plan: Plan) -> Result<JobId> {
        let index = self.tenant(tenant)?;
        let chunks = plan.subarrays_needed(self.machine.lanes_per_subarray());
        let quota = self
            .machine
            .compute_chunks()
            .min(self.config.max_chunks_per_job.unwrap_or(usize::MAX))
            .min(self.tenants[index].spec.max_chunks.unwrap_or(usize::MAX));
        if chunks > quota {
            self.tenants[index].jobs_rejected += 1;
            return Err(ServeError::QuotaExceeded {
                tenant,
                needed: chunks,
                quota,
            });
        }
        let depth_limit = self.config.max_queue_depth.min(
            self.tenants[index]
                .spec
                .max_queue_depth
                .unwrap_or(usize::MAX),
        );
        if self.queues[index].len() >= depth_limit {
            self.tenants[index].jobs_rejected += 1;
            return Err(ServeError::QueueFull {
                tenant,
                depth: depth_limit,
            });
        }
        for vector in plan.input_vectors() {
            match self.staged.get(&vector.id()) {
                None => {
                    self.tenants[index].jobs_rejected += 1;
                    return Err(ServeError::UnknownInput {
                        vector: vector.id(),
                    });
                }
                Some(staged) if staged.owner != tenant => {
                    self.tenants[index].jobs_rejected += 1;
                    return Err(ServeError::ForeignInput {
                        tenant,
                        vector: vector.id(),
                    });
                }
                Some(_) => {}
            }
        }
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        self.queues[index].push_back(PendingJob {
            id,
            tenant,
            plan,
            chunks,
            submitted_at_ns: self.now_ns,
        });
        self.tenants[index].jobs_submitted += 1;
        let depth = self.queues[index].len();
        if depth > self.tenants[index].max_queue_depth_seen {
            self.tenants[index].max_queue_depth_seen = depth;
        }
        Ok(id)
    }

    /// Removes and returns a completed job's result.
    ///
    /// # Errors
    ///
    /// [`ServeError::ResultNotReady`] while the job is still queued,
    /// [`ServeError::JobFaulted`] if the job's placement exhausted the machine's
    /// fault-retry budget and was dropped from its window (the attached
    /// [`FaultReport`] says where and when; the error repeats on every call),
    /// [`ServeError::JobAborted`] if the job was admitted into a window whose fused
    /// run failed (the job was accepted but will never produce a result),
    /// [`ServeError::UnknownJob`] if it was never submitted (or already taken).
    pub fn take_result(&mut self, job: JobId) -> Result<JobResult> {
        if let Some(result) = self.results.remove(&job) {
            return Ok(result);
        }
        if let Some(report) = self.faulted.get(&job) {
            return Err(ServeError::JobFaulted {
                job,
                report: report.clone(),
            });
        }
        if self.aborted.contains(&job) {
            return Err(ServeError::JobAborted { job });
        }
        if self.queues.iter().flatten().any(|j| j.id == job) {
            return Err(ServeError::ResultNotReady { job });
        }
        Err(ServeError::UnknownJob { job })
    }

    /// Admits and runs one dispatch window; returns its record, or `None` when no
    /// queue has work.
    ///
    /// One window = one scheduler pass (weighted deficit round-robin over the tenant
    /// queues), one disjoint reservation per admitted job, one
    /// [`SimdramMachine::run_plans_on`] call fusing all admitted plans, one read-back
    /// of every output, and one modeled-clock advance. All reservations are released
    /// before returning, so every window starts from the whole machine.
    ///
    /// # Errors
    ///
    /// A wrapped [`CoreError`](simdram_core::CoreError) if the fused run fails; the
    /// window's reservations and output rows are rolled back, but its admitted jobs
    /// are aborted — their results never materialize, and
    /// [`take_result`](Self::take_result) reports them as
    /// [`ServeError::JobAborted`].
    ///
    /// An *unrecovered fault* ([`CoreError::Fault`](simdram_core::CoreError)) is
    /// contained rather than propagated: the job whose placement holds the failing
    /// chunk is dropped (its result becomes [`ServeError::JobFaulted`] with a
    /// [`FaultReport`]), its reservation is released — minus any chunk the machine
    /// quarantined — and the window's surviving jobs are re-dispatched from scratch,
    /// with the re-shipped inputs and re-run compute honestly charged to the modeled
    /// clock. The window then completes normally, possibly with zero outcomes.
    pub fn run_window(&mut self) -> Result<Option<WindowRecord>> {
        let queued: Vec<Vec<usize>> = self
            .queues
            .iter()
            .map(|q| q.iter().map(|j| j.chunks).collect())
            .collect();
        let weights: Vec<u64> = self.tenants.iter().map(|t| t.spec.weight).collect();
        let mut deficits: Vec<f64> = self.tenants.iter().map(|t| t.deficit).collect();
        let admissions = plan_window(
            &queued,
            &weights,
            &mut deficits,
            self.machine.free_chunks(),
            self.config.max_jobs_per_window,
        );
        for (tenant, deficit) in self.tenants.iter_mut().zip(deficits) {
            tenant.deficit = deficit;
        }
        if admissions.is_empty() {
            return Ok(None);
        }
        let mut jobs: Vec<PendingJob> = admissions
            .iter()
            .map(|&t| {
                self.queues[t]
                    .pop_front()
                    .expect("scheduler admits only queued jobs")
            })
            .collect();

        // Grant each admitted job its disjoint placement. The scheduler packed within
        // `free_chunks`, so this only fails on machine-level bugs; roll back fully.
        let mut reservations: Vec<Reservation> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            match self.machine.reserve_subarrays(job.chunks) {
                Ok(r) => reservations.push(r),
                Err(err) => {
                    for r in reservations.drain(..) {
                        let _ = self.machine.release_subarrays(r);
                    }
                    for (job, &t) in jobs.into_iter().zip(admissions.iter()).rev() {
                        self.queues[t].push_front(job);
                    }
                    return Err(err.into());
                }
            }
        }

        let busy_before = self.machine.estimate().busy_latency_ns;
        let transpose_before = self.machine.stats().transpose_latency_ns;
        let dispatches_before = self.machine.estimate().broadcasts;
        // Dispatch, containing unrecovered faults to the job that owns the failing
        // chunk: that job is dropped with a typed FaultReport, its reservation is
        // released (minus anything the machine quarantined), and the survivors are
        // re-dispatched from scratch — inputs re-shipped and all — so one bad
        // subarray cannot poison a whole window. Any other failure, or a fault that
        // matches no placement, still aborts the window.
        let job_outcomes = loop {
            match self.dispatch(&jobs, &reservations) {
                Ok(outcomes) => break outcomes,
                Err(ServeError::Core(CoreError::Fault(fault))) => {
                    let owner = reservations.iter().position(|r| {
                        r.offset() <= fault.chunk && fault.chunk < r.offset() + r.chunks()
                    });
                    let Some(index) = owner else {
                        for reservation in reservations.drain(..) {
                            let _ = self.machine.release_subarrays(reservation);
                        }
                        for job in &jobs {
                            self.aborted.insert(job.id);
                        }
                        return Err(ServeError::Core(CoreError::Fault(fault)));
                    };
                    let job = jobs.remove(index);
                    let reservation = reservations.remove(index);
                    let _ = self.machine.release_subarrays(reservation);
                    self.tenants[job.tenant.0 as usize].jobs_faulted += 1;
                    self.faulted.insert(
                        job.id,
                        FaultReport {
                            fault,
                            window: self.window_log.len(),
                        },
                    );
                    if jobs.is_empty() {
                        break Vec::new();
                    }
                }
                Err(err) => {
                    // The jobs were accepted but will never complete: remember them so
                    // take_result can tell "aborted" apart from "never submitted".
                    for reservation in reservations.drain(..) {
                        let _ = self.machine.release_subarrays(reservation);
                    }
                    for job in &jobs {
                        self.aborted.insert(job.id);
                    }
                    return Err(err);
                }
            }
        };
        for reservation in reservations.iter().cloned() {
            let _ = self.machine.release_subarrays(reservation);
        }

        // Advance the modeled clock by the window's busy latency: the fused compute
        // window plus the transposition traffic that shipped inputs in and outputs out.
        let window_busy = (self.machine.estimate().busy_latency_ns - busy_before)
            + (self.machine.stats().transpose_latency_ns - transpose_before);
        let window_dispatches = self.machine.estimate().broadcasts - dispatches_before;
        self.now_ns += window_busy;

        let window = self.window_log.len();
        let placements: Vec<JobPlacement> = jobs
            .iter()
            .zip(&reservations)
            .map(|(job, r)| JobPlacement {
                job: job.id,
                tenant: job.tenant,
                offset: r.offset(),
                chunks: r.chunks(),
            })
            .collect();
        let mut sequential = 0usize;
        for (job, (outputs, report)) in jobs.into_iter().zip(job_outcomes) {
            let tenant = &mut self.tenants[job.tenant.0 as usize];
            tenant.jobs_completed += 1;
            tenant.broadcasts += report.broadcasts;
            tenant.busy_ns += report.measured_latency_ns;
            tenant.energy_nj += report.measured_energy_nj;
            tenant.fault_retries += report.fault_retries;
            let turnaround = self.now_ns - job.submitted_at_ns;
            tenant.turnaround_ns.push(turnaround);
            sequential += report.broadcasts;
            self.jobs_completed += 1;
            self.energy_nj += report.measured_energy_nj;
            self.results.insert(
                job.id,
                JobResult {
                    outputs,
                    report,
                    turnaround_ns: turnaround,
                    window,
                },
            );
        }
        self.fused_dispatches += window_dispatches;
        self.sequential_dispatches += sequential;
        self.busy_ns += window_busy;
        let record = WindowRecord {
            window,
            placements,
            dispatches: window_dispatches,
            sequential_dispatches: sequential,
            busy_ns: window_busy,
        };
        self.window_log.push(record.clone());
        Ok(Some(record))
    }

    /// Ships inputs, runs the fused dispatch, reads and frees every output. On error
    /// all output rows are still freed (reservations are the caller's to release).
    fn dispatch(
        &mut self,
        jobs: &[PendingJob],
        reservations: &[Reservation],
    ) -> Result<Vec<(Vec<Vec<u64>>, simdram_core::PlanReport)>> {
        for (job, reservation) in jobs.iter().zip(reservations) {
            let mut shipped: Vec<u64> = Vec::new();
            for vector in job.plan.input_vectors() {
                if shipped.contains(&vector.id()) {
                    continue;
                }
                shipped.push(vector.id());
                // Validated at submission and guarded by release_input's in-use
                // check; fail typed rather than panic if that invariant ever breaks.
                let staged =
                    self.staged
                        .get(&vector.id())
                        .ok_or_else(|| ServeError::UnknownInput {
                            vector: vector.id(),
                        })?;
                let values = staged.values.clone();
                self.machine.write_to(reservation, &vector, &values)?;
            }
        }
        let fused: Vec<(&Plan, &Reservation)> = jobs
            .iter()
            .zip(reservations)
            .map(|(job, reservation)| (&job.plan, reservation))
            .collect();
        let execs = self.machine.run_plans_on(&fused)?;
        let mut outcomes = Vec::with_capacity(execs.len());
        let mut failure: Option<simdram_core::CoreError> = None;
        for (exec, reservation) in execs.iter().zip(reservations) {
            let mut outputs = Vec::with_capacity(exec.outputs().len());
            if failure.is_none() {
                for vector in exec.outputs() {
                    match self.machine.read_from(reservation, vector) {
                        Ok(values) => outputs.push(values),
                        Err(err) => {
                            failure = Some(err);
                            break;
                        }
                    }
                }
            }
            outcomes.push((outputs, exec.report().clone()));
        }
        for exec in &execs {
            for &vector in exec.outputs() {
                self.machine.free(vector);
            }
        }
        if let Some(err) = failure {
            return Err(err.into());
        }
        Ok(outcomes)
    }

    /// Runs dispatch windows until every queue is drained, then returns the aggregate
    /// [`ServeReport`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`run_window`](Self::run_window) failure.
    pub fn serve(&mut self) -> Result<ServeReport> {
        while self.run_window()?.is_some() {}
        Ok(self.report())
    }

    /// The aggregate serving report so far (callable at any point).
    pub fn report(&self) -> ServeReport {
        let total_busy: f64 = self.tenants.iter().map(|t| t.busy_ns).sum();
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(index, t)| TenantReport {
                tenant: TenantId(index as u64),
                name: t.spec.name.clone(),
                weight: t.spec.weight,
                jobs_submitted: t.jobs_submitted,
                jobs_completed: t.jobs_completed,
                jobs_rejected: t.jobs_rejected,
                broadcasts: t.broadcasts,
                busy_ns: t.busy_ns,
                energy_nj: t.energy_nj,
                max_queue_depth: t.max_queue_depth_seen,
                p50_turnaround_ns: percentile(&t.turnaround_ns, 50.0),
                p95_turnaround_ns: percentile(&t.turnaround_ns, 95.0),
                p99_turnaround_ns: percentile(&t.turnaround_ns, 99.0),
                share: if total_busy > 0.0 {
                    t.busy_ns / total_busy
                } else {
                    0.0
                },
                jobs_faulted: t.jobs_faulted,
                fault_retries: t.fault_retries,
            })
            .collect();
        ServeReport {
            windows: self.window_log.len(),
            jobs_completed: self.jobs_completed,
            jobs_rejected: self.tenants.iter().map(|t| t.jobs_rejected).sum(),
            fused_dispatches: self.fused_dispatches,
            sequential_dispatches: self.sequential_dispatches,
            busy_ns: self.busy_ns,
            energy_nj: self.energy_nj,
            jobs_faulted: self.tenants.iter().map(|t| t.jobs_faulted).sum(),
            fault_retries: self.tenants.iter().map(|t| t.fault_retries).sum(),
            quarantined_chunks: self.machine.quarantined_chunks().len(),
            tenants,
        }
    }

    /// A point-in-time [`ServerHealth`] snapshot: remaining placeable capacity,
    /// quarantine-driven degradation and the machine's fault/recovery counters.
    ///
    /// On a fault-free server this reports zero everywhere interesting
    /// ([`ServerHealth::is_healthy`] is `true`) and `free_chunks == compute_chunks`
    /// between windows.
    pub fn health(&self) -> ServerHealth {
        let log = self.machine.fault_log();
        let compute = self.machine.compute_chunks();
        let quarantined = self.machine.quarantined_chunks().len();
        ServerHealth {
            compute_chunks: compute,
            free_chunks: self.machine.free_chunks(),
            quarantined_chunks: quarantined,
            degraded_fraction: if compute > 0 {
                quarantined as f64 / compute as f64
            } else {
                0.0
            },
            injected_faults: log.injected,
            detected_faults: log.detected(),
            recovered_faults: log.recovered,
            exhausted_faults: log.exhausted,
            jobs_faulted: self.faulted.len(),
        }
    }
}
