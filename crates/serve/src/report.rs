//! Serving-level accounting: per-window placement records and the aggregate
//! [`ServeReport`].

use std::fmt;

use simdram_core::FaultError;

use crate::queue::JobId;
use crate::tenant::TenantId;

/// Why a job was dropped from its dispatch window: a chunk inside the job's placement
/// kept failing guarded execution until the machine's retry budget ran out.
///
/// Carried by [`ServeError::JobFaulted`](crate::ServeError::JobFaulted). The failure is
/// contained to this job — the window's other jobs were re-dispatched and completed —
/// and the offending subarray may have been quarantined (see
/// [`PlanServer::health`](crate::PlanServer::health)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The machine-level description of the failing chunk.
    pub fault: FaultError,
    /// The dispatch window in which the job faulted.
    pub window: usize,
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (window {})", self.fault, self.window)
    }
}

/// A point-in-time health snapshot of a [`PlanServer`](crate::PlanServer): how much of
/// the machine is still placeable and what the fault/recovery counters say.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerHealth {
    /// Compute chunks the machine was built with.
    pub compute_chunks: usize,
    /// Chunks currently free for placement (excludes reserved *and* quarantined).
    pub free_chunks: usize,
    /// Chunks permanently removed from circulation after repeated guarded failures.
    pub quarantined_chunks: usize,
    /// Fraction of the machine lost to quarantine (`quarantined / compute`; 0.0 on a
    /// healthy server).
    pub degraded_fraction: f64,
    /// Bit flips the fault model injected so far (0 with faults off).
    pub injected_faults: u64,
    /// Fault events guarded execution detected (recovered + exhausted).
    pub detected_faults: u64,
    /// Detected fault events that retry resolved.
    pub recovered_faults: u64,
    /// Detected fault events that exhausted the retry budget.
    pub exhausted_faults: u64,
    /// Jobs dropped from their windows with a [`FaultReport`].
    pub jobs_faulted: usize,
}

impl ServerHealth {
    /// `true` when no capacity has been lost and no job has been dropped.
    pub fn is_healthy(&self) -> bool {
        self.quarantined_chunks == 0 && self.jobs_faulted == 0
    }
}

impl fmt::Display for ServerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "health: {}/{} chunks free, {} quarantined ({:.1}% degraded), \
             {} faults injected, {} detected ({} recovered, {} exhausted), {} jobs faulted",
            self.free_chunks,
            self.compute_chunks,
            self.quarantined_chunks,
            self.degraded_fraction * 100.0,
            self.injected_faults,
            self.detected_faults,
            self.recovered_faults,
            self.exhausted_faults,
            self.jobs_faulted
        )
    }
}

/// Where one admitted job ran during a dispatch window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPlacement {
    /// The admitted job.
    pub job: JobId,
    /// The tenant that owns it.
    pub tenant: TenantId,
    /// First compute chunk of the job's reservation.
    pub offset: usize,
    /// Number of consecutive chunks reserved.
    pub chunks: usize,
}

/// One dispatch window: the disjoint placements it packed and what the fused run
/// cost. The server appends one record per window to
/// [`PlanServer::window_log`](crate::PlanServer::window_log) — the packing invariants
/// (placement disjointness in particular) are asserted against this log in the
/// property tests.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Zero-based window index.
    pub window: usize,
    /// The admitted jobs' placements, in admission order.
    pub placements: Vec<JobPlacement>,
    /// Fused broadcast dispatches the window issued: the `max` of the participants'
    /// MIMD dispatch-window counts (≤ their batch counts — independent same-level
    /// batches co-issue when [`simdram_core::SimdramConfig::mimd_windows`] is on).
    pub dispatches: usize,
    /// Broadcast dispatches the same jobs would have issued run back-to-back (`Σ` of
    /// the participants' batch counts).
    pub sequential_dispatches: usize,
    /// The window's modeled busy latency: compute plus the input/output transposition
    /// shipping for every participant.
    pub busy_ns: f64,
}

/// Per-tenant slice of a [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant's id.
    pub tenant: TenantId,
    /// The tenant's display name.
    pub name: String,
    /// The tenant's fairness weight.
    pub weight: u64,
    /// Jobs accepted into the queue.
    pub jobs_submitted: usize,
    /// Jobs served to completion.
    pub jobs_completed: usize,
    /// Submissions rejected at admission (queue full or over quota).
    pub jobs_rejected: usize,
    /// Fused broadcasts attributed to the tenant's own batches.
    pub broadcasts: usize,
    /// The tenant's own modeled busy time, identical to its solo accounting.
    pub busy_ns: f64,
    /// The tenant's own modeled DRAM energy.
    pub energy_nj: f64,
    /// Deepest queue backlog observed for this tenant.
    pub max_queue_depth: usize,
    /// Median modeled submit→completion turnaround (nearest-rank).
    pub p50_turnaround_ns: f64,
    /// 95th-percentile modeled turnaround (nearest-rank).
    pub p95_turnaround_ns: f64,
    /// 99th-percentile modeled turnaround (nearest-rank).
    pub p99_turnaround_ns: f64,
    /// Fraction of all tenants' busy time this tenant consumed (0 when nothing ran).
    pub share: f64,
    /// Jobs dropped after exhausting the machine's fault-retry budget.
    pub jobs_faulted: usize,
    /// Guarded-execution retries spent on the tenant's *completed* jobs.
    pub fault_retries: u64,
}

/// Aggregate accounting for everything a [`PlanServer`](crate::PlanServer) has served
/// so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Dispatch windows run.
    pub windows: usize,
    /// Jobs served to completion, across all tenants.
    pub jobs_completed: usize,
    /// Submissions rejected at admission, across all tenants.
    pub jobs_rejected: usize,
    /// Fused broadcast dispatches actually issued.
    pub fused_dispatches: usize,
    /// Dispatches the same jobs would have issued run back-to-back per tenant.
    pub sequential_dispatches: usize,
    /// Total modeled busy time of the machine (compute + data shipping).
    pub busy_ns: f64,
    /// Total modeled DRAM energy across all served jobs.
    pub energy_nj: f64,
    /// Jobs dropped with a [`FaultReport`] after exhausting retries, across all tenants.
    pub jobs_faulted: usize,
    /// Guarded-execution retries spent on completed jobs, across all tenants.
    pub fault_retries: u64,
    /// Compute chunks the machine has quarantined after repeated faults.
    pub quarantined_chunks: usize,
    /// One slice per registered tenant, in registration order.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// How many× fewer dispatches cross-tenant fusion issued than back-to-back
    /// execution (`sequential / fused`; 1.0 when nothing ran).
    pub fn dispatch_savings(&self) -> f64 {
        if self.fused_dispatches == 0 {
            1.0
        } else {
            self.sequential_dispatches as f64 / self.fused_dispatches as f64
        }
    }

    /// Jain's fairness index over the tenants' weight-normalized busy time
    /// (`busy_ns / weight`), computed over tenants that completed at least one job.
    ///
    /// 1.0 means every active tenant consumed machine time exactly proportionally to
    /// its weight; `1/n` is the worst case (one tenant got everything).
    pub fn jain_fairness(&self) -> f64 {
        let shares: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| t.jobs_completed > 0)
            .map(|t| t.busy_ns / t.weight as f64)
            .collect();
        if shares.is_empty() {
            return 1.0;
        }
        let sum: f64 = shares.iter().sum();
        let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (shares.len() as f64 * sum_sq)
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} jobs in {} windows: {} fused dispatches (vs {} sequential, \
             {:.2}x), busy {:.1} us, {:.1} uJ, Jain fairness {:.3}",
            self.jobs_completed,
            self.windows,
            self.fused_dispatches,
            self.sequential_dispatches,
            self.dispatch_savings(),
            self.busy_ns / 1_000.0,
            self.energy_nj / 1_000.0,
            self.jain_fairness()
        )?;
        if self.jobs_faulted > 0 || self.fault_retries > 0 || self.quarantined_chunks > 0 {
            writeln!(
                f,
                "  faults: {} jobs dropped, {} retries on completed jobs, \
                 {} chunks quarantined",
                self.jobs_faulted, self.fault_retries, self.quarantined_chunks
            )?;
        }
        for t in &self.tenants {
            writeln!(
                f,
                "  {} ({}, w={}): {}/{} jobs ({} rejected), {} broadcasts, \
                 {:.1} us busy ({:.1}% share), p50/p95/p99 {:.1}/{:.1}/{:.1} us",
                t.name,
                t.tenant,
                t.weight,
                t.jobs_completed,
                t.jobs_submitted,
                t.jobs_rejected,
                t.broadcasts,
                t.busy_ns / 1_000.0,
                t.share * 100.0,
                t.p50_turnaround_ns / 1_000.0,
                t.p95_turnaround_ns / 1_000.0,
                t.p99_turnaround_ns / 1_000.0,
            )?;
            if t.jobs_faulted > 0 || t.fault_retries > 0 {
                writeln!(
                    f,
                    "    faults: {} jobs dropped, {} retries",
                    t.jobs_faulted, t.fault_retries
                )?;
            }
        }
        Ok(())
    }
}

/// Nearest-rank percentile (`p` in 0..=100) over an unsorted sample; 0.0 for an empty
/// sample.
pub(crate) fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 95.0), 95.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_tolerates_nan_samples() {
        // total_cmp orders NaN after every finite value, so a stray NaN (e.g. a 0/0
        // turnaround from a degenerate clock) lands at the top instead of panicking
        // or poisoning the sort.
        let samples = vec![3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&samples, 50.0), 2.0);
        assert_eq!(percentile(&samples, 25.0), 1.0);
        assert!(percentile(&samples, 100.0).is_nan());
        assert!(percentile(&[f64::NAN], 50.0).is_nan());
    }
}
