//! Server-wide serving policy knobs.

/// Configuration of a [`PlanServer`](crate::PlanServer).
///
/// All limits are *server-wide defaults*; a [`TenantSpec`](crate::TenantSpec) can
/// tighten (never widen) them per tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum number of queued (not yet dispatched) jobs per tenant. Submissions past
    /// this depth are rejected with
    /// [`ServeError::QueueFull`](crate::ServeError::QueueFull).
    pub max_queue_depth: usize,
    /// Maximum number of jobs fused into a single dispatch window.
    pub max_jobs_per_window: usize,
    /// Server-wide cap on subarray chunks a single job may occupy. `None` means "the
    /// whole machine".
    pub max_chunks_per_job: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue_depth: 64,
            max_jobs_per_window: 16,
            max_chunks_per_job: None,
        }
    }
}

impl ServeConfig {
    /// The default serving policy (queue depth 64, up to 16 jobs fused per window, no
    /// per-job chunk cap).
    pub fn new() -> Self {
        Self::default()
    }
}
