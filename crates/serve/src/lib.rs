//! # simdram-serve — a multi-tenant plan-serving layer for the SIMDRAM machine
//!
//! The SIMDRAM paper (ASPLOS 2021) frames the substrate as an *end-to-end framework*:
//! user programs go in, transparently scheduled in-DRAM execution comes out. The
//! `simdram-core` machine is a single-caller object; this crate turns it into a
//! **served resource** shared by many concurrent clients:
//!
//! - **Tenants** register with a [`TenantSpec`] (name, fairness weight, quotas) and
//!   get a [`TenantId`].
//! - **Inputs** are staged with [`PlanServer::write_input`]: rows are allocated
//!   machine-wide, data ships to whichever placement a job is granted at dispatch
//!   time.
//! - **Jobs** are compiled [`Plan`](simdram_core::Plan)s submitted through
//!   [`PlanServer::submit`] into per-tenant FIFO queues, guarded by admission checks
//!   (chunk quota, queue depth, input ownership).
//! - **Dispatch windows** ([`PlanServer::run_window`]) admit queued jobs with a
//!   weighted deficit-round-robin scheduler, grant each job a disjoint subarray
//!   [`Reservation`](simdram_core::Reservation), and execute all of them in one
//!   [`SimdramMachine::run_plans_on`](simdram_core::SimdramMachine::run_plans_on)
//!   call — the `d`-th broadcast batch of every admitted plan fuses into ONE
//!   dispatch, so serving `N` tenants costs `max` instead of `Σ` of their dispatch
//!   counts, with bit-identical results.
//! - **Accounting** flows into a [`ServeReport`]: per-tenant latency/energy from the
//!   trace-driven estimator, fairness shares (Jain index), queue depths and
//!   tail-latency percentiles over a deterministic modeled clock.
//!
//! Everything is deterministic — no wall clocks, no randomness — so served numbers
//! reproduce exactly under both `SIMDRAM_EXEC` execution policies.
//!
//! ## Example
//!
//! Two tenants share one machine; their plans fuse into common dispatch windows:
//!
//! ```
//! use simdram_core::{PlanBuilder, SimdramConfig, SimdramMachine};
//! use simdram_serve::{PlanServer, ServeConfig, TenantSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = SimdramMachine::new(SimdramConfig::functional_test())?;
//! let mut server = PlanServer::new(machine, ServeConfig::new());
//! let alice = server.register_tenant(TenantSpec::new("alice").with_weight(2));
//! let bob = server.register_tenant(TenantSpec::new("bob"));
//!
//! // Each tenant stages an input and submits a compiled plan reading it.
//! let a = server.write_input(alice, 8, &[10, 20, 30])?;
//! let mut s = PlanBuilder::new();
//! let x = s.input(&a);
//! let bright = s.constant(8, 3, 5)?;
//! let sum = s.add(x, bright)?;
//! let out_a = s.materialize(sum)?;
//! let job_a = server.submit(alice, s.compile()?)?;
//!
//! let b = server.write_input(bob, 8, &[7, 7, 7])?;
//! let mut s = PlanBuilder::new();
//! let y = s.input(&b);
//! let two = s.constant(8, 3, 2)?;
//! let scaled = s.mul(y, two)?;
//! let out_b = s.materialize(scaled)?;
//! let job_b = server.submit(bob, s.compile()?)?;
//!
//! // Drain the queues: both jobs run in one fused dispatch window.
//! let report = server.serve()?;
//! assert_eq!(report.jobs_completed, 2);
//! assert!(report.fused_dispatches < report.sequential_dispatches);
//!
//! assert_eq!(server.take_result(job_a)?.output(out_a), &[15, 25, 35]);
//! assert_eq!(server.take_result(job_b)?.output(out_b), &[14, 14, 14]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Where to look
//!
//! | Concern | Module |
//! |---|---|
//! | Server, queues, dispatch windows | [`server`](PlanServer) |
//! | Admission/placement scheduling | `scheduler` (crate-private) |
//! | Tenant identity, specs, ledger | [`tenant`](TenantSpec) |
//! | Job results | [`JobResult`] |
//! | Window records + aggregate report | [`ServeReport`], [`WindowRecord`] |
//! | Policy knobs | [`ServeConfig`] |
//! | Typed errors | [`ServeError`] |
//! | Fault containment + health | [`FaultReport`], [`ServerHealth`] |
//!
//! # Graceful degradation
//!
//! When the wrapped machine runs with fault injection and guarded execution
//! ([`SimdramConfig::faults`](simdram_core::SimdramConfig) /
//! [`SimdramConfig::guard`](simdram_core::SimdramConfig)), an unrecovered fault does
//! **not** poison the server: the owning job is dropped from its window with a typed
//! [`ServeError::JobFaulted`] carrying a [`FaultReport`], the surviving jobs are
//! re-dispatched, and any chunk the machine quarantined simply disappears from the
//! placement pool — later windows pack into the remaining capacity.
//! [`PlanServer::health`] exposes the resulting [`ServerHealth`] snapshot.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod error;
mod queue;
mod report;
mod scheduler;
mod server;
mod tenant;

pub use config::ServeConfig;
pub use error::{Result, ServeError};
pub use queue::{JobId, JobResult};
pub use report::{
    FaultReport, JobPlacement, ServeReport, ServerHealth, TenantReport, WindowRecord,
};
pub use server::PlanServer;
pub use tenant::{TenantId, TenantSpec};
