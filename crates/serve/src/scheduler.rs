//! The admission/placement scheduler: weighted deficit round-robin over per-tenant
//! FIFO queues, packing jobs into a bounded chunk capacity.

/// Plans one dispatch window.
///
/// `queued_chunks[t]` is tenant `t`'s FIFO queue of pending job costs (subarray
/// chunks, front first), `deficits[t]` its running fairness credit. Returns the
/// admitted jobs as a list of tenant indices in admission order — each occurrence
/// consumes that tenant's next queued job.
///
/// The policy, in order:
///
/// 1. Each tenant with queued work accrues `weight / Σ active weights × capacity`
///    credit for the window (credit is normalized to the capacity actually being
///    dispatched, so long-run chunk shares converge to the weights); idle tenants'
///    credit resets to zero (no banking while idle — standard deficit round-robin).
/// 2. Repeatedly admit the head job of the tenant with the highest credit (ties break
///    toward the lowest tenant index) among those whose head fits the remaining chunk
///    capacity; each admission costs the job's chunks.
/// 3. Stop at `max_jobs` admissions or when no queued head fits.
/// 4. Carried (unspent) credit is then capped at one window's accrual — classic
///    deficit round-robin's one-quantum cap — so when `max_jobs` rather than chunk
///    capacity is the binding constraint, a backlogged tenant cannot bank unbounded
///    credit across windows.
///
/// Within a tenant, jobs stay FIFO (an oversized head blocks that tenant's later
/// jobs, never other tenants). The scheduler is work-conserving — every head fits an
/// idle machine because admission quotas cap jobs at the machine size, so a window
/// with queued work always admits at least one job — and deterministic (no
/// randomness, no clocks), which is what keeps served results reproducible.
pub(crate) fn plan_window(
    queued_chunks: &[Vec<usize>],
    weights: &[u64],
    deficits: &mut [f64],
    mut capacity: usize,
    max_jobs: usize,
) -> Vec<usize> {
    debug_assert_eq!(queued_chunks.len(), weights.len());
    debug_assert_eq!(queued_chunks.len(), deficits.len());
    // `register_tenant` clamps weights to >= 1, but guard anyway: a zero divisor
    // would turn every deficit into NaN and permanently corrupt fairness ordering.
    let active_weight: u64 = queued_chunks
        .iter()
        .zip(weights)
        .filter(|(queue, _)| !queue.is_empty())
        .map(|(_, &w)| w)
        .sum::<u64>()
        .max(1);
    let mut quantum = vec![0.0f64; queued_chunks.len()];
    for (t, queue) in queued_chunks.iter().enumerate() {
        if queue.is_empty() {
            deficits[t] = 0.0;
        } else {
            quantum[t] = weights[t] as f64 * capacity as f64 / active_weight as f64;
            deficits[t] += quantum[t];
        }
    }
    let mut cursor = vec![0usize; queued_chunks.len()];
    let mut admissions = Vec::new();
    while admissions.len() < max_jobs {
        let mut best: Option<usize> = None;
        for (t, queue) in queued_chunks.iter().enumerate() {
            let Some(&cost) = queue.get(cursor[t]) else {
                continue;
            };
            if cost > capacity {
                continue;
            }
            if best.is_none_or(|b| deficits[t] > deficits[b]) {
                best = Some(t);
            }
        }
        let Some(t) = best else { break };
        let cost = queued_chunks[t][cursor[t]];
        cursor[t] += 1;
        capacity -= cost;
        deficits[t] -= cost as f64;
        admissions.push(t);
    }
    // Cap the carry at one quantum so unspent credit stays bounded even when
    // `max_jobs` stops admission long before the chunk capacity is spent.
    for (deficit, quantum) in deficits.iter_mut().zip(&quantum) {
        if *deficit > *quantum {
            *deficit = *quantum;
        }
    }
    admissions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_up_to_capacity_in_weight_order() {
        let queues = vec![vec![1, 1], vec![1, 1], vec![1, 1]];
        let weights = [4, 2, 1];
        let mut deficits = [0.0; 3];
        let admitted = plan_window(&queues, &weights, &mut deficits, 4, 16);
        // The weight-4 tenant's credit covers both of its jobs before the others'
        // single-job credit; the last chunk goes to the weight-2 then weight-1 tenant.
        assert_eq!(admitted, vec![0, 0, 1, 2]);
    }

    #[test]
    fn backlogged_tenants_share_chunks_by_weight() {
        let queues = vec![vec![1; 8], vec![1; 8]];
        let weights = [3, 1];
        let mut deficits = [0.0; 2];
        let mut admitted_per_tenant = [0usize; 2];
        for _ in 0..4 {
            for t in plan_window(&queues, &weights, &mut deficits, 2, 2) {
                admitted_per_tenant[t] += 1;
            }
        }
        // 8 admissions split 3:1 by weight — normalized credit keeps the light tenant
        // from starving under a heavy backlog.
        assert_eq!(admitted_per_tenant, [6, 2]);
    }

    #[test]
    fn oversized_heads_do_not_block_smaller_tenants() {
        // Tenant 0's head needs 8 chunks but only 4 exist this window; tenant 1 must
        // still be served (work conservation).
        let queues = vec![vec![8], vec![2, 2]];
        let weights = [1, 1];
        let mut deficits = [0.0; 2];
        let admitted = plan_window(&queues, &weights, &mut deficits, 4, 16);
        assert_eq!(admitted, vec![1, 1]);
    }

    #[test]
    fn deficits_stay_bounded_when_max_jobs_binds() {
        // 16 chunks of capacity but only 1 job admitted per window: the losing tenant
        // would bank capacity-proportional credit forever without the quantum cap.
        let queues = vec![vec![1; 64], vec![1; 64]];
        let weights = [1, 1];
        let mut deficits = [0.0; 2];
        for _ in 0..50 {
            plan_window(&queues, &weights, &mut deficits, 16, 1);
        }
        for d in deficits {
            assert!(d <= 8.0 + 1e-9, "deficit {d} escaped the one-quantum cap");
        }
    }

    #[test]
    fn zero_weights_do_not_poison_deficits() {
        // register_tenant clamps weights, but the scheduler itself must not divide by
        // zero if handed an all-zero active weight.
        let queues = vec![vec![1], vec![1]];
        let weights = [0, 0];
        let mut deficits = [0.0; 2];
        let admitted = plan_window(&queues, &weights, &mut deficits, 2, 16);
        assert_eq!(admitted, vec![0, 1]);
        assert!(deficits.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn idle_tenants_bank_no_credit() {
        let mut deficits = [0.0; 2];
        // Tenant 1 idles for three windows while tenant 0 is served.
        for _ in 0..3 {
            plan_window(&[vec![1], vec![]], &[1, 1], &mut deficits, 4, 16);
        }
        assert_eq!(deficits[1], 0.0);
    }
}
