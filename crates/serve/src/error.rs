//! Typed errors of the serving layer.

use std::fmt;

use simdram_core::CoreError;

use crate::queue::JobId;
use crate::report::FaultReport;
use crate::tenant::TenantId;

/// Result alias used across `simdram-serve`.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong while serving plans.
///
/// Admission failures (`QueueFull`, `QuotaExceeded`, …) are per-request and leave the
/// server fully operational; a `Core` error surfaced from a dispatch window is
/// propagated after the window's reservations and partial outputs have been rolled
/// back.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// An error bubbled up from the underlying [`simdram_core`] machine.
    Core(CoreError),
    /// The tenant id is not registered on this server.
    UnknownTenant {
        /// The offending tenant id.
        tenant: TenantId,
    },
    /// The tenant's submission queue is at its configured depth limit.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: TenantId,
        /// The depth limit that was hit.
        depth: usize,
    },
    /// The plan needs more subarray chunks than the tenant's quota allows.
    QuotaExceeded {
        /// The submitting tenant.
        tenant: TenantId,
        /// Chunks the plan needs at its widest batch.
        needed: usize,
        /// The effective per-job chunk quota.
        quota: usize,
    },
    /// A plan references an input vector that was never staged through
    /// [`PlanServer::write_input`](crate::PlanServer::write_input).
    UnknownInput {
        /// The unrecognized vector handle id.
        vector: u64,
    },
    /// A plan references an input vector staged by a *different* tenant.
    ForeignInput {
        /// The submitting tenant.
        tenant: TenantId,
        /// The vector handle id owned by another tenant.
        vector: u64,
    },
    /// A staged input cannot be released while a queued job's plan still reads it.
    InputInUse {
        /// The vector handle id a pending plan still references.
        vector: u64,
        /// The queued job that reads the vector.
        job: JobId,
    },
    /// The job id is not known to this server (never submitted, or its result was
    /// already taken).
    UnknownJob {
        /// The offending job id.
        job: JobId,
    },
    /// The job is still queued or running; its result cannot be taken yet.
    ResultNotReady {
        /// The still-pending job.
        job: JobId,
    },
    /// The job was admitted into a dispatch window whose fused run failed; it will
    /// never produce a result and must be resubmitted.
    JobAborted {
        /// The aborted job.
        job: JobId,
    },
    /// The job's placement kept faulting until the machine's retry budget ran out; it
    /// was dropped from its window while the window's other jobs completed normally.
    JobFaulted {
        /// The faulted job.
        job: JobId,
        /// Where and when the job faulted.
        report: FaultReport,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(err) => write!(f, "machine error: {err}"),
            ServeError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not registered")
            }
            ServeError::QueueFull { tenant, depth } => {
                write!(f, "tenant {tenant}'s queue is full ({depth} jobs)")
            }
            ServeError::QuotaExceeded {
                tenant,
                needed,
                quota,
            } => write!(
                f,
                "tenant {tenant}'s plan needs {needed} subarray chunks, quota is {quota}"
            ),
            ServeError::UnknownInput { vector } => {
                write!(f, "plan reads vector #{vector} which was never staged")
            }
            ServeError::ForeignInput { tenant, vector } => write!(
                f,
                "tenant {tenant}'s plan reads vector #{vector} staged by another tenant"
            ),
            ServeError::InputInUse { vector, job } => write!(
                f,
                "vector #{vector} is still read by queued job {job} and cannot be released"
            ),
            ServeError::UnknownJob { job } => write!(f, "unknown job {job}"),
            ServeError::ResultNotReady { job } => {
                write!(f, "job {job} has not completed yet")
            }
            ServeError::JobAborted { job } => {
                write!(f, "job {job} was aborted by its dispatch window's failure")
            }
            ServeError::JobFaulted { job, report } => {
                write!(
                    f,
                    "job {job} was dropped after an unrecovered fault: {report}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(err: CoreError) -> Self {
        ServeError::Core(err)
    }
}
