//! Submitted jobs and their host-side results.

use std::fmt;

use simdram_core::{Plan, PlanOutput, PlanReport};

use crate::tenant::TenantId;

/// Opaque identity of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A compiled plan sitting in a tenant's submission queue, waiting for a dispatch
/// window.
#[derive(Debug)]
pub(crate) struct PendingJob {
    pub(crate) id: JobId,
    pub(crate) tenant: TenantId,
    pub(crate) plan: Plan,
    /// Subarray chunks the plan needs at its widest batch — the placement cost the
    /// scheduler packs against.
    pub(crate) chunks: usize,
    /// Modeled server clock at submission, for turnaround accounting.
    pub(crate) submitted_at_ns: f64,
}

/// The host-side outcome of one served job: output data read back from the job's
/// (already released) placement, plus the job-level accounting.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub(crate) outputs: Vec<Vec<u64>>,
    pub(crate) report: PlanReport,
    pub(crate) turnaround_ns: f64,
    pub(crate) window: usize,
}

impl JobResult {
    /// The values of one materialized output, addressed by the handle
    /// [`Session::materialize`](simdram_core::Session::materialize) returned.
    ///
    /// # Panics
    ///
    /// Panics if the handle's index is out of range (a handle from a different plan).
    pub fn output(&self, handle: PlanOutput) -> &[u64] {
        &self.outputs[handle.index()]
    }

    /// All materialized outputs, in the plan's output order.
    pub fn outputs(&self) -> &[Vec<u64>] {
        &self.outputs
    }

    /// The job's own [`PlanReport`] — identical to what
    /// [`SimdramMachine::run_plan`](simdram_core::SimdramMachine::run_plan) would have
    /// produced for the same plan running alone.
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Modeled submit→completion latency in nanoseconds (queueing + data shipping +
    /// the fused dispatch windows the job participated in).
    pub fn turnaround_ns(&self) -> f64 {
        self.turnaround_ns
    }

    /// Index of the dispatch window that completed this job (an index into
    /// [`PlanServer::window_log`](crate::PlanServer::window_log)).
    pub fn window(&self) -> usize {
        self.window
    }
}
