//! Tenant identities, admission specs and the per-tenant accounting ledger.

use std::fmt;

/// Opaque identity of a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub(crate) u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Admission-time description of a tenant: a display name, a fairness weight and
/// optional per-tenant tightenings of the server-wide limits.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable name, echoed in [`TenantReport`](crate::TenantReport).
    pub name: String,
    /// Fairness weight for the deficit round-robin scheduler. A tenant with weight 2
    /// accrues dispatch credit twice as fast as one with weight 1.
    pub weight: u64,
    /// Per-job subarray-chunk quota for this tenant, further capped by the server-wide
    /// [`ServeConfig::max_chunks_per_job`](crate::ServeConfig::max_chunks_per_job).
    pub max_chunks: Option<usize>,
    /// Queue-depth limit for this tenant, further capped by the server-wide
    /// [`ServeConfig::max_queue_depth`](crate::ServeConfig::max_queue_depth).
    pub max_queue_depth: Option<usize>,
}

impl TenantSpec {
    /// A weight-1 tenant with no per-tenant limits beyond the server defaults.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            max_chunks: None,
            max_queue_depth: None,
        }
    }

    /// Sets the fairness weight (clamped up to at least 1).
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Caps the subarray chunks any single job from this tenant may occupy.
    pub fn with_max_chunks(mut self, chunks: usize) -> Self {
        self.max_chunks = Some(chunks);
        self
    }

    /// Caps this tenant's submission-queue depth.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth);
        self
    }
}

/// Mutable per-tenant serving state: the fairness deficit plus the accounting ledger
/// every completed job folds into.
#[derive(Debug)]
pub(crate) struct Tenant {
    pub(crate) spec: TenantSpec,
    /// Deficit round-robin credit: grows by `weight` per contended window, shrinks by
    /// the chunk cost of every admitted job.
    pub(crate) deficit: f64,
    pub(crate) jobs_submitted: usize,
    pub(crate) jobs_completed: usize,
    pub(crate) jobs_rejected: usize,
    pub(crate) broadcasts: usize,
    pub(crate) busy_ns: f64,
    pub(crate) energy_nj: f64,
    /// Modeled submit→completion turnaround of every completed job, in submission
    /// order (percentiles are computed over a sorted copy).
    pub(crate) turnaround_ns: Vec<f64>,
    pub(crate) max_queue_depth_seen: usize,
    /// Jobs dropped from a window after exhausting the machine's fault-retry budget.
    pub(crate) jobs_faulted: usize,
    /// Guarded-execution retries folded in from the tenant's completed jobs.
    pub(crate) fault_retries: u64,
}

impl Tenant {
    pub(crate) fn new(spec: TenantSpec) -> Self {
        Tenant {
            spec,
            deficit: 0.0,
            jobs_submitted: 0,
            jobs_completed: 0,
            jobs_rejected: 0,
            broadcasts: 0,
            busy_ns: 0.0,
            energy_nj: 0.0,
            turnaround_ns: Vec::new(),
            max_queue_depth_seen: 0,
            jobs_faulted: 0,
            fault_retries: 0,
        }
    }
}
