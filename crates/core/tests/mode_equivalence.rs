//! Property-based equivalence of the interpreted and compiled functional-execution
//! modes, crossed with the sequential and threaded broadcast policies.
//!
//! The contract under test is the headline guarantee of the fast-functional mode: for
//! any operation, width and operand values, a machine running
//! [`FunctionalMode::Compiled`] produces **bit-identical** simulated outcomes to the
//! interpreted reference — read-back results, [`DeviceStats`] (per-kind command counts
//! and floating-point latency/energy totals) and the cumulative `MachineEstimate` — under
//! either [`ExecutionPolicy`], with or without per-command history sampling.

use proptest::prelude::*;
use simdram_core::{ExecutionPolicy, FunctionalMode, SimdramConfig, SimdramMachine};
use simdram_dram::{BGroupRow, BitRow, CommandCosts, DramConfig, RowAddr, Subarray};
use simdram_logic::Operation;
use simdram_uprog::{build_program, execute, CodegenOptions, CompiledProgram, RowBinding, Target};

fn machine_with(functional: FunctionalMode, execution: ExecutionPolicy) -> SimdramMachine {
    let mut config = SimdramConfig::functional_test();
    config.execution = execution;
    config.functional = functional;
    SimdramMachine::new(config).unwrap()
}

/// The mode × policy grid every case runs over. `(Interpreted, Sequential)` is the
/// reference; the rest must match it exactly.
fn mode_grid() -> [(FunctionalMode, ExecutionPolicy); 4] {
    [
        (FunctionalMode::Interpreted, ExecutionPolicy::Sequential),
        (FunctionalMode::compiled(), ExecutionPolicy::Sequential),
        (
            FunctionalMode::Compiled { trace_every: 1 },
            ExecutionPolicy::Sequential,
        ),
        (
            FunctionalMode::compiled(),
            ExecutionPolicy::Threaded { max_threads: 2 },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // End-to-end machine equivalence: random operation, width, operand values (spanning
    // one or two subarrays), every mode/policy combination.
    #[test]
    fn machines_agree_across_modes_and_policies(
        op_index in 0usize..Operation::ALL.len(),
        width in 2usize..=8,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        len in 1usize..300,
    ) {
        let op = Operation::ALL[op_index];
        let mask = (1u64 << width) - 1;
        let a_vals: Vec<u64> = (0..len as u64).map(|i| (i.wrapping_mul(seed_a | 1) >> 7) & mask).collect();
        let b_vals: Vec<u64> = (0..len as u64).map(|i| (i.wrapping_mul(seed_b | 1) >> 5) & mask).collect();
        let p_vals: Vec<bool> = (0..len as u64).map(|i| (i.wrapping_mul(seed_a | 1) >> 3) & 1 == 1).collect();

        let mut results = Vec::new();
        let mut reports = Vec::new();
        let mut device_stats = Vec::new();
        let mut estimates = Vec::new();
        for (functional, execution) in mode_grid() {
            let mut m = machine_with(functional, execution);
            let a = m.alloc_and_write(width, &a_vals).unwrap();
            let b = op.uses_second_operand().then(|| m.alloc_and_write(width, &b_vals).unwrap());
            let p = op.uses_predicate().then(|| {
                let pred = m.alloc(1, len).unwrap();
                m.write_bools(&pred, &p_vals).unwrap();
                pred
            });
            let dst = m.alloc(op.output_width(width), len).unwrap();
            let report = m.execute(op, &dst, &a, b.as_ref(), p.as_ref()).unwrap();
            results.push(m.read(&dst).unwrap());
            reports.push(report);
            device_stats.push(m.device_stats().clone());
            estimates.push(m.estimate().clone());
        }
        for i in 1..results.len() {
            prop_assert_eq!(&results[i], &results[0], "results diverged in combo {}", i);
            prop_assert_eq!(&reports[i], &reports[0], "reports diverged in combo {}", i);
            prop_assert_eq!(&device_stats[i], &device_stats[0], "device stats diverged in combo {}", i);
            prop_assert_eq!(&estimates[i], &estimates[0], "estimates diverged in combo {}", i);
        }
        // Floating-point totals are bit-identical, not merely approximately equal.
        for stats in &device_stats[1..] {
            prop_assert_eq!(
                stats.total_latency_ns().to_bits(),
                device_stats[0].total_latency_ns().to_bits()
            );
            prop_assert_eq!(
                stats.total_energy_nj().to_bits(),
                device_stats[0].total_energy_nj().to_bits()
            );
        }
        // The reference really did something.
        prop_assert!(device_stats[0].total_commands() > 0);
    }

    // Substrate-level equivalence: one μProgram, one subarray, random operand rows. The
    // compiled kernel must leave identical subarray contents (data rows and B-group
    // state) and return a local trace equal to the interpreter's — including history
    // when sampled, and the same aggregates without it.
    #[test]
    fn compiled_kernel_matches_interpreter_on_the_substrate(
        op_index in 0usize..Operation::ALL.len(),
        width in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let op = Operation::ALL[op_index];
        let program = build_program(Target::Simdram, op, width, CodegenOptions::optimized());
        let config = DramConfig::tiny();
        let compiled = CompiledProgram::compile(&program, &CommandCosts::new(&config)).unwrap();
        // `Mul` at width 8 produces a 16-bit result, so the output region can reach row
        // 33; keep the temporaries clear of it.
        let binding = RowBinding { a_base: 0, b_base: 8, pred_row: 16, out_base: 17, temp_base: 64 };

        let mut interp = Subarray::new(&config);
        let mut with_history = Subarray::new(&config);
        let mut without_history = Subarray::new(&config);
        let columns = config.columns_per_row;
        for base in [binding.a_base, binding.b_base, binding.pred_row] {
            for bit in 0..8 {
                let row = BitRow::from_fn(columns, |lane| {
                    (seed.wrapping_mul(lane as u64 + 3) >> (bit + (base & 7))) & 1 == 1
                });
                interp.write_row(base + bit, &row);
                with_history.write_row(base + bit, &row);
                without_history.write_row(base + bit, &row);
                if base == binding.pred_row {
                    break; // the predicate is a single row
                }
            }
        }

        let reference = execute(&program, &mut interp, &binding).unwrap();
        let sampled = compiled.run(&mut with_history, &binding, true).unwrap();
        let aggregate_only = compiled.run(&mut without_history, &binding, false).unwrap();

        // Identical substrate state in both compiled runs.
        for sa in [&with_history, &without_history] {
            for row in 0..interp.rows() {
                prop_assert_eq!(
                    interp.row(RowAddr::Data(row)).unwrap(),
                    sa.row(RowAddr::Data(row)).unwrap(),
                    "row {} diverged for {}", row, op
                );
            }
            for b in BGroupRow::ALL {
                prop_assert_eq!(
                    interp.peek(RowAddr::BGroup(b)).unwrap(),
                    sa.peek(RowAddr::BGroup(b)).unwrap(),
                    "{:?} diverged for {}", b, op
                );
            }
        }

        // With history sampled the local traces are fully equal (counts, history,
        // bit-identical totals); without it the aggregates still match and the
        // history reads as drained.
        prop_assert_eq!(&sampled, &reference);
        prop_assert_eq!(sampled.total_latency_ns().to_bits(), reference.total_latency_ns().to_bits());
        prop_assert_eq!(sampled.total_energy_nj().to_bits(), reference.total_energy_nj().to_bits());
        prop_assert_eq!(aggregate_only.len(), reference.len());
        prop_assert_eq!(aggregate_only.history_len(), 0);
        prop_assert_eq!(
            aggregate_only.kind_counts().collect::<Vec<_>>(),
            reference.kind_counts().collect::<Vec<_>>()
        );
        prop_assert_eq!(aggregate_only.total_latency_ns().to_bits(), reference.total_latency_ns().to_bits());
        prop_assert_eq!(aggregate_only.total_energy_nj().to_bits(), reference.total_energy_nj().to_bits());
    }
}
