//! Property-based tests of the transposition unit and the vertical-layout round trip
//! through a real machine.

use proptest::prelude::*;
use simdram_core::{
    horizontal_to_vertical, transpose_64x64, vertical_to_horizontal, SimdramConfig, SimdramMachine,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tile_transpose_is_involutive(rows in proptest::collection::vec(any::<u64>(), 64)) {
        let tile: [u64; 64] = rows.clone().try_into().unwrap();
        let twice = transpose_64x64(&transpose_64x64(&tile));
        prop_assert_eq!(twice.to_vec(), rows);
    }

    #[test]
    fn tile_transpose_moves_every_bit(row in 0usize..64, col in 0usize..64) {
        let mut tile = [0u64; 64];
        tile[row] = 1 << col;
        let t = transpose_64x64(&tile);
        prop_assert_eq!(t[col], 1u64 << row);
        prop_assert_eq!(t.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn layout_conversion_round_trips(
        values in proptest::collection::vec(0u64..=0xFFFF_FFFF, 1..200),
        width in 1usize..=32,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let lanes = masked.len();
        let slices = horizontal_to_vertical(&masked, width, lanes);
        prop_assert_eq!(slices.len(), width);
        let back = vertical_to_horizontal(&slices, width, lanes);
        prop_assert_eq!(back, masked);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn machine_write_read_round_trips(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        width in 1usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let vector = machine.alloc_and_write(width, &masked).unwrap();
        prop_assert_eq!(machine.read(&vector).unwrap(), masked);
    }

    #[test]
    fn allocation_free_cycles_do_not_leak_rows(widths in proptest::collection::vec(1usize..=32, 1..20)) {
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        for &width in &widths {
            let v = machine.alloc(width, 8).unwrap();
            machine.free(v);
        }
        // After freeing everything, the largest legal vector must still be allocatable.
        let all_rows = 64usize.min(machine.config().allocatable_rows());
        prop_assert!(machine.alloc(all_rows, 8).is_ok());
    }
}
