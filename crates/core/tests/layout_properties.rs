//! Property-based tests of the transposition unit and the vertical-layout round trip
//! through a real machine.

use proptest::prelude::*;
use simdram_core::{
    horizontal_to_vertical, transpose_64x64, vertical_to_horizontal, SimdramConfig, SimdramMachine,
};

/// The pre-tiling scalar implementation of `horizontal_to_vertical`, kept as the
/// reference the word-tiled version must match bit-for-bit.
fn scalar_horizontal_to_vertical(values: &[u64], width: usize, lanes: usize) -> Vec<Vec<u64>> {
    let words_per_slice = lanes.div_ceil(64);
    let mut slices = vec![vec![0u64; words_per_slice]; width];
    for (lane, &value) in values.iter().enumerate().take(lanes) {
        for (bit, slice) in slices.iter_mut().enumerate() {
            if (value >> bit) & 1 == 1 {
                slice[lane / 64] |= 1 << (lane % 64);
            }
        }
    }
    slices
}

/// The pre-tiling scalar implementation of `vertical_to_horizontal` (reference).
fn scalar_vertical_to_horizontal(slices: &[Vec<u64>], width: usize, lanes: usize) -> Vec<u64> {
    let mut values = vec![0u64; lanes];
    for (bit, slice) in slices.iter().enumerate().take(width) {
        for (lane, value) in values.iter_mut().enumerate() {
            if (slice[lane / 64] >> (lane % 64)) & 1 == 1 {
                *value |= 1 << bit;
            }
        }
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The tiled conversions must match the scalar reference bit-for-bit, in particular
    // for lane counts that are not multiples of the 64×64 tile size and for value lists
    // shorter or longer than the lane count.
    #[test]
    fn tiled_h2v_matches_scalar_reference(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        width in 1usize..=64,
        extra_lanes in 0usize..70,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let lanes = (masked.len() + extra_lanes).max(1);
        prop_assert_eq!(
            horizontal_to_vertical(&masked, width, lanes),
            scalar_horizontal_to_vertical(&masked, width, lanes)
        );
    }

    #[test]
    fn tiled_v2h_matches_scalar_reference(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        width in 1usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let lanes = masked.len();
        let slices = scalar_horizontal_to_vertical(&masked, width, lanes);
        prop_assert_eq!(
            vertical_to_horizontal(&slices, width, lanes),
            scalar_vertical_to_horizontal(&slices, width, lanes)
        );
    }

    #[test]
    fn tiled_round_trip_against_scalar_for_ragged_lanes(
        lanes in 1usize..200,
        width in 1usize..=32,
    ) {
        // Deterministic ragged-lane round trip: tiled h2v -> scalar v2h and
        // scalar h2v -> tiled v2h both recover the original values.
        let mask = (1u64 << width) - 1;
        let values: Vec<u64> = (0..lanes as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
            .collect();
        let tiled = horizontal_to_vertical(&values, width, lanes);
        prop_assert_eq!(scalar_vertical_to_horizontal(&tiled, width, lanes), values.clone());
        let scalar = scalar_horizontal_to_vertical(&values, width, lanes);
        prop_assert_eq!(vertical_to_horizontal(&scalar, width, lanes), values);
    }

    #[test]
    fn tile_transpose_is_involutive(rows in proptest::collection::vec(any::<u64>(), 64)) {
        let tile: [u64; 64] = rows.clone().try_into().unwrap();
        let twice = transpose_64x64(&transpose_64x64(&tile));
        prop_assert_eq!(twice.to_vec(), rows);
    }

    #[test]
    fn tile_transpose_moves_every_bit(row in 0usize..64, col in 0usize..64) {
        let mut tile = [0u64; 64];
        tile[row] = 1 << col;
        let t = transpose_64x64(&tile);
        prop_assert_eq!(t[col], 1u64 << row);
        prop_assert_eq!(t.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn layout_conversion_round_trips(
        values in proptest::collection::vec(0u64..=0xFFFF_FFFF, 1..200),
        width in 1usize..=32,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let lanes = masked.len();
        let slices = horizontal_to_vertical(&masked, width, lanes);
        prop_assert_eq!(slices.len(), width);
        let back = vertical_to_horizontal(&slices, width, lanes);
        prop_assert_eq!(back, masked);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn machine_write_read_round_trips(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        width in 1usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let vector = machine.alloc_and_write(width, &masked).unwrap();
        prop_assert_eq!(machine.read(&vector).unwrap(), masked);
    }

    #[test]
    fn allocation_free_cycles_do_not_leak_rows(widths in proptest::collection::vec(1usize..=32, 1..20)) {
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        for &width in &widths {
            let v = machine.alloc(width, 8).unwrap();
            machine.free(v);
        }
        // After freeing everything, the largest legal vector must still be allocatable.
        let all_rows = 64usize.min(machine.config().allocatable_rows());
        prop_assert!(machine.alloc(all_rows, 8).is_ok());
    }
}
