//! Property-based guarantees of the MIMD dispatch-window and multi-device sharding
//! subsystems.
//!
//! Two contracts are under test:
//!
//! 1. **Sharding transparency** — for any operand values, fleet width, [`ShardPolicy`]
//!    and [`ExecutionPolicy`], an N-device [`ShardedMachine`] produces bit-identical
//!    read-back results to a single device running the same elementwise operations,
//!    and its merged fleet [`DeviceStats`] equals the solo device's stats (placement
//!    moves work, never changes it).
//! 2. **MIMD-window transparency** — a plan whose levels mix lane widths produces
//!    bit-identical outputs, per-plan reports (up to the window count itself) and
//!    functional [`DeviceStats`] whether its same-level batches co-issue in MIMD
//!    windows (`mimd_windows: true`) or run serialized per batch (the PR 9 schedule,
//!    `mimd_windows: false`), under either execution policy — while issuing strictly
//!    fewer dispatches.

use proptest::prelude::*;
use simdram_core::{
    ExecutionPolicy, LinkModel, PlanBuilder, ShardPolicy, ShardedMachine, SimdramConfig,
    SimdramMachine,
};
use simdram_logic::Operation;

fn config_with(execution: ExecutionPolicy, mimd_windows: bool) -> SimdramConfig {
    let mut config = SimdramConfig::functional_test();
    config.execution = execution;
    config.mimd_windows = mimd_windows;
    config
}

fn policies() -> [ExecutionPolicy; 2] {
    [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::Threaded { max_threads: 2 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Contract 1: sharded N-device execution is bit-identical to single-device for any
    // ShardMap policy and both execution policies, including operands that disagree on
    // placement (forcing a modeled cross-device transfer).
    #[test]
    fn sharded_fleet_matches_single_device(
        devices in 1usize..=4,
        shard_policy_idx in 0usize..2,
        op_index in 0usize..Operation::ALL.len(),
        width in 2usize..=8,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        len in 1usize..96,
        misaligned in any::<bool>(),
    ) {
        // Predicated ops need a third vector; fold them onto a plain binary op.
        let op = match Operation::ALL[op_index] {
            op if op.uses_predicate() => Operation::Add,
            op => op,
        };
        let shard_policy = [ShardPolicy::Contiguous, ShardPolicy::Interleaved][shard_policy_idx];
        let mask = (1u64 << width) - 1;
        let a_vals: Vec<u64> = (0..len as u64)
            .map(|i| (i.wrapping_mul(seed_a | 1) >> 7) & mask)
            .collect();
        let b_vals: Vec<u64> = (0..len as u64)
            .map(|i| (i.wrapping_mul(seed_b | 1) >> 5) & mask)
            .collect();

        for execution in policies() {
            // Single-device reference.
            let mut solo = SimdramMachine::new(config_with(execution, true)).unwrap();
            let sa = solo.alloc_and_write(width, &a_vals).unwrap();
            let expected = if op.uses_second_operand() {
                let sb = solo.alloc_and_write(width, &b_vals).unwrap();
                let (out, _) = solo.binary(op, &sa, &sb).unwrap();
                solo.read(&out).unwrap()
            } else {
                let (out, _) = solo.unary(op, &sa).unwrap();
                solo.read(&out).unwrap()
            };

            // Sharded fleet, same operation.
            let mut fleet = ShardedMachine::new(
                config_with(execution, true),
                devices,
                shard_policy,
                LinkModel::default(),
            )
            .unwrap();
            let fa = fleet.alloc_and_write(width, &a_vals).unwrap();
            let got = if op.uses_second_operand() {
                // Optionally place `b` under the *other* policy so the op must reshard
                // it across the link first — results must not change.
                let b_policy = if misaligned && devices > 1 {
                    match shard_policy {
                        ShardPolicy::Contiguous => ShardPolicy::Interleaved,
                        ShardPolicy::Interleaved => ShardPolicy::Contiguous,
                    }
                } else {
                    shard_policy
                };
                let fb = fleet.alloc_and_write_with(width, &b_vals, b_policy).unwrap();
                let out = fleet.binary(op, &fa, &fb).unwrap();
                fleet.read(&out).unwrap()
            } else {
                let out = fleet.unary(op, &fa).unwrap();
                fleet.read(&out).unwrap()
            };
            prop_assert_eq!(&got, &expected);

            // Aligned same-policy operands are device-local: nothing crosses the link.
            if !(misaligned && devices > 1 && op.uses_second_operand()) {
                prop_assert_eq!(fleet.movement().elements, 0);
            }
            // A one-device fleet IS the solo machine: even its functional command
            // accounting (per-kind counts, float latency/energy sums) matches exactly.
            // Wider fleets legally issue more chunk-executions (≥ 1 per device), so
            // only the results are comparable there.
            if devices == 1 {
                prop_assert_eq!(&fleet.device_stats(), solo.device_stats());
            }
        }
    }

    // Contract 2: a mixed-lane-width plan behaves identically with MIMD windows on or
    // off — outputs, per-plan accounting and DeviceStats — but issues fewer dispatches.
    #[test]
    fn mimd_windows_match_serialized_dispatch(
        width_a in 2usize..=8,
        width_b in 2usize..=8,
        seed_x in any::<u64>(),
        seed_y in any::<u64>(),
        len_x in 2usize..300,
        len_y in 1usize..64,
    ) {
        // Different lengths put the two op chains in different batches; equal lengths
        // would legally fuse them into one batch, which is not the case under test.
        let len_y = if len_y == len_x { len_y - 1 } else { len_y };
        let mask_x = (1u64 << width_a) - 1;
        let mask_y = (1u64 << width_b) - 1;
        let x_vals: Vec<u64> = (0..len_x as u64)
            .map(|i| (i.wrapping_mul(seed_x | 1) >> 7) & mask_x)
            .collect();
        let y_vals: Vec<u64> = (0..len_y as u64)
            .map(|i| (i.wrapping_mul(seed_y | 1) >> 5) & mask_y)
            .collect();

        for execution in policies() {
            let mut runs = Vec::new();
            for mimd in [true, false] {
                let mut m = SimdramMachine::new(config_with(execution, mimd)).unwrap();
                let x = m.alloc_and_write(width_a, &x_vals).unwrap();
                let y = m.alloc_and_write(width_b, &y_vals).unwrap();
                // Two independent chains of differing lane widths: their same-level
                // steps land in separate batches that share a dispatch window.
                let mut s = PlanBuilder::new();
                let xe = s.input(&x);
                let ye = s.input(&y);
                let cx = s.constant(width_a, len_x, seed_x & mask_x).unwrap();
                let cy = s.constant(width_b, len_y, seed_y & mask_y).unwrap();
                let sum_x = s.add(xe, cx).unwrap();
                let min_y = s.min(ye, cy).unwrap();
                let abs_x = s.abs(sum_x).unwrap();
                let max_y = s.max(min_y, ye).unwrap();
                let out_x = s.materialize(abs_x).unwrap();
                let out_y = s.materialize(max_y).unwrap();
                let plan = s.compile().unwrap();
                prop_assert!(plan.window_count() < plan.batch_count());
                prop_assert!(plan.mixed_window_count() > 0);

                let exec = m.run_plan(&plan).unwrap();
                let rx = m.read(exec.output(out_x)).unwrap();
                let ry = m.read(exec.output(out_y)).unwrap();
                let report = exec.report().clone();
                let dispatches = m.estimate().broadcasts;
                let stats = m.device_stats().clone();
                runs.push((rx, ry, report, dispatches, stats, plan.window_count(), plan.batch_count()));
            }
            let (serial_runs, mimd_runs) = (runs.pop().unwrap(), runs.pop().unwrap());
            // Bit-identical outputs and functional accounting.
            prop_assert_eq!(&mimd_runs.0, &serial_runs.0);
            prop_assert_eq!(&mimd_runs.1, &serial_runs.1);
            prop_assert_eq!(&mimd_runs.4, &serial_runs.4);
            // Identical per-plan reports up to the window count itself.
            let (mut mimd_report, mut serial_report) = (mimd_runs.2, serial_runs.2);
            prop_assert_eq!(mimd_report.windows, mimd_runs.5);
            prop_assert_eq!(serial_report.windows, serial_runs.6);
            mimd_report.windows = 0;
            serial_report.windows = 0;
            prop_assert_eq!(mimd_report.broadcasts, serial_report.broadcasts);
            prop_assert_eq!(mimd_report.ops, serial_report.ops);
            prop_assert_eq!(mimd_report.commands, serial_report.commands);
            prop_assert_eq!(&mimd_report.step_reports, &serial_report.step_reports);
            prop_assert!(
                (mimd_report.measured_energy_nj - serial_report.measured_energy_nj).abs() < 1e-6
            );
            // Strictly fewer machine dispatches with MIMD windows on.
            prop_assert!(mimd_runs.3 < serial_runs.3);
        }
    }
}
