//! Property-based contracts of the fault-injection and guarded-execution subsystem.
//!
//! Two guarantees are under test:
//!
//! 1. **Seeded injection is part of the deterministic contract.** A fault model is
//!    keyed by (subarray, TRA ordinal, column) — never by execution order — so the
//!    same seed must corrupt the same bits regardless of functional mode
//!    (interpreted vs compiled, where the compiler *elides* some TRAs) or broadcast
//!    policy (sequential vs threaded). Corrupted results are bit-identical across
//!    the whole mode grid, as are the injection counters.
//! 2. **Guarded execution converges bit-identically.** With transient TRA faults at
//!    realistic (small) rates and redundant re-execution armed, every computation
//!    must return exactly the fault-free machine's results — detection and retry are
//!    allowed to cost modeled time, never correctness.

use proptest::prelude::*;
use simdram_core::{
    ExecutionPolicy, FaultModel, FunctionalMode, GuardMode, SimdramConfig, SimdramMachine,
};
use simdram_logic::Operation;

fn machine_with(
    functional: FunctionalMode,
    execution: ExecutionPolicy,
    faults: FaultModel,
    guard: GuardMode,
) -> SimdramMachine {
    let mut config = SimdramConfig::functional_test();
    config.functional = functional;
    config.execution = execution;
    config.faults = faults;
    config.guard = guard;
    SimdramMachine::new(config).unwrap()
}

/// The mode × policy grid: `(Interpreted, Sequential)` is the reference.
fn mode_grid() -> [(FunctionalMode, ExecutionPolicy); 4] {
    [
        (FunctionalMode::Interpreted, ExecutionPolicy::Sequential),
        (FunctionalMode::compiled(), ExecutionPolicy::Sequential),
        (
            FunctionalMode::Compiled { trace_every: 1 },
            ExecutionPolicy::Sequential,
        ),
        (
            FunctionalMode::compiled(),
            ExecutionPolicy::Threaded { max_threads: 2 },
        ),
    ]
}

fn operands(seed_a: u64, seed_b: u64, width: usize, len: usize) -> (Vec<u64>, Vec<u64>) {
    let mask = (1u64 << width) - 1;
    let a = (0..len as u64)
        .map(|i| (i.wrapping_mul(seed_a | 1) >> 7) & mask)
        .collect();
    let b = (0..len as u64)
        .map(|i| (i.wrapping_mul(seed_b | 1) >> 5) & mask)
        .collect();
    (a, b)
}

/// The `op_index`-th non-predicated operation (predicated ops are covered by the
/// mode_equivalence suite).
fn unpredicated(op_index: usize) -> Operation {
    let ops: Vec<Operation> = Operation::ALL
        .iter()
        .copied()
        .filter(|op| !op.uses_predicate())
        .collect();
    ops[op_index % ops.len()]
}

fn run_binary(
    m: &mut SimdramMachine,
    op: Operation,
    width: usize,
    a: &[u64],
    b: &[u64],
) -> Vec<u64> {
    let va = m.alloc_and_write(width, a).unwrap();
    let vb = op
        .uses_second_operand()
        .then(|| m.alloc_and_write(width, b).unwrap());
    let dst = m.alloc(op.output_width(width), a.len()).unwrap();
    m.execute(op, &dst, &va, vb.as_ref(), None).unwrap();
    m.read(&dst).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Contract 1: with injection armed (and no guard), every mode/policy combination
    // corrupts the *same bits* — the TRA-ordinal fault keys survive the compiler's
    // μOp elision and the threaded engine's scheduling.
    #[test]
    fn seeded_injection_is_bit_identical_across_modes_and_policies(
        op_index in 0usize..Operation::ALL.len(),
        width in 2usize..=8,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        fault_seed in any::<u64>(),
        len in 1usize..300,
    ) {
        // Predicated ops are covered by mode_equivalence; cycle over the rest.
        let op = unpredicated(op_index);
        let (a_vals, b_vals) = operands(seed_a, seed_b, width, len);
        // A probability high enough that corruption actually lands in most cases.
        let faults = FaultModel::tra_with_probability(2e-4, fault_seed);

        let mut results = Vec::new();
        let mut injected = Vec::new();
        for (functional, execution) in mode_grid() {
            let mut m = machine_with(functional, execution, faults.clone(), GuardMode::Off);
            results.push(run_binary(&mut m, op, width, &a_vals, &b_vals));
            injected.push(m.injected_faults());
        }
        for i in 1..results.len() {
            prop_assert_eq!(&results[i], &results[0], "corrupted results diverged in combo {}", i);
            prop_assert_eq!(injected[i], injected[0], "injection counters diverged in combo {}", i);
        }
    }

    // Contract 2: with transient faults at a small rate and the redundant guard
    // armed, results are exactly the fault-free machine's — in every mode/policy.
    #[test]
    fn guarded_execution_converges_to_fault_free_results(
        op_index in 0usize..Operation::ALL.len(),
        width in 2usize..=8,
        seed_a in any::<u64>(),
        fault_seed in any::<u64>(),
        len in 1usize..200,
    ) {
        let op = unpredicated(op_index);
        let (a_vals, b_vals) = operands(seed_a, seed_a ^ 0x9E37, width, len);
        // Small enough that exhausting an 8-retry budget is (astronomically)
        // improbable, large enough that retries fire across the test run.
        let faults = FaultModel::tra_with_probability(2e-6, fault_seed);
        let guard = GuardMode::Redundant { max_retries: 8 };

        let mut reference = machine_with(
            FunctionalMode::Interpreted,
            ExecutionPolicy::Sequential,
            FaultModel::Off,
            GuardMode::Off,
        );
        let expected = run_binary(&mut reference, op, width, &a_vals, &b_vals);

        for (functional, execution) in mode_grid() {
            let mut m = machine_with(functional, execution, faults.clone(), guard);
            let got = run_binary(&mut m, op, width, &a_vals, &b_vals);
            prop_assert_eq!(&got, &expected, "guarded results diverged from fault-free");
            let log = m.fault_log();
            prop_assert_eq!(log.exhausted, 0);
            prop_assert_eq!(log.detected(), log.recovered);
            // Backoff is charged iff something was retried.
            prop_assert_eq!(log.retries > 0, log.backoff_ns > 0.0);
        }
    }
}

/// Deterministic recovery exercise: a seed/probability pair verified to inject,
/// detect and recover within the retry budget — so the retry path itself (snapshot
/// restore, trace merging, backoff accounting) is pinned, not just the happy path.
#[test]
fn recovery_path_is_exercised_and_recovers_bit_identically() {
    let mut reference = machine_with(
        FunctionalMode::Interpreted,
        ExecutionPolicy::Sequential,
        FaultModel::Off,
        GuardMode::Off,
    );
    let (a_vals, b_vals) = operands(0xDEAD_BEEF, 0xCAFE, 8, 256);
    let expected = run_binary(&mut reference, Operation::Add, 8, &a_vals, &b_vals);

    let mut m = machine_with(
        FunctionalMode::Interpreted,
        ExecutionPolicy::Sequential,
        FaultModel::tra_with_probability(5e-5, 6),
        GuardMode::Redundant { max_retries: 9 },
    );
    let got = run_binary(&mut m, Operation::Add, 8, &a_vals, &b_vals);
    assert_eq!(got, expected);

    let log = m.fault_log();
    assert!(log.injected > 0, "seed 6 must inject, got {log:?}");
    assert!(
        log.recovered > 0,
        "expected detected+recovered faults, got {log:?}"
    );
    assert_eq!(log.exhausted, 0);
    assert!(log.retries >= u64::from(log.recovered > 0));
    assert!(log.backoff_ns > 0.0);
    assert!(m.quarantined_chunks().is_empty());
}
