//! Property-based tests of the pluggable timing-backend layer.
//!
//! Three invariants hold for *any* command trace and any machine workload:
//!
//! 1. The bank-state replay is a strict-or-equal upper bound on the analytic
//!    estimate — it only adds row-buffer, ACTIVATE-serialization and refresh
//!    penalties, never removes cost.
//! 2. The bank-state accounting is deterministic across `SIMDRAM_EXEC` policies:
//!    the replay is a pure function of the traces, and the traces are bit-identical
//!    between sequential and threaded broadcasts.
//! 3. Selecting the analytic backend reproduces the pre-backend-layer estimates
//!    bit-identically, and the analytic fields never move under the bank-state
//!    backend either.

use proptest::prelude::*;
use simdram_core::{
    ExecutionPolicy, SimdramConfig, SimdramMachine, TimingBackendKind, TraceEstimator,
};
use simdram_dram::energy::EnergyModel;
use simdram_dram::{BGroupRow, BitRow, CommandTrace, DramConfig, DramTiming, RowAddr, Subarray};
use simdram_logic::Operation;

/// Replays a random action script on a fresh subarray and returns its command trace.
/// The action mix covers every command kind the replay classifies: row writes/reads
/// (WR/RD bursts), `AAP` copies in and out of the B-group, `AP(TRA)` majorities and
/// bare `AP` precharge-activates.
fn trace_from_script(config: &DramConfig, script: &[u8]) -> CommandTrace {
    let mut sa = Subarray::new(config);
    let pattern = BitRow::splat_word(0b1011, config.columns_per_row);
    sa.write_row(0, &pattern);
    sa.write_row(1, &pattern);
    for &action in script {
        let row = (action >> 4) as usize % 4;
        match action % 6 {
            0 => sa.write_row(row, &pattern),
            1 => {
                let _ = sa.read_row(row);
            }
            2 => sa
                .aap(RowAddr::Data(row), RowAddr::BGroup(BGroupRow::T0))
                .expect("aap in"),
            3 => sa
                .aap(RowAddr::BGroup(BGroupRow::T1), RowAddr::Data(row))
                .expect("aap out"),
            4 => sa
                .ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                .expect("tra"),
            _ => sa.ap(RowAddr::Data(row)).expect("ap"),
        }
    }
    sa.trace().clone()
}

/// Runs one small workload (I/O plus two compute ops) on a machine configured with
/// the given backend and policy, returning the machine for inspection.
fn run_workload(backend: TimingBackendKind, policy: ExecutionPolicy) -> SimdramMachine {
    let config = SimdramConfig {
        timing_backend: backend,
        execution: policy,
        ..SimdramConfig::functional_test()
    };
    let mut machine = SimdramMachine::new(config).expect("functional config");
    let a_vals: Vec<u64> = (0..300).map(|i| (i * 37 + 11) & 0xFF).collect();
    let b_vals: Vec<u64> = (0..300).map(|i| (i * 91 + 3) & 0xFF).collect();
    let a = machine.alloc_and_write(8, &a_vals).expect("alloc a");
    let b = machine.alloc_and_write(8, &b_vals).expect("alloc b");
    let sum = machine.alloc(8, 300).expect("alloc sum");
    let prod = machine
        .alloc(Operation::Mul.output_width(8), 300)
        .expect("alloc prod");
    machine
        .execute(Operation::Add, &sum, &a, Some(&b), None)
        .expect("add");
    machine
        .execute(Operation::Mul, &prod, &a, Some(&b), None)
        .expect("mul");
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Invariant 1: for arbitrary traces, the bank-state busy window dominates the
    // analytic one, and the analytic fields pass through the bank-state backend
    // bit for bit.
    #[test]
    fn bankstate_latency_dominates_analytic_for_random_traces(
        scripts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..60),
            1..4,
        ),
    ) {
        let config = DramConfig::tiny();
        let traces: Vec<CommandTrace> = scripts
            .iter()
            .map(|script| trace_from_script(&config, script))
            .collect();
        let timing = DramTiming::default();
        let energy = EnergyModel::default();
        let analytic = TraceEstimator::new(timing.clone(), energy.clone()).broadcast(&traces);
        let estimate = TimingBackendKind::BankState
            .build(timing, energy)
            .broadcast(&traces);
        prop_assert_eq!(estimate.latency_ns.to_bits(), analytic.latency_ns.to_bits());
        prop_assert_eq!(estimate.energy_nj.to_bits(), analytic.energy_nj.to_bits());
        prop_assert_eq!(estimate.cycles, analytic.cycles);
        prop_assert_eq!(estimate.commands, analytic.commands);
        let replay = estimate.bank_state.expect("bankstate attaches a replay");
        prop_assert!(replay.latency_ns >= analytic.latency_ns);
        prop_assert_eq!(replay.commands, analytic.commands);
        // The replay decomposition never exceeds its own busy window.
        prop_assert!(replay.act_stall_ns + replay.refresh_stall_ns <= replay.latency_ns);
    }

    // Invariant 1, replay-purity flavor: replaying the same traces twice is
    // bit-identical (the model holds no hidden state between broadcasts).
    #[test]
    fn replay_is_deterministic(script in proptest::collection::vec(any::<u8>(), 0..80)) {
        let config = DramConfig::tiny();
        let traces = vec![trace_from_script(&config, &script)];
        let backend = TimingBackendKind::BankState
            .build(DramTiming::default(), EnergyModel::default());
        let first = backend.broadcast(&traces);
        let second = backend.broadcast(&traces);
        prop_assert_eq!(first, second);
    }
}

// Invariant 2: the bank-state totals are bit-identical between sequential and
// threaded broadcast execution.
#[test]
fn bankstate_totals_are_policy_independent() {
    let sequential = run_workload(TimingBackendKind::BankState, ExecutionPolicy::Sequential);
    let threaded = run_workload(
        TimingBackendKind::BankState,
        ExecutionPolicy::Threaded { max_threads: 4 },
    );
    assert_eq!(sequential.timing_backend(), TimingBackendKind::BankState);
    let seq_totals = sequential
        .estimate()
        .bank_state
        .clone()
        .expect("bankstate totals");
    let thr_totals = threaded
        .estimate()
        .bank_state
        .clone()
        .expect("bankstate totals");
    assert_eq!(seq_totals, thr_totals);
    assert_eq!(
        seq_totals.latency_ns.to_bits(),
        thr_totals.latency_ns.to_bits()
    );
}

// Invariant 3: the analytic backend reproduces the pre-backend-layer estimates — the
// bank-state machine's analytic fields match an analytic machine's bit for bit, and
// the analytic machine carries no bank-state data at all.
#[test]
fn analytic_backend_is_bit_identical_to_the_reference() {
    let analytic = run_workload(TimingBackendKind::Analytic, ExecutionPolicy::Sequential);
    let bankstate = run_workload(TimingBackendKind::BankState, ExecutionPolicy::Sequential);
    let a = analytic.estimate();
    let b = bankstate.estimate();
    assert!(a.bank_state.is_none());
    assert_eq!(a.busy_latency_ns.to_bits(), b.busy_latency_ns.to_bits());
    assert_eq!(a.energy_nj.to_bits(), b.energy_nj.to_bits());
    assert_eq!(a.background_nj.to_bits(), b.background_nj.to_bits());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.commands, b.commands);
    assert_eq!(a.broadcasts, b.broadcasts);
    let totals = b.bank_state.as_ref().expect("bankstate totals");
    assert!(totals.latency_ns >= b.busy_latency_ns);
}
