//! Trace-driven timing/energy estimation: turns the [`CommandTrace`]s produced by
//! broadcast execution into cycle/latency/energy accounting.
//!
//! The functional simulator records every DRAM command each subarray actually issues
//! (see [`simdram_dram::Subarray`]); this module is the *estimation engine* that
//! aggregates those per-chunk traces under the hardware's concurrency semantics:
//!
//! * **Latency**: commands of one broadcast issue in lock-step across the participating
//!   banks and subarrays, so the broadcast's busy window is the **maximum** over the
//!   per-chunk trace latencies, not their sum. Successive broadcasts serialize, so the
//!   machine-level latency is the sum of per-broadcast windows.
//! * **Energy**: every participating subarray really charges and discharges its
//!   bitlines, so dynamic energy is the **sum** over chunks, plus background (static)
//!   power integrated over the busy window.
//! * **Cycles**: the busy window converted to whole DDR bus clocks
//!   ([`simdram_dram::DramTiming::cycles`]).
//!
//! Because the per-chunk traces are pure outputs of the broadcast kernels and the
//! executor returns them in deterministic chunk order, every number produced here is
//! **bit-identical** between [`crate::ExecutionPolicy::Sequential`] and
//! [`crate::ExecutionPolicy::Threaded`] runs — the bank-parallel broadcasts overlap in
//! time but sum in energy either way.

use std::fmt;

use simdram_dram::energy::EnergyModel;
use simdram_dram::{BankStateReplay, CommandTrace, DramTiming};

/// Timing/energy accounting of **one** broadcast (one μProgram issue, constant
/// broadcast, RowClone copy, …) derived from its per-chunk command traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BroadcastEstimate {
    /// Number of subarray chunks that participated.
    pub chunks: usize,
    /// Total DRAM commands issued across all chunks.
    pub commands: usize,
    /// Busy window of the broadcast in nanoseconds: the maximum per-chunk trace latency
    /// (chunks execute in lock-step, overlapping in time).
    pub latency_ns: f64,
    /// Busy window in whole DDR bus-clock cycles.
    pub cycles: u64,
    /// Dynamic DRAM energy in nanojoules: the sum over all chunks (energy adds up even
    /// though time overlaps).
    pub energy_nj: f64,
    /// Background (static) energy over the busy window, in nanojoules.
    pub background_nj: f64,
    /// Bank-state replay of the same traces, attached when the machine runs the
    /// [`crate::TimingBackendKind::BankState`] backend; `None` under the analytic
    /// backend. The analytic fields above are backend-independent.
    pub bank_state: Option<BankStateReplay>,
}

impl BroadcastEstimate {
    /// Dynamic plus background energy, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy_nj + self.background_nj
    }

    /// Dynamic energy in picojoules (the paper's per-bbop energy unit).
    pub fn energy_pj(&self) -> f64 {
        self.energy_nj * 1e3
    }
}

/// The estimation engine: owns the DDR timing and energy models and folds command
/// traces into [`BroadcastEstimate`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEstimator {
    timing: DramTiming,
    energy: EnergyModel,
}

impl TraceEstimator {
    /// Creates an estimator for the given DDR timing and energy models.
    pub fn new(timing: DramTiming, energy: EnergyModel) -> Self {
        TraceEstimator { timing, energy }
    }

    /// The DDR timing model driving cycle conversion.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// The energy model driving background-power accounting.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Estimates one broadcast from its per-chunk traces: latency is the max over
    /// chunks (lock-step execution), dynamic energy the sum, background energy the
    /// static power integrated over the busy window.
    pub fn broadcast(&self, traces: &[CommandTrace]) -> BroadcastEstimate {
        let mut latency_ns: f64 = 0.0;
        let mut energy_nj = 0.0;
        let mut commands = 0;
        for trace in traces {
            latency_ns = latency_ns.max(trace.total_latency_ns());
            energy_nj += trace.total_energy_nj();
            commands += trace.len();
        }
        BroadcastEstimate {
            chunks: traces.len(),
            commands,
            latency_ns,
            cycles: self.timing.cycles(latency_ns),
            energy_nj,
            background_nj: self.energy.background_nj(latency_ns),
            bank_state: None,
        }
    }
}

/// Cumulative bank-state accounting across a machine run: the fidelity-model
/// counterpart of the analytic [`MachineEstimate`] totals. Broadcasts serialize, so
/// replay latencies and stalls sum.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BankStateTotals {
    /// Broadcasts that carried a bank-state replay.
    pub broadcasts: usize,
    /// Sum of per-broadcast bank-state busy windows, in nanoseconds. Always ≥ the
    /// analytic [`MachineEstimate::busy_latency_ns`] over the same broadcasts.
    pub latency_ns: f64,
    /// Total critical-path ACTIVATE serialization stall (tRRD/tFAW), in nanoseconds.
    pub act_stall_ns: f64,
    /// Total critical-path refresh stall (tRFC), in nanoseconds.
    pub refresh_stall_ns: f64,
    /// Refreshes charged across all broadcasts and chunks.
    pub refreshes: usize,
    /// Row-buffer hits across all broadcasts and chunks.
    pub row_hits: usize,
    /// Row-buffer misses across all broadcasts and chunks.
    pub row_misses: usize,
    /// Row-buffer conflicts across all broadcasts and chunks.
    pub row_conflicts: usize,
}

impl BankStateTotals {
    /// Folds one broadcast's replay into the totals.
    pub fn record(&mut self, replay: &BankStateReplay) {
        self.broadcasts += 1;
        self.latency_ns += replay.latency_ns;
        self.act_stall_ns += replay.act_stall_ns;
        self.refresh_stall_ns += replay.refresh_stall_ns;
        self.refreshes += replay.refreshes;
        self.row_hits += replay.row_hits;
        self.row_misses += replay.row_misses;
        self.row_conflicts += replay.row_conflicts;
    }

    /// Fraction of classified commands that were row-buffer hits (0.0 when nothing
    /// was classified).
    pub fn row_buffer_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Share of the bank-state busy window spent stalled on refresh (0.0 when idle).
    pub fn refresh_share(&self) -> f64 {
        if self.latency_ns == 0.0 {
            0.0
        } else {
            self.refresh_stall_ns / self.latency_ns
        }
    }

    /// Ratio of the bank-state busy window to the analytic one (≥ 1 by construction;
    /// 1.0 when nothing ran).
    pub fn latency_ratio(&self, analytic_busy_ns: f64) -> f64 {
        if analytic_busy_ns == 0.0 {
            1.0
        } else {
            self.latency_ns / analytic_busy_ns
        }
    }
}

/// Cumulative trace-driven accounting of a whole [`crate::SimdramMachine`] run:
/// broadcasts serialize in time, so latencies and cycles sum; energy sums too.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineEstimate {
    /// Number of broadcasts absorbed.
    pub broadcasts: usize,
    /// Total DRAM commands across all broadcasts and chunks.
    pub commands: usize,
    /// Sum of per-broadcast busy windows, in nanoseconds.
    pub busy_latency_ns: f64,
    /// Sum of per-broadcast busy windows, in DDR bus-clock cycles.
    pub cycles: u64,
    /// Total dynamic DRAM energy, in nanojoules.
    pub energy_nj: f64,
    /// Total background (static) energy, in nanojoules.
    pub background_nj: f64,
    /// Cumulative bank-state accounting, populated when the machine runs the
    /// bank-state backend (`None` under the analytic backend, keeping the struct —
    /// and everything derived from it — bit-identical to prior releases).
    pub bank_state: Option<BankStateTotals>,
}

impl MachineEstimate {
    /// Creates an empty estimate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one broadcast's estimate into the running totals.
    pub fn record(&mut self, broadcast: &BroadcastEstimate) {
        self.broadcasts += 1;
        self.commands += broadcast.commands;
        self.busy_latency_ns += broadcast.latency_ns;
        self.cycles += broadcast.cycles;
        self.energy_nj += broadcast.energy_nj;
        self.background_nj += broadcast.background_nj;
        if let Some(replay) = &broadcast.bank_state {
            self.bank_state
                .get_or_insert_with(BankStateTotals::default)
                .record(replay);
        }
    }

    /// Dynamic plus background energy, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy_nj + self.background_nj
    }

    /// Dynamic energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy_nj * 1e3
    }
}

impl fmt::Display for MachineEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace-driven estimate:")?;
        writeln!(f, "  broadcasts    : {}", self.broadcasts)?;
        writeln!(f, "  commands      : {}", self.commands)?;
        writeln!(
            f,
            "  busy latency  : {:.1} ns ({} cycles)",
            self.busy_latency_ns, self.cycles
        )?;
        write!(
            f,
            "  energy        : {:.1} nJ dynamic + {:.1} nJ background",
            self.energy_nj, self.background_nj
        )?;
        if let Some(bank) = &self.bank_state {
            write!(
                f,
                "\n  bank-state    : {:.1} ns busy ({:.3}x analytic), \
                 row-buffer hit rate {:.2}, refresh share {:.4}",
                bank.latency_ns,
                bank.latency_ratio(self.busy_latency_ns),
                bank.row_buffer_hit_rate(),
                bank.refresh_share()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_dram::{BGroupRow, BitRow, DramConfig, RowAddr, Subarray};

    fn estimator() -> TraceEstimator {
        TraceEstimator::new(DramTiming::default(), EnergyModel::default())
    }

    /// Hand-computed accounting for a known 3-μop trace (2 AAPs + 1 TRA) under the
    /// default DDR4-2400 models:
    ///
    /// * AAP latency = 2·tRAS + tRP = 2·32 + 12.5 = 76.5 ns; AP(TRA) = tRAS + tRP = 44.5 ns
    ///   ⇒ chunk latency = 2·76.5 + 44.5 = 197.5 ns.
    /// * AAP energy = 2.5 + 1.5 = 4.0 nJ; TRA energy = 2.5 + 0.6 = 3.1 nJ
    ///   ⇒ chunk energy = 2·4.0 + 3.1 = 11.1 nJ.
    /// * Background = 0.25 W × 197.5 ns = 49.375 nJ; cycles = ⌈197.5 / 0.833⌉ = 238.
    #[test]
    fn three_microop_trace_matches_hand_computation() {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &BitRow::ones(256)).unwrap();
        let mark = sa.trace_mark();
        sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0))
            .unwrap();
        sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T1))
            .unwrap();
        sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
            .unwrap();
        let trace = sa.trace_since(mark);
        assert_eq!(trace.len(), 3);

        let est = estimator().broadcast(&[trace]);
        assert_eq!(est.chunks, 1);
        assert_eq!(est.commands, 3);
        assert!((est.latency_ns - 197.5).abs() < 1e-9, "{}", est.latency_ns);
        assert!((est.energy_nj - 11.1).abs() < 1e-9, "{}", est.energy_nj);
        assert!(
            (est.background_nj - 49.375).abs() < 1e-9,
            "{}",
            est.background_nj
        );
        assert_eq!(est.cycles, 238);
        assert!((est.total_energy_nj() - (11.1 + 49.375)).abs() < 1e-9);
        assert!((est.energy_pj() - 11_100.0).abs() < 1e-6);
    }

    #[test]
    fn broadcast_latency_is_max_over_chunks_and_energy_is_sum() {
        let config = DramConfig::tiny();
        // Chunk 0 issues two AAPs, chunk 1 only one: the busy window is chunk 0's.
        let mut sa0 = Subarray::new(&config);
        sa0.aap(RowAddr::Data(0), RowAddr::Data(1)).unwrap();
        sa0.aap(RowAddr::Data(1), RowAddr::Data(2)).unwrap();
        let mut sa1 = Subarray::new(&config);
        sa1.aap(RowAddr::Data(0), RowAddr::Data(1)).unwrap();

        let traces = [sa0.trace().clone(), sa1.trace().clone()];
        let est = estimator().broadcast(&traces);
        assert_eq!(est.chunks, 2);
        assert_eq!(est.commands, 3);
        assert!((est.latency_ns - 2.0 * 76.5).abs() < 1e-9);
        assert!((est.energy_nj - 3.0 * 4.0).abs() < 1e-9);
        // Parallel semantics: strictly less than the sequential-sum latency.
        assert!(est.latency_ns < traces[0].total_latency_ns() + traces[1].total_latency_ns());
    }

    #[test]
    fn empty_broadcast_costs_nothing() {
        let est = estimator().broadcast(&[]);
        assert_eq!(est, BroadcastEstimate::default());
        let est = estimator().broadcast(&[CommandTrace::new()]);
        assert_eq!(est.latency_ns, 0.0);
        assert_eq!(est.cycles, 0);
        assert_eq!(est.chunks, 1);
    }

    #[test]
    fn machine_estimate_accumulates_serialized_broadcasts() {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.aap(RowAddr::Data(0), RowAddr::Data(1)).unwrap();
        let traces = [sa.trace().clone()];
        let est = estimator().broadcast(&traces);

        let mut machine = MachineEstimate::new();
        machine.record(&est);
        machine.record(&est);
        assert_eq!(machine.broadcasts, 2);
        assert_eq!(machine.commands, 2);
        assert!((machine.busy_latency_ns - 2.0 * est.latency_ns).abs() < 1e-9);
        assert_eq!(machine.cycles, 2 * est.cycles);
        assert!(
            (machine.total_energy_nj() - 2.0 * (est.energy_nj + est.background_nj)).abs() < 1e-9
        );
        let text = machine.to_string();
        assert!(text.contains("broadcasts    : 2"));
        assert!(text.contains("cycles"));
    }
}
