//! Analytic area-overhead model (the paper's "<1% DRAM chip area" claim).
//!
//! SIMDRAM's hardware additions are: (1) inside each DRAM compute subarray, the B-group rows
//! (designated TRA rows, dual-contact-cell rows, control rows) and the slightly larger row
//! decoder that can drive them; and (2) inside the memory controller, the SIMDRAM control
//! unit and the transposition unit. This module estimates both overheads relative to a DRAM
//! chip and a CPU die respectively, using published ballpark constants (documented on each
//! field) — the conclusion only depends on the orders of magnitude.

/// Area model constants and derived overheads.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Rows added to each compute subarray for the B-group (4 designated rows, 2
    /// dual-contact-cell rows, 2 control rows).
    pub bgroup_rows: usize,
    /// Data rows per subarray.
    pub rows_per_subarray: usize,
    /// Fraction of the DRAM chip that is cell array (the rest is periphery), ~55%.
    pub cell_array_fraction: f64,
    /// Extra row-decoder area for the B-group addressing, as a fraction of chip area.
    pub decoder_overhead_fraction: f64,
    /// Area of the SIMDRAM control unit in the memory controller, mm².
    pub control_unit_mm2: f64,
    /// Area of the transposition unit in the memory controller, mm².
    pub transposition_unit_mm2: f64,
    /// Reference CPU die area, mm² (a desktop-class four-core die).
    pub cpu_die_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            bgroup_rows: 8,
            rows_per_subarray: 512,
            cell_array_fraction: 0.55,
            decoder_overhead_fraction: 0.001,
            control_unit_mm2: 0.04,
            transposition_unit_mm2: 0.06,
            cpu_die_mm2: 122.0,
        }
    }
}

impl AreaModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// DRAM chip area overhead, as a percentage of the chip.
    pub fn dram_overhead_percent(&self) -> f64 {
        let row_overhead =
            self.bgroup_rows as f64 / self.rows_per_subarray as f64 * self.cell_array_fraction;
        (row_overhead + self.decoder_overhead_fraction) * 100.0
    }

    /// CPU-side area overhead (control unit + transposition unit), as a percentage of the
    /// reference CPU die.
    pub fn cpu_overhead_percent(&self) -> f64 {
        (self.control_unit_mm2 + self.transposition_unit_mm2) / self.cpu_die_mm2 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_overhead_is_below_one_percent() {
        let model = AreaModel::default();
        let overhead = model.dram_overhead_percent();
        assert!(overhead < 1.0, "DRAM overhead {overhead}% should be < 1%");
        assert!(overhead > 0.1, "overhead should not be negligible");
    }

    #[test]
    fn cpu_overhead_is_a_tiny_fraction_of_the_die() {
        let model = AreaModel::default();
        let overhead = model.cpu_overhead_percent();
        assert!(overhead < 0.5);
        assert!(overhead > 0.0);
    }

    #[test]
    fn more_bgroup_rows_increase_overhead() {
        let mut model = AreaModel::default();
        let base = model.dram_overhead_percent();
        model.bgroup_rows = 16;
        assert!(model.dram_overhead_percent() > base);
    }
}
