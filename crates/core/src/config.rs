//! Configuration of a SIMDRAM machine.

use simdram_dram::{DramConfig, FaultModel};
use simdram_uprog::{CodegenOptions, Target};

use crate::error::{CoreError, Result};
use crate::executor::{ExecutionPolicy, FunctionalMode};
use crate::guard::GuardMode;
use crate::timing_backend::TimingBackendKind;

/// Configuration of a [`crate::SimdramMachine`]: the underlying DRAM geometry, how much of
/// it participates in computation, and which μProgram target/optimizations to use.
///
/// The paper's three SIMDRAM design points — 1, 4 and 16 compute banks — are available as
/// presets ([`SimdramConfig::paper_banks`]).
#[derive(Debug, Clone)]
pub struct SimdramConfig {
    /// Geometry, timing and energy of the DRAM device.
    pub dram: DramConfig,
    /// Number of banks that execute μPrograms concurrently.
    pub compute_banks: usize,
    /// Number of subarrays per compute bank that execute μPrograms concurrently.
    pub compute_subarrays_per_bank: usize,
    /// μProgram target: [`Target::Simdram`] (MAJ/NOT) or [`Target::Ambit`] (AND/OR/NOT).
    pub target: Target,
    /// Code generator options (disable for the ablation study).
    pub codegen: CodegenOptions,
    /// How the functional simulator drives the participating subarrays: sequentially or
    /// fanned out over threads ([`ExecutionPolicy::Threaded`]). The two policies are
    /// bit-identical in results and accounting; threaded only changes simulation
    /// wall-clock.
    pub execution: ExecutionPolicy,
    /// How each subarray chunk executes a μProgram: interpreted per-μOp, or via the
    /// compiled word-level kernel ([`FunctionalMode::Compiled`]). Like `execution`, the
    /// modes are bit-identical in results and aggregate accounting; compiled only changes
    /// simulation wall-clock and per-command history retention.
    pub functional: FunctionalMode,
    /// Which timing backend folds the executed command traces into the cumulative
    /// [`crate::MachineEstimate`]: the analytic estimator (the reference behaviour,
    /// bit-identical to prior releases) or the bank-state replay, which surfaces
    /// row-buffer, ACTIVATE-serialization and refresh effects *alongside* the
    /// unchanged analytic numbers ([`TimingBackendKind`]).
    pub timing_backend: TimingBackendKind,
    /// Fault-injection model installed into every subarray at machine construction
    /// ([`FaultModel::Off`] by default — the substrate stays exact and every result is
    /// bit-identical to a fault-free run).
    pub faults: FaultModel,
    /// Fault-detection/recovery policy for broadcast execution ([`GuardMode::Off`] by
    /// default; [`GuardMode::Redundant`] detects injected corruption by redundant
    /// re-execution and retries from a snapshot).
    pub guard: GuardMode,
    /// Whether plan execution groups same-level batches of different lane counts into
    /// one heterogeneous MIMD dispatch window (`true`, the default) or issues every
    /// batch as its own dispatch (`false`, the PR 9 serialized schedule). Results,
    /// per-step reports and [`simdram_dram::stats::DeviceStats`] are bit-identical
    /// either way — only the dispatch-window count and the fused busy-window
    /// accounting differ.
    pub mimd_windows: bool,
}

impl Default for SimdramConfig {
    fn default() -> Self {
        SimdramConfig {
            dram: DramConfig::default(),
            compute_banks: 16,
            compute_subarrays_per_bank: 16,
            target: Target::Simdram,
            codegen: CodegenOptions::optimized(),
            execution: ExecutionPolicy::default(),
            functional: FunctionalMode::default(),
            timing_backend: TimingBackendKind::default(),
            faults: FaultModel::default(),
            guard: GuardMode::default(),
            mimd_windows: true,
        }
    }
}

impl SimdramConfig {
    /// The paper's SIMDRAM:`banks` design point (1, 4 or 16 compute banks, 16 compute
    /// subarrays per bank, full-size DDR4 geometry).
    pub fn paper_banks(banks: usize) -> Self {
        SimdramConfig {
            compute_banks: banks,
            ..SimdramConfig::default()
        }
    }

    /// A small configuration for fast functional tests: 2 banks × 2 subarrays of 256
    /// columns.
    ///
    /// Honors the `SIMDRAM_EXEC`, `SIMDRAM_FUNC`, `SIMDRAM_TIMING`, `SIMDRAM_FAULTS`
    /// and `SIMDRAM_GUARD` environment overrides (see [`ExecutionPolicy::from_env`],
    /// [`FunctionalMode::from_env`], [`TimingBackendKind::from_env`],
    /// [`FaultModel::from_env`] and [`GuardMode::from_env`]), so CI can force every
    /// functional test through the threaded broadcast engine, the compiled execution
    /// mode, the bank-state timing backend and/or fault injection without code changes.
    pub fn functional_test() -> Self {
        SimdramConfig {
            dram: DramConfig::tiny(),
            compute_banks: 2,
            compute_subarrays_per_bank: 2,
            target: Target::Simdram,
            codegen: CodegenOptions::optimized(),
            execution: ExecutionPolicy::from_env().unwrap_or_default(),
            functional: FunctionalMode::from_env().unwrap_or_default(),
            timing_backend: TimingBackendKind::from_env().unwrap_or_default(),
            faults: FaultModel::from_env().unwrap_or_default(),
            guard: GuardMode::from_env().unwrap_or_default(),
            mimd_windows: true,
        }
    }

    /// Same geometry as [`SimdramConfig::functional_test`] but targeting the Ambit baseline.
    pub fn functional_test_ambit() -> Self {
        SimdramConfig {
            target: Target::Ambit,
            ..SimdramConfig::functional_test()
        }
    }

    /// A mid-size configuration for the runnable examples: 4 banks × 4 subarrays of 1,024
    /// columns (16,384 SIMD lanes), small enough to simulate functionally in milliseconds.
    pub fn demo() -> Self {
        let dram = DramConfig::builder()
            .banks(4)
            .subarrays_per_bank(4)
            .rows_per_subarray(256)
            .columns_per_row(1024)
            .reserved_rows(96)
            .build()
            .expect("demo geometry is valid");
        SimdramConfig {
            dram,
            compute_banks: 4,
            compute_subarrays_per_bank: 4,
            target: Target::Simdram,
            codegen: CodegenOptions::optimized(),
            execution: ExecutionPolicy::from_env().unwrap_or_default(),
            functional: FunctionalMode::from_env().unwrap_or_default(),
            timing_backend: TimingBackendKind::from_env().unwrap_or_default(),
            faults: FaultModel::from_env().unwrap_or_default(),
            guard: GuardMode::from_env().unwrap_or_default(),
            mimd_windows: true,
        }
    }

    /// Applies the five `SIMDRAM_*` environment overrides (`SIMDRAM_EXEC`,
    /// `SIMDRAM_FUNC`, `SIMDRAM_TIMING`, `SIMDRAM_FAULTS`, `SIMDRAM_GUARD`) to this
    /// configuration, surfacing any malformed value as a typed [`CoreError::Config`]
    /// instead of panicking or silently keeping the default.
    ///
    /// This is the recoverable counterpart of what [`SimdramConfig::functional_test`]
    /// and [`SimdramConfig::demo`] do internally — the entry point for long-running
    /// hosts (e.g. a serving deployment) that must reject a bad override at startup
    /// rather than abort.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when any of the five variables is set but
    /// malformed; the error names the variable, the rejected value and the accepted
    /// grammar.
    pub fn with_env_overrides(mut self) -> Result<Self> {
        if let Some(execution) = ExecutionPolicy::try_from_env()? {
            self.execution = execution;
        }
        if let Some(functional) = FunctionalMode::try_from_env()? {
            self.functional = functional;
        }
        if let Some(timing_backend) = TimingBackendKind::try_from_env()? {
            self.timing_backend = timing_backend;
        }
        if let Some(faults) = FaultModel::try_from_env()? {
            self.faults = faults;
        }
        if let Some(guard) = GuardMode::try_from_env()? {
            self.guard = guard;
        }
        Ok(self)
    }

    /// Number of SIMD lanes available per simultaneously issued μProgram
    /// (columns × compute subarrays × compute banks).
    pub fn total_lanes(&self) -> usize {
        self.dram.columns_per_row * self.compute_subarrays_per_bank * self.compute_banks
    }

    /// Number of data rows available to the allocator in each subarray (rows not reserved
    /// for μProgram temporaries).
    pub fn allocatable_rows(&self) -> usize {
        self.dram.rows_per_subarray - self.dram.reserved_rows
    }

    /// First row of the reserved (temporary) region.
    pub fn reserved_base(&self) -> usize {
        self.allocatable_rows()
    }

    /// Validates the configuration against the underlying DRAM geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if the number of compute banks or subarrays exceeds the
    /// geometry, or [`CoreError::Dram`] if the DRAM configuration itself is invalid.
    pub fn validate(&self) -> Result<()> {
        self.dram.validate()?;
        if self.compute_banks == 0 || self.compute_banks > self.dram.banks {
            return Err(CoreError::Shape(format!(
                "compute_banks ({}) must be in 1..={}",
                self.compute_banks, self.dram.banks
            )));
        }
        if self.compute_subarrays_per_bank == 0
            || self.compute_subarrays_per_bank > self.dram.subarrays_per_bank
        {
            return Err(CoreError::Shape(format!(
                "compute_subarrays_per_bank ({}) must be in 1..={}",
                self.compute_subarrays_per_bank, self.dram.subarrays_per_bank
            )));
        }
        self.execution.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_largest_design_point() {
        let cfg = SimdramConfig::default();
        assert_eq!(cfg.compute_banks, 16);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_lanes(), 65_536 * 16 * 16);
    }

    #[test]
    fn paper_presets_scale_lanes_linearly() {
        let one = SimdramConfig::paper_banks(1);
        let four = SimdramConfig::paper_banks(4);
        let sixteen = SimdramConfig::paper_banks(16);
        assert_eq!(four.total_lanes(), 4 * one.total_lanes());
        assert_eq!(sixteen.total_lanes(), 16 * one.total_lanes());
    }

    #[test]
    fn invalid_compute_counts_are_rejected() {
        let mut cfg = SimdramConfig::functional_test();
        cfg.compute_banks = 100;
        assert!(matches!(cfg.validate(), Err(CoreError::Shape(_))));
        let mut cfg = SimdramConfig::functional_test();
        cfg.compute_subarrays_per_bank = 0;
        assert!(matches!(cfg.validate(), Err(CoreError::Shape(_))));
    }

    #[test]
    fn zero_thread_policy_is_rejected() {
        let mut cfg = SimdramConfig::functional_test();
        cfg.execution = ExecutionPolicy::Threaded { max_threads: 0 };
        assert!(matches!(cfg.validate(), Err(CoreError::Shape(_))));
        cfg.execution = ExecutionPolicy::Threaded { max_threads: 1 };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn demo_config_is_valid_and_mid_sized() {
        let cfg = SimdramConfig::demo();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_lanes(), 16_384);
        assert!(cfg.total_lanes() > SimdramConfig::functional_test().total_lanes());
        assert!(cfg.total_lanes() < SimdramConfig::paper_banks(1).total_lanes());
    }

    #[test]
    fn env_overrides_keep_defaults_when_unset() {
        // For each axis whose variable is not set, override application must be the
        // identity. (CI legs that DO set some variables exercise the replacement arm
        // across the whole suite, so only the unset axes are asserted here.)
        let unset = |var: &str| std::env::var_os(var).is_none();
        let base = SimdramConfig::default();
        let overridden = base.clone().with_env_overrides().unwrap();
        if unset("SIMDRAM_EXEC") {
            assert_eq!(base.execution, overridden.execution);
        }
        if unset("SIMDRAM_FUNC") {
            assert_eq!(base.functional, overridden.functional);
        }
        if unset("SIMDRAM_TIMING") {
            assert_eq!(base.timing_backend, overridden.timing_backend);
        }
        if unset("SIMDRAM_FAULTS") {
            assert_eq!(base.faults, overridden.faults);
        }
        if unset("SIMDRAM_GUARD") {
            assert_eq!(base.guard, overridden.guard);
        }
    }

    #[test]
    fn reserved_region_is_at_the_top_of_the_subarray() {
        let cfg = SimdramConfig::functional_test();
        assert_eq!(
            cfg.reserved_base() + cfg.dram.reserved_rows,
            cfg.dram.rows_per_subarray
        );
    }
}
