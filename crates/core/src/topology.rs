//! Multi-device scale-out: ranked [`SimdramMachine`]s behind one machine-like API.
//!
//! One SIMDRAM device computes on the subarrays of a single DRAM rank. Scaling past a
//! rank means **sharding**: a [`ShardedMachine`] owns `N` independent devices, splits
//! every vector across them under a [`ShardMap`] placement policy, runs elementwise
//! bbop operations device-locally, and charges an explicit [`LinkModel`] data-movement
//! cost whenever operands have to cross devices ([`ShardedMachine::reshard`], or a
//! binary op whose operands disagree on placement).
//!
//! The design invariants mirror the single-device machine:
//!
//! * **Bit-identity** — results are element-for-element identical to running the same
//!   operation on one large-enough device, for every [`ShardPolicy`] and either
//!   [`crate::ExecutionPolicy`]. Placement decides *where* an element computes, never
//!   what it computes.
//! * **Honest accounting** — each device keeps its own [`MachineEstimate`],
//!   [`simdram_dram::stats::DeviceStats`] and fault/quarantine state
//!   ([`crate::GuardMode`] scope is per device); [`ShardedMachine::estimate`] folds
//!   them into a [`FleetEstimate`] whose makespan is the max over device busy windows
//!   plus the serialized cross-device movement window.
//! * **Capacity waves** — a shard larger than one device's lane capacity is stored as
//!   consecutive *waves* (each at most one device-full). One device runs its waves
//!   back-to-back; `N` devices run theirs concurrently, which is where the modeled
//!   throughput scaling comes from.

use simdram_dram::stats::DeviceStats;
use simdram_logic::Operation;

use crate::config::SimdramConfig;
use crate::error::{CoreError, Result};
use crate::estimate::{BroadcastEstimate, MachineEstimate};
use crate::guard::FaultLog;
use crate::layout::SimdVector;
use crate::machine::SimdramMachine;

/// How a [`ShardedMachine`] assigns vector elements to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardPolicy {
    /// Element `i` of an `n`-element vector lives on device `i / ceil(n / devices)`:
    /// each device owns one contiguous index range. Cheap sequential reads, but
    /// appends always land on the last device.
    Contiguous,
    /// Element `i` lives on device `i % devices`: round-robin placement that balances
    /// any prefix of the index space across the fleet.
    Interleaved,
}

/// The placement function of one sharded vector: policy + fleet width.
///
/// A `ShardMap` is pure arithmetic — it never touches a device — so placement
/// questions ("which device owns element 17?") are answerable without I/O, and the
/// movement cost model can count crossing elements exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    devices: usize,
    policy: ShardPolicy,
}

impl ShardMap {
    /// Creates a map over `devices` ranked devices (must be ≥ 1).
    pub fn new(devices: usize, policy: ShardPolicy) -> Self {
        debug_assert!(devices >= 1);
        ShardMap { devices, policy }
    }

    /// The placement policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Device owning element `index` of an `len`-element vector.
    pub fn device_of(&self, index: usize, len: usize) -> usize {
        match self.policy {
            ShardPolicy::Contiguous => {
                let span = len.div_ceil(self.devices).max(1);
                (index / span).min(self.devices - 1)
            }
            ShardPolicy::Interleaved => index % self.devices,
        }
    }

    /// Global element indices owned by each device, in ascending order per device.
    pub fn partition(&self, len: usize) -> Vec<Vec<usize>> {
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); self.devices];
        for index in 0..len {
            parts[self.device_of(index, len)].push(index);
        }
        parts
    }

    /// Elements of an `len`-element vector that change devices when re-placed under
    /// `target` — the exact transfer count the [`LinkModel`] charges for.
    pub fn crossing_elements(&self, target: &ShardMap, len: usize) -> usize {
        (0..len)
            .filter(|&i| self.device_of(i, len) != target.device_of(i, len))
            .count()
    }
}

/// Cost model of the inter-device link (one shared interconnect hop per transfer).
///
/// Defaults model a PCIe-class device-to-device path: 500 ns hop setup, 16 Gb/s of
/// usable bandwidth and 10 pJ/byte of transfer energy — three orders of magnitude
/// above in-DRAM operation energy, which is exactly the asymmetry that makes the
/// paper's "avoid data movement" argument quantitative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Fixed per-transfer setup latency, in nanoseconds.
    pub hop_latency_ns: f64,
    /// Usable link bandwidth, in gigabits per second.
    pub gbps: f64,
    /// Transfer energy, in picojoules per byte moved.
    pub energy_pj_per_byte: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            hop_latency_ns: 500.0,
            gbps: 16.0,
            energy_pj_per_byte: 10.0,
        }
    }
}

impl LinkModel {
    /// Latency of one transfer of `bytes` payload bytes, in nanoseconds.
    pub fn transfer_latency_ns(&self, bytes: usize) -> f64 {
        self.hop_latency_ns + (bytes as f64 * 8.0) / self.gbps
    }

    /// Energy of one transfer of `bytes` payload bytes, in nanojoules.
    pub fn transfer_energy_nj(&self, bytes: usize) -> f64 {
        bytes as f64 * self.energy_pj_per_byte / 1_000.0
    }
}

/// Cumulative cross-device movement charged by a [`ShardedMachine`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MovementTotals {
    /// Reshard operations that actually moved elements.
    pub transfers: usize,
    /// Elements that changed devices.
    pub elements: usize,
    /// Payload bytes moved across the link.
    pub bytes: usize,
    /// Serialized link busy time, in nanoseconds.
    pub latency_ns: f64,
    /// Link transfer energy, in nanojoules.
    pub energy_nj: f64,
}

/// One vector sharded across the fleet: per device, the waves holding its elements.
///
/// Treat it as an opaque handle (like [`SimdVector`]): obtain it from
/// [`ShardedMachine::alloc_and_write`] or an operation, read it back with
/// [`ShardedMachine::read`], release it with [`ShardedMachine::free`].
#[derive(Debug)]
pub struct ShardedVector {
    id: u64,
    width: usize,
    len: usize,
    map: ShardMap,
    /// `parts[d]` = device `d`'s waves, each at most one device capacity, covering the
    /// device's partition indices in ascending order.
    parts: Vec<Vec<SimdVector>>,
}

impl ShardedVector {
    /// Element width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count across all devices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no elements (never produced by this module).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The vector's placement map.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Unique handle id within its machine.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of waves the largest device shard needs (1 unless the vector exceeds a
    /// single device's lane capacity).
    pub fn max_waves(&self) -> usize {
        self.parts.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Per-device health snapshot surfaced by [`ShardedMachine::health`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceHealth {
    /// Device rank (index into the fleet).
    pub device: usize,
    /// Compute chunks this device has quarantined (guard-mode scope is per device).
    pub quarantined: Vec<usize>,
    /// Compute chunks still reservable on this device.
    pub free_chunks: usize,
    /// The device's cumulative fault log.
    pub fault_log: FaultLog,
}

/// Fleet-level cost roll-up: per-device estimates, their aggregate, and the movement
/// bill — everything needed to compare `N` devices against one.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEstimate {
    /// Per-device cumulative estimates, in rank order.
    pub per_device: Vec<MachineEstimate>,
    /// Cross-device movement charged so far, as raw link totals.
    pub movement: MovementTotals,
    /// Movement folded through the estimate machinery (one pseudo-broadcast per
    /// transfer, cycles derived from the devices' DRAM clock), so link time shows up
    /// on the same axis as compute time.
    pub movement_estimate: MachineEstimate,
}

impl FleetEstimate {
    /// Sum of per-device busy windows: total device-time consumed.
    pub fn busy_latency_ns(&self) -> f64 {
        self.per_device.iter().map(|e| e.busy_latency_ns).sum()
    }

    /// Fleet makespan: the slowest device's busy window plus the serialized
    /// cross-device movement window. Devices run concurrently; the link does not.
    pub fn makespan_ns(&self) -> f64 {
        let compute = self
            .per_device
            .iter()
            .map(|e| e.busy_latency_ns)
            .fold(0.0f64, f64::max);
        compute + self.movement.latency_ns
    }

    /// Total broadcasts issued across the fleet.
    pub fn broadcasts(&self) -> usize {
        self.per_device.iter().map(|e| e.broadcasts).sum()
    }

    /// Total dynamic energy (compute + movement), in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.per_device.iter().map(|e| e.energy_nj).sum::<f64>() + self.movement.energy_nj
    }
}

/// `N` ranked [`SimdramMachine`]s behind one machine-like elementwise API.
///
/// # Example
///
/// ```
/// use simdram_core::{LinkModel, ShardPolicy, ShardedMachine, SimdramConfig};
/// use simdram_logic::Operation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fleet = ShardedMachine::new(
///     SimdramConfig::functional_test(),
///     2,
///     ShardPolicy::Interleaved,
///     LinkModel::default(),
/// )?;
/// let a = fleet.alloc_and_write(8, &[1, 2, 3, 4])?;
/// let b = fleet.alloc_and_write(8, &[10, 20, 30, 40])?;
/// let sum = fleet.binary(Operation::Add, &a, &b)?;
/// assert_eq!(fleet.read(&sum)?, vec![11, 22, 33, 44]);
/// // Device-local operands moved nothing across the link.
/// assert_eq!(fleet.movement().elements, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedMachine {
    devices: Vec<SimdramMachine>,
    policy: ShardPolicy,
    link: LinkModel,
    movement: MovementTotals,
    movement_estimate: MachineEstimate,
    next_id: u64,
}

impl ShardedMachine {
    /// Builds a fleet of `devices` identical machines from one config.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for an empty fleet, plus any
    /// [`SimdramMachine::new`] error.
    pub fn new(
        config: SimdramConfig,
        devices: usize,
        policy: ShardPolicy,
        link: LinkModel,
    ) -> Result<Self> {
        if devices == 0 {
            return Err(CoreError::Shape(
                "a sharded machine needs at least one device".into(),
            ));
        }
        let devices = (0..devices)
            .map(|_| SimdramMachine::new(config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedMachine {
            devices,
            policy,
            link,
            movement: MovementTotals::default(),
            movement_estimate: MachineEstimate::new(),
            next_id: 0,
        })
    }

    /// Number of devices in the fleet.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// The fleet's default placement policy for new vectors.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Read-only access to one device (rank order), e.g. for per-device assertions.
    pub fn device(&self, rank: usize) -> &SimdramMachine {
        &self.devices[rank]
    }

    /// Elements one device can hold in a single wave (all compute subarrays).
    pub fn wave_capacity(&self) -> usize {
        let d = &self.devices[0];
        d.lanes_per_subarray() * d.compute_chunks()
    }

    /// The fleet's default shard map for `len`-agnostic placement questions.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.devices.len(), self.policy)
    }

    /// Cumulative cross-device movement totals.
    pub fn movement(&self) -> MovementTotals {
        self.movement
    }

    /// Allocates and writes a vector under the fleet's default policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for empty input, plus any device-level
    /// allocation/write error.
    pub fn alloc_and_write(&mut self, width: usize, values: &[u64]) -> Result<ShardedVector> {
        let policy = self.policy;
        self.alloc_and_write_with(width, values, policy)
    }

    /// Allocates and writes a vector under an explicit placement policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for empty input, plus any device-level
    /// allocation/write error.
    pub fn alloc_and_write_with(
        &mut self,
        width: usize,
        values: &[u64],
        policy: ShardPolicy,
    ) -> Result<ShardedVector> {
        if values.is_empty() {
            return Err(CoreError::Shape(
                "cannot shard an empty vector across devices".into(),
            ));
        }
        let map = ShardMap::new(self.devices.len(), policy);
        let wave = self.wave_capacity();
        let mut parts: Vec<Vec<SimdVector>> = Vec::with_capacity(self.devices.len());
        for (rank, indices) in map.partition(values.len()).into_iter().enumerate() {
            let mut waves = Vec::new();
            for chunk in indices.chunks(wave) {
                let local: Vec<u64> = chunk.iter().map(|&i| values[i]).collect();
                waves.push(self.devices[rank].alloc_and_write(width, &local)?);
            }
            parts.push(waves);
        }
        let id = self.next_id;
        self.next_id += 1;
        Ok(ShardedVector {
            id,
            width,
            len: values.len(),
            map,
            parts,
        })
    }

    /// Reads the vector back in global element order.
    ///
    /// # Errors
    ///
    /// Propagates device-level read errors.
    pub fn read(&mut self, vector: &ShardedVector) -> Result<Vec<u64>> {
        let mut out = vec![0u64; vector.len];
        let wave = self.wave_capacity();
        for (rank, indices) in vector.map.partition(vector.len).into_iter().enumerate() {
            for (wave_index, chunk) in indices.chunks(wave).enumerate() {
                let local = self.devices[rank].read(&vector.parts[rank][wave_index])?;
                for (&global, value) in chunk.iter().zip(local) {
                    out[global] = value;
                }
            }
        }
        Ok(out)
    }

    /// Releases every device-local wave of the vector.
    pub fn free(&mut self, vector: ShardedVector) {
        for (rank, waves) in vector.parts.into_iter().enumerate() {
            for wave in waves {
                self.devices[rank].free(wave);
            }
        }
    }

    /// Elementwise binary bbop across the fleet. Operands must agree in width and
    /// length; if their placements disagree, `b` is resharded to `a`'s map first and
    /// the crossing elements are charged to the [`LinkModel`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] on width/length mismatch, plus any device-level
    /// execution error.
    pub fn binary(
        &mut self,
        op: Operation,
        a: &ShardedVector,
        b: &ShardedVector,
    ) -> Result<ShardedVector> {
        if a.width != b.width {
            return Err(CoreError::Shape(format!(
                "sharded operand widths differ: {} vs {} bits",
                a.width, b.width
            )));
        }
        if a.len != b.len {
            return Err(CoreError::Shape(format!(
                "sharded operand lengths differ: {} vs {} elements",
                a.len, b.len
            )));
        }
        if a.map != b.map {
            // Cross-device operands: align `b` to `a`'s placement over the link, run
            // device-locally, then drop the aligned copy.
            let aligned = self.reshard(b, a.map.policy())?;
            let result = self.binary_aligned(op, a, &aligned);
            self.free(aligned);
            return result;
        }
        self.binary_aligned(op, a, b)
    }

    fn binary_aligned(
        &mut self,
        op: Operation,
        a: &ShardedVector,
        b: &ShardedVector,
    ) -> Result<ShardedVector> {
        let mut parts: Vec<Vec<SimdVector>> = Vec::with_capacity(self.devices.len());
        for rank in 0..self.devices.len() {
            let mut waves = Vec::with_capacity(a.parts[rank].len());
            for (wa, wb) in a.parts[rank].iter().zip(&b.parts[rank]) {
                let (out, _) = self.devices[rank].binary(op, wa, wb)?;
                waves.push(out);
            }
            parts.push(waves);
        }
        let id = self.next_id;
        self.next_id += 1;
        Ok(ShardedVector {
            id,
            width: op.output_width(a.width),
            len: a.len,
            map: a.map,
            parts,
        })
    }

    /// Elementwise unary bbop across the fleet (always device-local).
    ///
    /// # Errors
    ///
    /// Propagates device-level execution errors.
    pub fn unary(&mut self, op: Operation, a: &ShardedVector) -> Result<ShardedVector> {
        let mut parts: Vec<Vec<SimdVector>> = Vec::with_capacity(self.devices.len());
        for rank in 0..self.devices.len() {
            let mut waves = Vec::with_capacity(a.parts[rank].len());
            for wa in &a.parts[rank] {
                let (out, _) = self.devices[rank].unary(op, wa)?;
                waves.push(out);
            }
            parts.push(waves);
        }
        let id = self.next_id;
        self.next_id += 1;
        Ok(ShardedVector {
            id,
            width: op.output_width(a.width),
            len: a.len,
            map: a.map,
            parts,
        })
    }

    /// Re-places a vector under `policy`, charging the link for every element whose
    /// owning device changes (elements that stay put are free — resharding between
    /// identical maps costs nothing). Returns the new vector; the source stays valid.
    ///
    /// # Errors
    ///
    /// Propagates device-level read/alloc errors.
    pub fn reshard(
        &mut self,
        vector: &ShardedVector,
        policy: ShardPolicy,
    ) -> Result<ShardedVector> {
        let target = ShardMap::new(self.devices.len(), policy);
        let moved = vector.map.crossing_elements(&target, vector.len);
        if moved > 0 {
            let bytes = moved * vector.width.div_ceil(8);
            let latency_ns = self.link.transfer_latency_ns(bytes);
            let energy_nj = self.link.transfer_energy_nj(bytes);
            self.movement.transfers += 1;
            self.movement.elements += moved;
            self.movement.bytes += bytes;
            self.movement.latency_ns += latency_ns;
            self.movement.energy_nj += energy_nj;
            // One pseudo-broadcast on the estimate axis: the link busy window with
            // cycles on the devices' DRAM clock, zero DRAM commands.
            let cycles = self.devices[0].config().dram.timing.cycles(latency_ns);
            self.movement_estimate.record(&BroadcastEstimate {
                chunks: moved,
                commands: 0,
                latency_ns,
                cycles,
                energy_nj,
                background_nj: 0.0,
                bank_state: None,
            });
        }
        let values = self.read(vector)?;
        self.alloc_and_write_with(vector.width, &values, policy)
    }

    /// Fleet-level cost roll-up (see [`FleetEstimate`]).
    pub fn estimate(&self) -> FleetEstimate {
        FleetEstimate {
            per_device: self.devices.iter().map(|d| d.estimate().clone()).collect(),
            movement: self.movement,
            movement_estimate: self.movement_estimate.clone(),
        }
    }

    /// Functional command accounting merged across every device.
    pub fn device_stats(&self) -> DeviceStats {
        let mut merged = DeviceStats::new();
        for device in &self.devices {
            merged.merge(device.device_stats());
        }
        merged
    }

    /// Per-device health: quarantine sets, free capacity and fault logs, in rank
    /// order. Quarantine is scoped per device — one device's bad subarray never
    /// blocks another device's chunks.
    pub fn health(&self) -> Vec<DeviceHealth> {
        self.devices
            .iter()
            .enumerate()
            .map(|(device, m)| DeviceHealth {
                device,
                quarantined: m.quarantined_chunks(),
                free_chunks: m.free_chunks(),
                fault_log: m.fault_log(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(devices: usize, policy: ShardPolicy) -> ShardedMachine {
        ShardedMachine::new(
            SimdramConfig::functional_test(),
            devices,
            policy,
            LinkModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn shard_map_partitions_cover_every_index_exactly_once() {
        for policy in [ShardPolicy::Contiguous, ShardPolicy::Interleaved] {
            for devices in [1, 2, 3, 4] {
                for len in [1, 2, 7, 16, 33] {
                    let map = ShardMap::new(devices, policy);
                    let parts = map.partition(len);
                    assert_eq!(parts.len(), devices);
                    let mut seen: Vec<usize> = parts.iter().flatten().copied().collect();
                    seen.sort_unstable();
                    assert_eq!(seen, (0..len).collect::<Vec<_>>());
                    for (rank, part) in parts.iter().enumerate() {
                        for &i in part {
                            assert_eq!(map.device_of(i, len), rank);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_elementwise_matches_single_device() {
        let a_vals: Vec<u64> = (0..10u64).map(|i| (i * 37 + 11) & 0xFF).collect();
        let b_vals: Vec<u64> = (0..10u64).map(|i| (i * 91 + 3) & 0xFF).collect();
        let mut solo = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let sa = solo.alloc_and_write(8, &a_vals).unwrap();
        let sb = solo.alloc_and_write(8, &b_vals).unwrap();
        let (expected, _) = solo.binary(Operation::Add, &sa, &sb).unwrap();
        let expected = solo.read(&expected).unwrap();

        for policy in [ShardPolicy::Contiguous, ShardPolicy::Interleaved] {
            let mut m = fleet(3, policy);
            let a = m.alloc_and_write(8, &a_vals).unwrap();
            let b = m.alloc_and_write(8, &b_vals).unwrap();
            let sum = m.binary(Operation::Add, &a, &b).unwrap();
            assert_eq!(m.read(&sum).unwrap(), expected);
            assert_eq!(m.movement().elements, 0);
        }
    }

    #[test]
    fn oversized_shards_split_into_waves_and_still_read_back() {
        let mut m = fleet(2, ShardPolicy::Contiguous);
        // More than 2 × one device's wave capacity forces multiple waves per device.
        let len = m.wave_capacity() * 2 + 3;
        let values: Vec<u64> = (0..len as u64).map(|i| i & 0xFF).collect();
        let v = m.alloc_and_write(8, &values).unwrap();
        assert!(v.max_waves() >= 2);
        assert_eq!(m.read(&v).unwrap(), values);
        let doubled = m.binary(Operation::Add, &v, &v).unwrap();
        let expected: Vec<u64> = values.iter().map(|&x| (x + x) & 0xFF).collect();
        assert_eq!(m.read(&doubled).unwrap(), expected);
        m.free(doubled);
        m.free(v);
    }

    #[test]
    fn cross_device_operands_charge_the_link_model() {
        let mut m = fleet(4, ShardPolicy::Contiguous);
        let vals: Vec<u64> = (0..16u64).collect();
        let a = m
            .alloc_and_write_with(8, &vals, ShardPolicy::Contiguous)
            .unwrap();
        let b = m
            .alloc_and_write_with(8, &vals, ShardPolicy::Interleaved)
            .unwrap();
        assert_eq!(m.movement().transfers, 0);
        let sum = m.binary(Operation::Add, &a, &b).unwrap();
        let expected: Vec<u64> = vals.iter().map(|&x| x + x).collect();
        assert_eq!(m.read(&sum).unwrap(), expected);
        // 16 elements, 4 devices: contiguous [0..4)→0,… vs interleaved i%4 — only the
        // diagonal stays put, so 12 elements crossed in one transfer.
        let movement = m.movement();
        assert_eq!(movement.transfers, 1);
        assert_eq!(movement.elements, 12);
        assert_eq!(movement.bytes, 12);
        assert!(movement.latency_ns > 0.0);
        assert!(movement.energy_nj > 0.0);
        // The movement bill rides the estimate axis and the fleet makespan.
        let estimate = m.estimate();
        assert_eq!(estimate.movement_estimate.broadcasts, 1);
        assert!(estimate.movement_estimate.cycles > 0);
        assert!(estimate.makespan_ns() > estimate.per_device[0].busy_latency_ns);
    }

    #[test]
    fn reshard_between_identical_maps_is_free() {
        let mut m = fleet(2, ShardPolicy::Interleaved);
        let v = m.alloc_and_write(8, &[1, 2, 3, 4]).unwrap();
        let same = m.reshard(&v, ShardPolicy::Interleaved).unwrap();
        assert_eq!(m.movement().transfers, 0);
        assert_eq!(m.read(&same).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn fleet_health_and_stats_aggregate_per_device() {
        let mut m = fleet(2, ShardPolicy::Interleaved);
        let v = m.alloc_and_write(8, &[1, 2, 3, 4]).unwrap();
        let _ = m.unary(Operation::Abs, &v).unwrap();
        let health = m.health();
        assert_eq!(health.len(), 2);
        assert!(health.iter().all(|h| h.quarantined.is_empty()));
        let merged = m.device_stats();
        let per_device_total: usize = (0..m.devices())
            .map(|r| m.device(r).device_stats().total_commands())
            .sum();
        assert_eq!(merged.total_commands(), per_device_total);
        assert!(merged.total_commands() > 0);
        // Both devices computed (interleaved placement touches every rank).
        assert!(m.device(0).device_stats().total_commands() > 0);
        assert!(m.device(1).device_stats().total_commands() > 0);
    }

    #[test]
    fn empty_fleet_and_empty_vectors_are_rejected() {
        assert!(matches!(
            ShardedMachine::new(
                SimdramConfig::functional_test(),
                0,
                ShardPolicy::Contiguous,
                LinkModel::default(),
            ),
            Err(CoreError::Shape(_))
        ));
        let mut m = fleet(2, ShardPolicy::Contiguous);
        assert!(matches!(
            m.alloc_and_write(8, &[]),
            Err(CoreError::Shape(_))
        ));
    }
}
