//! Scalar reference execution used to verify in-DRAM results.

use simdram_logic::Operation;

/// Computes the element-wise reference result of `op` over host-side slices.
///
/// `b` is ignored for single-operand operations; `pred` is ignored unless the operation is
/// predicated. Slices shorter than `a` are treated as zero/false.
pub fn reference_elementwise(
    op: Operation,
    width: usize,
    a: &[u64],
    b: &[u64],
    pred: &[bool],
) -> Vec<u64> {
    a.iter()
        .enumerate()
        .map(|(i, &av)| {
            let bv = b.get(i).copied().unwrap_or(0);
            let pv = pred.get(i).copied().unwrap_or(false);
            op.reference(width, av, bv, pv)
        })
        .collect()
}

/// Compares in-DRAM results against the scalar reference, returning the indices of any
/// mismatching elements (empty means the results are correct).
pub fn mismatches(
    op: Operation,
    width: usize,
    a: &[u64],
    b: &[u64],
    pred: &[bool],
    results: &[u64],
) -> Vec<usize> {
    let expected = reference_elementwise(op, width, a, b, pred);
    expected
        .iter()
        .zip(results)
        .enumerate()
        .filter_map(|(i, (e, r))| if e != r { Some(i) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_elementwise_applies_operation_per_lane() {
        let out = reference_elementwise(Operation::Add, 8, &[250, 3], &[10, 4], &[]);
        assert_eq!(out, vec![4, 7]);
        let relu = reference_elementwise(Operation::Relu, 8, &[0x80, 0x7F], &[], &[]);
        assert_eq!(relu, vec![0, 0x7F]);
    }

    #[test]
    fn mismatches_reports_only_wrong_lanes() {
        let a = [1u64, 2, 3];
        let b = [1u64, 1, 1];
        let good = reference_elementwise(Operation::Add, 8, &a, &b, &[]);
        assert!(mismatches(Operation::Add, 8, &a, &b, &[], &good).is_empty());
        let mut bad = good.clone();
        bad[1] ^= 1;
        assert_eq!(mismatches(Operation::Add, 8, &a, &b, &[], &bad), vec![1]);
    }

    #[test]
    fn missing_operands_default_to_zero() {
        let out = reference_elementwise(Operation::Add, 8, &[5, 6], &[1], &[]);
        assert_eq!(out, vec![6, 6]);
    }
}
