//! Fault detection and recovery policy: guarded (redundant) execution, typed fault
//! errors and the machine-level recovery ledger.
//!
//! SIMDRAM's computation primitive — triple-row activation — is analog, and the paper's
//! reliability study shows its failure probability rising steeply with process scaling.
//! The guard layer turns the substrate's *injected* faults (see
//! [`simdram_dram::FaultModel`]) into *detected and recovered* ones: under
//! [`GuardMode::Redundant`] every chunk executes each broadcast batch twice and compares
//! the resulting data rows. A mismatch means at least one run was corrupted; the chunk is
//! rolled back to its pre-batch snapshot and retried, with each retry charged a modeled
//! re-dispatch delay ([`RETRY_BACKOFF_NS`]) so recovery is visible in the timing
//! estimate, not free. Chunks that exhaust the retry budget raise
//! [`crate::CoreError::Fault`] carrying a [`FaultError`], and the machine quarantines
//! subarrays that keep failing (see [`crate::SimdramMachine::quarantined_chunks`]).

use std::fmt;

use simdram_dram::envopt::{self, EnvOverrideError};

/// Environment variable carrying the guard-mode override.
const GUARD_VAR: &str = "SIMDRAM_GUARD";
/// Accepted `SIMDRAM_GUARD` grammar, quoted in every rejection error.
const GUARD_EXPECTED: &str = "off | redundant | redundant:<n>";

/// Modeled latency charged per retry of a guarded chunk, in nanoseconds: the memory
/// controller detects the mismatch, re-issues the batch and waits out a conservative
/// re-dispatch window. Folded into the dispatch latency of the broadcast the retry
/// happened in, so guarded recovery slows the *modeled* machine down too.
pub const RETRY_BACKOFF_NS: f64 = 1_000.0;

/// Default retry budget of [`GuardMode::Redundant`].
pub const DEFAULT_MAX_RETRIES: u32 = 3;

/// How the machine guards broadcast execution against in-DRAM computation faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// No detection: faults (if injected) silently corrupt results. The default — with
    /// [`simdram_dram::FaultModel::Off`] the substrate is exact and guarding would only
    /// double simulation work.
    #[default]
    Off,
    /// Redundant execution: run every chunk's batch twice from the same snapshot and
    /// compare the data rows. On mismatch, roll back and retry up to `max_retries`
    /// times (each retry is another redundant pair); on exhaustion, fail the chunk with
    /// a typed [`FaultError`].
    Redundant {
        /// Number of retries after the first failed attempt.
        max_retries: u32,
    },
}

impl GuardMode {
    /// Redundant execution with the default retry budget.
    pub fn redundant() -> Self {
        GuardMode::Redundant {
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }

    /// Returns `true` when guarding is disabled.
    pub fn is_off(&self) -> bool {
        matches!(self, GuardMode::Off)
    }

    /// Reads the `SIMDRAM_GUARD` environment override, surfacing malformed values as a
    /// typed [`EnvOverrideError`] instead of panicking or silently falling back.
    /// Returns `Ok(None)` only when the variable is unset.
    ///
    /// Recognized values: `off`, `redundant` (default retry budget) and
    /// `redundant:<n>` (explicit retry budget).
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] when the variable is set but unrecognized.
    pub fn try_from_env() -> Result<Option<Self>, EnvOverrideError> {
        envopt::env_override(GUARD_VAR, GUARD_EXPECTED, Self::recognize)
    }

    /// Reads the `SIMDRAM_GUARD` environment override, if set.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — an override that silently fell back to the
    /// default would invalidate the run it was meant to configure. Callers that want a
    /// recoverable failure use [`GuardMode::try_from_env`].
    pub fn from_env() -> Option<Self> {
        Self::try_from_env().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Parses one `SIMDRAM_GUARD` override value with the shared normalization rules.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] on anything [`GuardMode::try_from_env`] would
    /// reject.
    pub fn parse_override(raw: &str) -> Result<Self, EnvOverrideError> {
        envopt::parse_override(GUARD_VAR, GUARD_EXPECTED, raw, Self::recognize)
    }

    /// The pure grammar recognizer behind [`GuardMode::parse_override`]: `value` is
    /// already trimmed and lowercased; `None` means "not in the grammar".
    fn recognize(value: &str) -> Option<Self> {
        if value == "off" {
            return Some(GuardMode::Off);
        }
        if value == "redundant" {
            return Some(GuardMode::redundant());
        }
        if let Some(n) = value.strip_prefix("redundant:") {
            let max_retries = n.parse().ok()?;
            return Some(GuardMode::Redundant { max_retries });
        }
        None
    }
}

/// A chunk exhausted its guarded retry budget: every attempt's redundant pair disagreed.
///
/// Carried by [`crate::CoreError::Fault`]. The coordinates let a serving layer attribute
/// the failure to the placement that contained the chunk and degrade only that job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Bank of the failing subarray.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Linear compute-chunk index (`bank × subarrays_per_bank + subarray`).
    pub chunk: usize,
    /// Total execution attempts made (first try + retries).
    pub attempts: u32,
    /// Number of data rows that disagreed between the final redundant pair.
    pub mismatched_rows: usize,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk {} (bank {}, subarray {}) failed guarded execution after {} attempts ({} data rows mismatched)",
            self.chunk, self.bank, self.subarray, self.attempts, self.mismatched_rows
        )
    }
}

/// Cumulative machine-level recovery accounting, surfaced through
/// [`crate::SimdramMachine::fault_log`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultLog {
    /// Retry attempts issued across all guarded chunks (each is one extra redundant
    /// pair).
    pub retries: u64,
    /// Fault events that recovery resolved: a chunk whose redundant pair disagreed at
    /// least once but eventually agreed within the retry budget.
    pub recovered: u64,
    /// Fault events that exhausted the retry budget and surfaced as
    /// [`crate::CoreError::Fault`].
    pub exhausted: u64,
    /// Bit flips the substrate injected during guarded and unguarded execution (see
    /// [`simdram_dram::DramDevice::injected_faults`]).
    pub injected: u64,
    /// Modeled retry backoff charged to the timing estimate, in nanoseconds.
    pub backoff_ns: f64,
}

impl FaultLog {
    /// Number of distinct fault events the guard detected (recovered + exhausted).
    pub fn detected(&self) -> u64 {
        self.recovered + self.exhausted
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: {} injected, {} detected ({} recovered, {} exhausted), {} retries, {:.0} ns backoff",
            self.injected,
            self.detected(),
            self.recovered,
            self.exhausted,
            self.retries,
            self.backoff_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert_eq!(GuardMode::default(), GuardMode::Off);
        assert!(GuardMode::default().is_off());
        assert!(!GuardMode::redundant().is_off());
    }

    #[test]
    fn parses_overrides() {
        assert_eq!(GuardMode::parse_override("off"), Ok(GuardMode::Off));
        assert_eq!(GuardMode::parse_override(" OFF "), Ok(GuardMode::Off));
        assert_eq!(
            GuardMode::parse_override("redundant"),
            Ok(GuardMode::Redundant {
                max_retries: DEFAULT_MAX_RETRIES
            })
        );
        assert_eq!(
            GuardMode::parse_override("Redundant:7"),
            Ok(GuardMode::Redundant { max_retries: 7 })
        );
        assert_eq!(
            GuardMode::parse_override("redundant:0"),
            Ok(GuardMode::Redundant { max_retries: 0 })
        );
    }

    #[test]
    fn rejects_unknown_override_with_a_typed_error() {
        let err = GuardMode::parse_override("triple").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_GUARD");
        assert_eq!(err.value, "triple");
        assert!(err.to_string().contains("off | redundant"));
    }

    #[test]
    fn rejects_bad_retry_budget_with_a_typed_error() {
        let err = GuardMode::parse_override("redundant:many").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_GUARD");
        assert!(GuardMode::parse_override("redundant:-1").is_err());
    }

    #[test]
    fn fault_log_counts_detections() {
        let log = FaultLog {
            retries: 5,
            recovered: 3,
            exhausted: 1,
            injected: 42,
            backoff_ns: 5_000.0,
        };
        assert_eq!(log.detected(), 4);
        let text = log.to_string();
        assert!(text.contains("42 injected"));
        assert!(text.contains("3 recovered"));
    }

    #[test]
    fn fault_error_display_names_the_chunk() {
        let err = FaultError {
            bank: 1,
            subarray: 0,
            chunk: 2,
            attempts: 4,
            mismatched_rows: 3,
        };
        let text = err.to_string();
        assert!(text.contains("chunk 2"));
        assert!(text.contains("4 attempts"));
    }
}
