//! Fault detection and recovery policy: guarded (redundant) execution, typed fault
//! errors and the machine-level recovery ledger.
//!
//! SIMDRAM's computation primitive — triple-row activation — is analog, and the paper's
//! reliability study shows its failure probability rising steeply with process scaling.
//! The guard layer turns the substrate's *injected* faults (see
//! [`simdram_dram::FaultModel`]) into *detected and recovered* ones: under
//! [`GuardMode::Redundant`] every chunk executes each broadcast batch twice and compares
//! the resulting data rows. A mismatch means at least one run was corrupted; the chunk is
//! rolled back to its pre-batch snapshot and retried, with each retry charged a modeled
//! re-dispatch delay ([`RETRY_BACKOFF_NS`]) so recovery is visible in the timing
//! estimate, not free. Chunks that exhaust the retry budget raise
//! [`crate::CoreError::Fault`] carrying a [`FaultError`], and the machine quarantines
//! subarrays that keep failing (see [`crate::SimdramMachine::quarantined_chunks`]).

use std::fmt;

/// Modeled latency charged per retry of a guarded chunk, in nanoseconds: the memory
/// controller detects the mismatch, re-issues the batch and waits out a conservative
/// re-dispatch window. Folded into the dispatch latency of the broadcast the retry
/// happened in, so guarded recovery slows the *modeled* machine down too.
pub const RETRY_BACKOFF_NS: f64 = 1_000.0;

/// Default retry budget of [`GuardMode::Redundant`].
pub const DEFAULT_MAX_RETRIES: u32 = 3;

/// How the machine guards broadcast execution against in-DRAM computation faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// No detection: faults (if injected) silently corrupt results. The default — with
    /// [`simdram_dram::FaultModel::Off`] the substrate is exact and guarding would only
    /// double simulation work.
    #[default]
    Off,
    /// Redundant execution: run every chunk's batch twice from the same snapshot and
    /// compare the data rows. On mismatch, roll back and retry up to `max_retries`
    /// times (each retry is another redundant pair); on exhaustion, fail the chunk with
    /// a typed [`FaultError`].
    Redundant {
        /// Number of retries after the first failed attempt.
        max_retries: u32,
    },
}

impl GuardMode {
    /// Redundant execution with the default retry budget.
    pub fn redundant() -> Self {
        GuardMode::Redundant {
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }

    /// Returns `true` when guarding is disabled.
    pub fn is_off(&self) -> bool {
        matches!(self, GuardMode::Off)
    }

    /// Reads the `SIMDRAM_GUARD` environment override, if set.
    ///
    /// Recognized values: `off`, `redundant` (default retry budget) and
    /// `redundant:<n>` (explicit retry budget).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — an override that silently fell back to the
    /// default would invalidate the run it was meant to configure.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SIMDRAM_GUARD").ok()?;
        Some(Self::parse_override(&raw))
    }

    fn parse_override(raw: &str) -> Self {
        let value = raw.trim().to_ascii_lowercase();
        if value == "off" {
            return GuardMode::Off;
        }
        if value == "redundant" {
            return GuardMode::redundant();
        }
        if let Some(n) = value.strip_prefix("redundant:") {
            let max_retries = n.parse().unwrap_or_else(|_| {
                panic!("SIMDRAM_GUARD={raw}: retry budget must be an unsigned integer")
            });
            return GuardMode::Redundant { max_retries };
        }
        panic!(
            "unrecognized SIMDRAM_GUARD value {raw:?} (expected off | redundant | redundant:<n>)"
        )
    }
}

/// A chunk exhausted its guarded retry budget: every attempt's redundant pair disagreed.
///
/// Carried by [`crate::CoreError::Fault`]. The coordinates let a serving layer attribute
/// the failure to the placement that contained the chunk and degrade only that job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Bank of the failing subarray.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Linear compute-chunk index (`bank × subarrays_per_bank + subarray`).
    pub chunk: usize,
    /// Total execution attempts made (first try + retries).
    pub attempts: u32,
    /// Number of data rows that disagreed between the final redundant pair.
    pub mismatched_rows: usize,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk {} (bank {}, subarray {}) failed guarded execution after {} attempts ({} data rows mismatched)",
            self.chunk, self.bank, self.subarray, self.attempts, self.mismatched_rows
        )
    }
}

/// Cumulative machine-level recovery accounting, surfaced through
/// [`crate::SimdramMachine::fault_log`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultLog {
    /// Retry attempts issued across all guarded chunks (each is one extra redundant
    /// pair).
    pub retries: u64,
    /// Fault events that recovery resolved: a chunk whose redundant pair disagreed at
    /// least once but eventually agreed within the retry budget.
    pub recovered: u64,
    /// Fault events that exhausted the retry budget and surfaced as
    /// [`crate::CoreError::Fault`].
    pub exhausted: u64,
    /// Bit flips the substrate injected during guarded and unguarded execution (see
    /// [`simdram_dram::DramDevice::injected_faults`]).
    pub injected: u64,
    /// Modeled retry backoff charged to the timing estimate, in nanoseconds.
    pub backoff_ns: f64,
}

impl FaultLog {
    /// Number of distinct fault events the guard detected (recovered + exhausted).
    pub fn detected(&self) -> u64 {
        self.recovered + self.exhausted
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: {} injected, {} detected ({} recovered, {} exhausted), {} retries, {:.0} ns backoff",
            self.injected,
            self.detected(),
            self.recovered,
            self.exhausted,
            self.retries,
            self.backoff_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert_eq!(GuardMode::default(), GuardMode::Off);
        assert!(GuardMode::default().is_off());
        assert!(!GuardMode::redundant().is_off());
    }

    #[test]
    fn parses_overrides() {
        assert_eq!(GuardMode::parse_override("off"), GuardMode::Off);
        assert_eq!(GuardMode::parse_override(" OFF "), GuardMode::Off);
        assert_eq!(
            GuardMode::parse_override("redundant"),
            GuardMode::Redundant {
                max_retries: DEFAULT_MAX_RETRIES
            }
        );
        assert_eq!(
            GuardMode::parse_override("Redundant:7"),
            GuardMode::Redundant { max_retries: 7 }
        );
        assert_eq!(
            GuardMode::parse_override("redundant:0"),
            GuardMode::Redundant { max_retries: 0 }
        );
    }

    #[test]
    #[should_panic(expected = "unrecognized SIMDRAM_GUARD value")]
    fn rejects_unknown_override() {
        GuardMode::parse_override("triple");
    }

    #[test]
    #[should_panic(expected = "retry budget must be an unsigned integer")]
    fn rejects_bad_retry_budget() {
        GuardMode::parse_override("redundant:many");
    }

    #[test]
    fn fault_log_counts_detections() {
        let log = FaultLog {
            retries: 5,
            recovered: 3,
            exhausted: 1,
            injected: 42,
            backoff_ns: 5_000.0,
        };
        assert_eq!(log.detected(), 4);
        let text = log.to_string();
        assert!(text.contains("42 injected"));
        assert!(text.contains("3 recovered"));
    }

    #[test]
    fn fault_error_display_names_the_chunk() {
        let err = FaultError {
            bank: 1,
            subarray: 0,
            chunk: 2,
            attempts: 4,
            mismatched_rows: 3,
        };
        let text = err.to_string();
        assert!(text.contains("chunk 2"));
        assert!(text.contains("4 attempts"));
    }
}
