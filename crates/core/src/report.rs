//! Execution reports and machine-level statistics.

use std::fmt;

use simdram_logic::Operation;

/// The cost accounting of one executed bbop operation.
///
/// Latency is the time the μProgram occupies the participating banks (commands issue in
/// lock-step across subarrays, so latency does not grow with the number of lanes); energy
/// scales with the number of subarrays that actually computed.
///
/// An eager single-op call ([`crate::SimdramMachine::binary`] and friends) issues one
/// broadcast per report. Inside [`PlanReport::step_reports`] the same struct describes one
/// *step* of a fused broadcast batch: several steps (possibly from several tenants' plans,
/// under `simdram-serve`) share one physical dispatch, but each step's report still
/// charges exactly the commands, latency and energy of that step on its own subarrays —
/// which is why per-plan accounting is bit-identical whether the plan ran solo or fused.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The operation that was executed.
    pub op: Operation,
    /// Element width in bits.
    pub width: usize,
    /// Number of elements processed.
    pub elements: usize,
    /// Number of subarrays that participated.
    pub subarrays_used: usize,
    /// Total DRAM commands issued per subarray (AAP + AP).
    pub commands: usize,
    /// Triple-row activations per subarray.
    pub tra_count: usize,
    /// Latency of the operation in nanoseconds.
    pub latency_ns: f64,
    /// DRAM energy of the operation in nanojoules (all subarrays).
    pub energy_nj: f64,
    /// Latency **measured** from the executed command traces by the estimation engine
    /// ([`crate::TraceEstimator`]): the maximum per-chunk trace latency, since the
    /// participating subarrays execute in lock-step. Matches [`Self::latency_ns`] to
    /// floating-point accuracy — the functional simulator issues exactly the μProgram's
    /// command sequence.
    pub measured_latency_ns: f64,
    /// Dynamic DRAM energy **measured** from the executed command traces (summed over
    /// all participating subarrays), in nanojoules.
    pub measured_energy_nj: f64,
    /// Busy window of this step under the bank-state timing backend
    /// ([`crate::TimingBackendKind::BankState`]), in nanoseconds; `None` under the
    /// analytic backend. Always ≥ [`Self::measured_latency_ns`] when present — the
    /// replay only adds row-buffer, ACTIVATE-serialization and refresh penalties.
    pub bank_state_latency_ns: Option<f64>,
    /// Bit flips the fault model injected during this step, summed over the
    /// participating subarrays (0 with [`simdram_dram::FaultModel::Off`]). Under
    /// [`crate::GuardMode::Redundant`] this covers every attempt, including retried
    /// and discarded ones.
    pub faults_injected: u64,
}

impl ExecutionReport {
    /// Throughput in giga-operations per second achieved by this execution.
    pub fn throughput_gops(&self) -> f64 {
        if self.latency_ns == 0.0 {
            0.0
        } else {
            self.elements as f64 / self.latency_ns
        }
    }

    /// Average DRAM energy per element in nanojoules.
    pub fn energy_per_element_nj(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.energy_nj / self.elements as f64
        }
    }

    /// Average DRAM power drawn during the operation, in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.latency_ns == 0.0 {
            0.0
        } else {
            self.energy_nj / self.latency_ns
        }
    }

    /// Energy efficiency in giga-operations per second per watt.
    pub fn gops_per_watt(&self) -> f64 {
        let power = self.average_power_w();
        if power == 0.0 {
            0.0
        } else {
            self.throughput_gops() / power
        }
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}-bit, {} elements): {} commands/subarray, {:.1} ns, {:.1} nJ, {:.2} GOPS, {:.2} GOPS/W",
            self.op,
            self.width,
            self.elements,
            self.commands,
            self.latency_ns,
            self.energy_nj,
            self.throughput_gops(),
            self.gops_per_watt()
        )
    }
}

/// The cost accounting of one executed [`crate::Plan`].
///
/// A plan issues its steps as **fused broadcast batches**: every step of a batch runs
/// back-to-back inside one broadcast, so `broadcasts` is the number of batches actually
/// issued while `eager_broadcasts` is what op-by-op execution of the same expression
/// would have issued (one broadcast per operation and per constant initialization).
/// All timing/energy figures aggregate the trace-driven estimation engine
/// ([`crate::TraceEstimator`]) over the plan's batches and are bit-identical between
/// execution policies.
///
/// When several plans execute together ([`crate::SimdramMachine::run_plans_on`], or the
/// `simdram-serve` layer built on it), the `d`-th batch of every plan fuses into **one**
/// machine dispatch over disjoint subarray sets — yet each plan's `PlanReport` accounts
/// only its own batches and steps, so it matches the plan's solo run exactly.
///
/// # Example
///
/// ```
/// use simdram_core::{PlanBuilder, SimdramConfig, SimdramMachine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;
/// let x = machine.alloc_and_write(8, &[1, 2, 3])?;
/// let mut s = PlanBuilder::new();
/// let a = s.input(&x);
/// let c = s.constant(8, 3, 10)?;
/// let sum = s.add(a, c)?;
/// let prod = s.mul(sum, a)?;
/// s.materialize(prod)?;
/// let exec = machine.run_plan(&s.compile()?)?;
/// let report = exec.report();
/// // The fused schedule issues no more broadcasts than op-by-op execution would.
/// assert!(report.broadcasts <= report.eager_broadcasts);
/// assert_eq!(
///     report.broadcast_savings(),
///     report.eager_broadcasts as f64 / report.broadcasts as f64
/// );
/// assert!(report.broadcast_savings() >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanReport {
    /// Number of bbop operation steps executed.
    pub ops: usize,
    /// Number of constant-broadcast steps executed.
    pub constants: usize,
    /// Number of RowClone copy steps (inserted automatically to de-alias operands).
    pub copies: usize,
    /// Number of fused broadcasts (batches) issued.
    pub broadcasts: usize,
    /// MIMD dispatch windows the batches were issued in (≤ `broadcasts`): independent
    /// same-level batches co-issue in one window when
    /// [`crate::SimdramConfig::mimd_windows`] is on, so `broadcasts - windows` is the
    /// number of dispatches MIMD saved for this plan.
    pub windows: usize,
    /// Broadcasts the eager op-by-op path would have issued for the same steps.
    pub eager_broadcasts: usize,
    /// Total DRAM commands issued per subarray, summed over steps (analytic).
    pub commands: usize,
    /// Total elements processed across all operation steps.
    pub elements: usize,
    /// Analytic compute latency: the sum of the per-operation μProgram latencies.
    pub latency_ns: f64,
    /// Analytic DRAM energy over all operation steps and subarrays, in nanojoules.
    pub energy_nj: f64,
    /// Trace-measured busy window: the sum over dispatch windows of each window's
    /// max-over-subarrays latency (the fused schedule's serialization points). With
    /// MIMD windows off this degenerates to a sum over batches.
    pub measured_latency_ns: f64,
    /// Trace-measured dynamic DRAM energy over every step and subarray, in nanojoules.
    pub measured_energy_nj: f64,
    /// Bit flips the fault model injected while running this plan's batches (all steps,
    /// all subarrays, all guarded attempts; 0 with [`simdram_dram::FaultModel::Off`]).
    pub faults_injected: u64,
    /// Guarded retry attempts this plan's batches consumed (0 with
    /// [`crate::GuardMode::Off`]); each one re-ran a chunk's whole batch redundantly
    /// and charged [`crate::RETRY_BACKOFF_NS`] to the dispatch latency.
    pub fault_retries: u64,
    /// Per-operation reports, in step issue order (constant steps carry no report).
    pub step_reports: Vec<ExecutionReport>,
}

impl PlanReport {
    /// Ratio of eager broadcasts to fused broadcasts (≥ 1; higher means more fusion).
    pub fn broadcast_savings(&self) -> f64 {
        if self.broadcasts == 0 {
            1.0
        } else {
            self.eager_broadcasts as f64 / self.broadcasts as f64
        }
    }

    /// Throughput in giga-operations per second over the plan's analytic latency.
    pub fn throughput_gops(&self) -> f64 {
        if self.latency_ns == 0.0 {
            0.0
        } else {
            self.elements as f64 / self.latency_ns
        }
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan: {} ops + {} constants in {} broadcasts (eager: {}), \
             {} commands/subarray, {:.1} ns busy, {:.1} nJ",
            self.ops,
            self.constants,
            self.broadcasts,
            self.eager_broadcasts,
            self.commands,
            self.measured_latency_ns,
            self.measured_energy_nj
        )
    }
}

/// Cumulative statistics of a [`crate::SimdramMachine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Number of bbop operations executed.
    pub operations: usize,
    /// Total elements processed across all operations.
    pub elements: usize,
    /// Total DRAM commands issued (per-subarray counts summed over operations).
    pub commands: usize,
    /// Total in-DRAM computation latency in nanoseconds.
    pub compute_latency_ns: f64,
    /// Total in-DRAM computation energy in nanojoules.
    pub compute_energy_nj: f64,
    /// Total transposition-unit latency in nanoseconds (host ↔ vertical layout conversion).
    pub transpose_latency_ns: f64,
    /// Total transposition-unit energy in nanojoules.
    pub transpose_energy_nj: f64,
}

impl MachineStats {
    /// Adds one execution report to the totals.
    pub fn record_execution(&mut self, report: &ExecutionReport) {
        self.operations += 1;
        self.elements += report.elements;
        self.commands += report.commands;
        self.compute_latency_ns += report.latency_ns;
        self.compute_energy_nj += report.energy_nj;
    }

    /// Adds one layout conversion to the totals.
    pub fn record_transpose(&mut self, latency_ns: f64, energy_nj: f64) {
        self.transpose_latency_ns += latency_ns;
        self.transpose_energy_nj += energy_nj;
    }

    /// Total latency (compute + transposition) in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.compute_latency_ns + self.transpose_latency_ns
    }

    /// Total energy (compute + transposition) in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.compute_energy_nj + self.transpose_energy_nj
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SIMDRAM machine statistics:")?;
        writeln!(f, "  operations executed : {}", self.operations)?;
        writeln!(f, "  elements processed  : {}", self.elements)?;
        writeln!(f, "  DRAM commands       : {}", self.commands)?;
        writeln!(
            f,
            "  compute latency     : {:.1} ns",
            self.compute_latency_ns
        )?;
        writeln!(
            f,
            "  compute energy      : {:.1} nJ",
            self.compute_energy_nj
        )?;
        writeln!(
            f,
            "  transpose latency   : {:.1} ns",
            self.transpose_latency_ns
        )?;
        write!(
            f,
            "  transpose energy    : {:.1} nJ",
            self.transpose_energy_nj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            op: Operation::Add,
            width: 32,
            elements: 65_536,
            subarrays_used: 1,
            commands: 300,
            tra_count: 96,
            latency_ns: 22_950.0,
            energy_nj: 1_000.0,
            measured_latency_ns: 22_950.0,
            measured_energy_nj: 1_000.0,
            bank_state_latency_ns: None,
            faults_injected: 0,
        }
    }

    #[test]
    fn throughput_and_efficiency_are_consistent() {
        let r = report();
        let gops = r.throughput_gops();
        assert!(gops > 1.0 && gops < 10.0);
        let power = r.average_power_w();
        assert!((r.gops_per_watt() - gops / power).abs() < 1e-9);
        assert!((r.energy_per_element_nj() - 1_000.0 / 65_536.0).abs() < 1e-12);
    }

    #[test]
    fn zero_latency_report_does_not_divide_by_zero() {
        let mut r = report();
        r.latency_ns = 0.0;
        r.elements = 0;
        assert_eq!(r.throughput_gops(), 0.0);
        assert_eq!(r.gops_per_watt(), 0.0);
        assert_eq!(r.energy_per_element_nj(), 0.0);
    }

    #[test]
    fn stats_accumulate_reports_and_transposes() {
        let mut stats = MachineStats::default();
        stats.record_execution(&report());
        stats.record_execution(&report());
        stats.record_transpose(100.0, 5.0);
        assert_eq!(stats.operations, 2);
        assert_eq!(stats.elements, 2 * 65_536);
        assert!((stats.total_latency_ns() - (2.0 * 22_950.0 + 100.0)).abs() < 1e-9);
        assert!((stats.total_energy_nj() - 2_005.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_key_fields() {
        let text = report().to_string();
        assert!(text.contains("addition"));
        assert!(text.contains("GOPS"));
        let stats_text = MachineStats::default().to_string();
        assert!(stats_text.contains("operations executed"));
    }

    #[test]
    fn plan_report_broadcast_savings_and_display() {
        let plan = PlanReport {
            ops: 5,
            constants: 2,
            copies: 0,
            broadcasts: 3,
            windows: 2,
            eager_broadcasts: 7,
            commands: 120,
            elements: 5 * 300,
            latency_ns: 1_000.0,
            energy_nj: 40.0,
            measured_latency_ns: 1_000.0,
            measured_energy_nj: 80.0,
            faults_injected: 0,
            fault_retries: 0,
            step_reports: vec![report()],
        };
        assert!((plan.broadcast_savings() - 7.0 / 3.0).abs() < 1e-12);
        assert!((plan.throughput_gops() - 1_500.0 / 1_000.0).abs() < 1e-12);
        let text = plan.to_string();
        assert!(text.contains("5 ops"));
        assert!(text.contains("eager: 7"));
        // Degenerate empty plan reports stay finite.
        let empty = PlanReport::default();
        assert_eq!(empty.broadcast_savings(), 1.0);
        assert_eq!(empty.throughput_gops(), 0.0);
    }
}
