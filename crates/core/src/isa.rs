//! The bbop ISA extension.
//!
//! SIMDRAM exposes its functionality to programs through a small set of *bulk bitwise
//! operation* (bbop) instructions added to the host ISA. A bbop names an operation, the
//! (vertically laid-out) source and destination objects and the element width; the memory
//! controller's control unit expands it into the corresponding μProgram. Two transposition
//! instructions move objects between the conventional horizontal layout and SIMDRAM's
//! vertical layout through the transposition unit.

use std::fmt;

use simdram_logic::Operation;

use crate::layout::SimdVector;

/// Direction of a layout-conversion (`bbop_trsp`) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeDirection {
    /// Host (horizontal) layout → SIMDRAM (vertical) layout.
    HorizontalToVertical,
    /// SIMDRAM (vertical) layout → host (horizontal) layout.
    VerticalToHorizontal,
}

/// One instruction of the bbop ISA extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbopInstruction {
    /// `bbop_trsp` — convert an object between horizontal and vertical layouts using the
    /// memory controller's transposition unit.
    Transpose {
        /// The object being converted.
        vector: SimdVector,
        /// Conversion direction.
        direction: TransposeDirection,
    },
    /// `bbop_<op>` — perform `op` element-wise over the source vector(s), writing the result
    /// into `dst`.
    Op {
        /// The operation to perform.
        op: Operation,
        /// Destination vector (must have the operation's output width).
        dst: SimdVector,
        /// First source vector.
        src_a: SimdVector,
        /// Second source vector, for two-operand operations.
        src_b: Option<SimdVector>,
        /// 1-bit predicate vector, for predicated operations.
        pred: Option<SimdVector>,
    },
    /// `bbop_init` — fill a vector with a constant value (implemented with row initialization
    /// from the control rows).
    Init {
        /// Destination vector.
        dst: SimdVector,
        /// The constant to broadcast into every element.
        value: u64,
    },
}

/// Allocation-free mnemonic formatter returned by [`BbopInstruction::mnemonic`].
///
/// Every mnemonic is a fixed prefix plus an optional `&'static` operation name, so
/// formatting writes two string slices and never allocates. Use `to_string()` only when
/// an owned `String` is genuinely needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mnemonic {
    prefix: &'static str,
    suffix: &'static str,
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix)?;
        f.write_str(self.suffix)
    }
}

impl PartialEq<&str> for Mnemonic {
    fn eq(&self, other: &&str) -> bool {
        let (head, tail) = match other.split_at_checked(self.prefix.len()) {
            Some(parts) => parts,
            None => return false,
        };
        head == self.prefix && tail == self.suffix
    }
}

impl BbopInstruction {
    /// Short mnemonic used in traces and reports, as an allocation-free
    /// [`Display`](fmt::Display) adapter (also available through the instruction's own
    /// `Display` impl).
    pub fn mnemonic(&self) -> Mnemonic {
        match self {
            BbopInstruction::Transpose { direction, .. } => match direction {
                TransposeDirection::HorizontalToVertical => Mnemonic {
                    prefix: "bbop_trsp_h2v",
                    suffix: "",
                },
                TransposeDirection::VerticalToHorizontal => Mnemonic {
                    prefix: "bbop_trsp_v2h",
                    suffix: "",
                },
            },
            BbopInstruction::Op { op, .. } => Mnemonic {
                prefix: "bbop_",
                suffix: op.name(),
            },
            BbopInstruction::Init { .. } => Mnemonic {
                prefix: "bbop_init",
                suffix: "",
            },
        }
    }
}

impl fmt::Display for BbopInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.mnemonic().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_handle(width: usize) -> SimdVector {
        SimdVector::new(1, 0, width, 64)
    }

    #[test]
    fn mnemonics_follow_operation_names() {
        let instr = BbopInstruction::Op {
            op: Operation::Add,
            dst: vec_handle(8),
            src_a: vec_handle(8),
            src_b: Some(vec_handle(8)),
            pred: None,
        };
        assert_eq!(instr.mnemonic(), "bbop_addition");
        assert_eq!(instr.to_string(), "bbop_addition");
        let trsp = BbopInstruction::Transpose {
            vector: vec_handle(8),
            direction: TransposeDirection::HorizontalToVertical,
        };
        assert_eq!(trsp.mnemonic(), "bbop_trsp_h2v");
        let init = BbopInstruction::Init {
            dst: vec_handle(8),
            value: 3,
        };
        assert_eq!(init.mnemonic(), "bbop_init");
        assert_eq!(init.to_string(), "bbop_init");
        // The adapter compares against full mnemonics only, not prefixes or extensions.
        assert_ne!(instr.mnemonic(), "bbop_");
        assert_ne!(init.mnemonic(), "bbop_init_extra");
        assert_ne!(init.mnemonic(), "bbop");
    }
}
