//! Analytic performance model for the throughput and energy-efficiency figures.
//!
//! The paper's throughput and energy figures are derived from the μProgram command counts,
//! DDR timing and per-command energy, scaled by the amount of subarray- and bank-level
//! parallelism each design point enables. This module computes exactly those numbers without
//! functionally executing the (65,536-lane) μPrograms, so figure generation is fast; the
//! functional correctness of the same μPrograms is established separately by the test suite.

use simdram_logic::Operation;
use simdram_uprog::{build_program, Target};

use crate::config::SimdramConfig;

/// The canonical DDR4-2400 timing constants, re-exported from
/// [`simdram_dram::timing::ddr4`].
///
/// This is the **single source of truth** for tRAS/tWR and friends: the functional
/// simulator's [`simdram_dram::DramTiming`] defaults are built from these constants, and
/// the analytic model below consumes the same `DramTiming` through the machine
/// configuration, so the two layers cannot drift apart.
pub use simdram_dram::timing::ddr4;

/// One performance point: an (operation, width, platform configuration) triple evaluated
/// for throughput and energy.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// Latency of one μProgram execution (one batch of `lanes` elements), in nanoseconds.
    pub latency_ns: f64,
    /// Number of elements processed per μProgram execution.
    pub lanes: usize,
    /// Sustained throughput in giga-operations per second.
    pub throughput_gops: f64,
    /// Average DRAM energy per element, in nanojoules.
    pub energy_per_element_nj: f64,
    /// Energy efficiency in giga-operations per second per watt.
    pub gops_per_watt: f64,
    /// DRAM commands issued per μProgram (per subarray).
    pub commands: usize,
}

/// Evaluates the processing-using-DRAM performance of `op` at `width` bits for the given
/// machine configuration and μProgram target (SIMDRAM or the Ambit baseline).
pub fn pud_performance(
    target: Target,
    op: Operation,
    width: usize,
    config: &SimdramConfig,
) -> PerfPoint {
    let program = build_program(target, op, width, config.codegen);
    let timing = &config.dram.timing;
    let energy = &config.dram.energy;

    let lanes = config.total_lanes();
    let subarrays = config.compute_banks * config.compute_subarrays_per_bank;
    let latency_ns = program.latency_ns(timing);
    let energy_total_nj = program.energy_nj(energy) * subarrays as f64;

    let throughput_gops = lanes as f64 / latency_ns; // elements per ns == GOPS
    let energy_per_element_nj = energy_total_nj / lanes as f64;
    let power_w = energy_total_nj / latency_ns;
    let gops_per_watt = if power_w > 0.0 {
        throughput_gops / power_w
    } else {
        0.0
    };

    PerfPoint {
        latency_ns,
        lanes,
        throughput_gops,
        energy_per_element_nj,
        gops_per_watt,
        commands: program.command_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_bank_count() {
        let one = pud_performance(
            Target::Simdram,
            Operation::Add,
            32,
            &SimdramConfig::paper_banks(1),
        );
        let sixteen = pud_performance(
            Target::Simdram,
            Operation::Add,
            32,
            &SimdramConfig::paper_banks(16),
        );
        assert!((sixteen.throughput_gops / one.throughput_gops - 16.0).abs() < 1e-6);
        // Energy per element and efficiency are bank-count independent.
        assert!((sixteen.energy_per_element_nj - one.energy_per_element_nj).abs() < 1e-9);
        assert!((sixteen.gops_per_watt - one.gops_per_watt).abs() < 1e-6);
    }

    #[test]
    fn simdram_outperforms_ambit_on_arithmetic() {
        let cfg = SimdramConfig::paper_banks(16);
        for op in [
            Operation::Add,
            Operation::Sub,
            Operation::Mul,
            Operation::BitCount,
        ] {
            let simdram = pud_performance(Target::Simdram, op, 32, &cfg);
            let ambit = pud_performance(Target::Ambit, op, 32, &cfg);
            assert!(
                simdram.throughput_gops > ambit.throughput_gops,
                "{op}: SIMDRAM {} GOPS <= Ambit {} GOPS",
                simdram.throughput_gops,
                ambit.throughput_gops
            );
            assert!(simdram.gops_per_watt > ambit.gops_per_watt);
        }
    }

    #[test]
    fn wider_operands_are_slower() {
        let cfg = SimdramConfig::paper_banks(16);
        let w8 = pud_performance(Target::Simdram, Operation::Add, 8, &cfg);
        let w64 = pud_performance(Target::Simdram, Operation::Add, 64, &cfg);
        assert!(w8.throughput_gops > w64.throughput_gops);
        assert!(w8.energy_per_element_nj < w64.energy_per_element_nj);
    }

    #[test]
    fn analytic_model_and_functional_timing_share_one_constant_set() {
        // The re-exported ddr4 constants ARE the values inside the default DramTiming
        // the analytic model consumes; a drift here would silently skew every figure.
        let cfg = SimdramConfig::default();
        assert_eq!(cfg.dram.timing.t_ras_ns, ddr4::T_RAS_NS);
        assert_eq!(cfg.dram.timing.t_wr_ns, ddr4::T_WR_NS);
        assert_eq!(cfg.dram.timing.t_rp_ns, ddr4::T_RP_NS);
        assert_eq!(cfg.dram.timing.t_ck_ns, ddr4::T_CK_NS);
    }

    #[test]
    fn headline_addition_throughput_is_in_the_expected_range() {
        // SIMDRAM:16 banks, 32-bit addition — the paper reports tens of GOPS for this point.
        let perf = pud_performance(
            Target::Simdram,
            Operation::Add,
            32,
            &SimdramConfig::paper_banks(16),
        );
        assert!(
            perf.throughput_gops > 10.0 && perf.throughput_gops < 10_000.0,
            "unexpected throughput {}",
            perf.throughput_gops
        );
    }
}
