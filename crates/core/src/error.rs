//! Error type for the SIMDRAM framework layer.

use std::fmt;

use crate::guard::FaultError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the SIMDRAM machine, allocator, control unit or transposition unit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The DRAM substrate reported an error.
    Dram(simdram_dram::DramError),
    /// The μProgram layer reported an error.
    Uprog(simdram_uprog::UprogError),
    /// The allocator could not satisfy a request (out of rows or capacity).
    Allocation(String),
    /// Operand shapes (width, element count, predicate) do not match the operation.
    Shape(String),
    /// A vector handle refers to memory that has been freed or belongs to another machine.
    InvalidHandle(String),
    /// A broadcast spans more compute subarrays than the configuration provides.
    ///
    /// Raised when mapping a vector's chunks onto `(bank, subarray)` coordinates would
    /// walk past `compute_banks × compute_subarrays_per_bank`; the typed fields let
    /// callers distinguish this capacity limit from generic allocation failures.
    SubarrayOverflow {
        /// Number of subarrays the broadcast needs.
        needed: usize,
        /// Number of compute subarrays the configuration provides.
        available: usize,
    },
    /// A guarded chunk exhausted its retry budget: its redundant executions kept
    /// disagreeing, so the result could not be trusted (see [`crate::GuardMode`]).
    Fault(FaultError),
    /// A `SIMDRAM_*` environment override was set but malformed (see
    /// [`crate::SimdramConfig::with_env_overrides`]). A typo must surface as an error,
    /// never as a silent fall-back to the default.
    Config(simdram_dram::EnvOverrideError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dram(e) => write!(f, "DRAM substrate error: {e}"),
            CoreError::Uprog(e) => write!(f, "μProgram error: {e}"),
            CoreError::Allocation(msg) => write!(f, "allocation failure: {msg}"),
            CoreError::Shape(msg) => write!(f, "operand shape mismatch: {msg}"),
            CoreError::InvalidHandle(msg) => write!(f, "invalid vector handle: {msg}"),
            CoreError::SubarrayOverflow { needed, available } => write!(
                f,
                "broadcast needs {needed} compute subarrays but the configuration provides {available}"
            ),
            CoreError::Fault(e) => write!(f, "unrecovered computation fault: {e}"),
            CoreError::Config(e) => write!(f, "configuration error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dram(e) => Some(e),
            CoreError::Uprog(e) => Some(e),
            CoreError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<simdram_dram::EnvOverrideError> for CoreError {
    fn from(e: simdram_dram::EnvOverrideError) -> Self {
        CoreError::Config(e)
    }
}

impl From<simdram_dram::DramError> for CoreError {
    fn from(e: simdram_dram::DramError) -> Self {
        CoreError::Dram(e)
    }
}

impl From<simdram_uprog::UprogError> for CoreError {
    fn from(e: simdram_uprog::UprogError) -> Self {
        CoreError::Uprog(e)
    }
}
