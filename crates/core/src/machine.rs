//! The end-to-end SIMDRAM machine: allocation, layout conversion and bbop execution.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use simdram_dram::stats::DeviceStats;
use simdram_dram::{BGroupRow, BitRow, CommandCosts, CommandTrace, DramDevice, RowAddr, Subarray};
use simdram_logic::Operation;
use simdram_uprog::{
    execute as execute_uprog, CompiledProgram, DispatchEntry, MicroProgram, RowBinding,
};

use crate::config::SimdramConfig;
use crate::control_unit::ControlUnit;
use crate::error::{CoreError, Result};
use crate::estimate::{BroadcastEstimate, MachineEstimate, TraceEstimator};
use crate::executor::{BroadcastExecutor, ExecutionPolicy, FunctionalMode};
use crate::guard::{FaultError, FaultLog, GuardMode, RETRY_BACKOFF_NS};
use crate::isa::BbopInstruction;
use crate::layout::{RowAllocator, SimdVector};
use crate::plan::{Plan, PlanBuilder, PlanExecution, Storage};
use crate::report::{ExecutionReport, MachineStats, PlanReport};
use crate::timing_backend::{TimingBackend, TimingBackendKind};
use crate::transpose::{horizontal_to_vertical, vertical_to_horizontal, TranspositionUnit};

/// One resolved step of a fused broadcast batch (see [`SimdramMachine::run_plan`]).
enum RunStep {
    /// Constant broadcast: one AAP from `C0`/`C1` per destination bit-row.
    Init {
        base_row: usize,
        width: usize,
        value: u64,
    },
    /// RowClone duplicate: one AAP per bit-row from a source extent.
    Copy {
        src_base: usize,
        dst_base: usize,
        width: usize,
    },
    /// One μProgram execution under a concrete row binding. When the machine runs in
    /// [`FunctionalMode::Compiled`], `compiled` carries the cached word-level kernel and
    /// the interpreter is bypassed entirely.
    Exec {
        program: MicroProgram,
        compiled: Option<Arc<CompiledProgram>>,
        binding: RowBinding,
        node: usize,
    },
}

/// Executes one batch's resolved steps back-to-back on a single subarray, returning one
/// self-contained local [`CommandTrace`] per step (the fused-broadcast kernel body shared
/// by [`SimdramMachine::run_plan`] and [`SimdramMachine::run_plans_on`]).
///
/// `with_history` governs per-command history retention of the *compiled* μProgram steps
/// (see [`FunctionalMode::trace_with_history`]); interpreted steps always record full
/// history. Either way the history is drained before returning — only the local traces
/// (whose aggregates are bit-identical between modes) leave the kernel.
///
/// Alongside the per-step traces, returns the number of fault-model bit flips injected
/// during each step (always 0 with [`simdram_dram::FaultModel::Off`]), so per-step
/// reports can attribute corruption exactly.
fn run_steps(
    steps: &[RunStep],
    sa: &mut Subarray,
    with_history: bool,
) -> Result<(Vec<CommandTrace>, Vec<u64>)> {
    let mut per_step = Vec::with_capacity(steps.len());
    let mut injected = Vec::with_capacity(steps.len());
    let mut injected_before = sa.faults_injected();
    for step in steps {
        match step {
            RunStep::Init {
                base_row,
                width,
                value,
            } => {
                let mark = sa.trace_mark();
                for bit in 0..*width {
                    let src = if (value >> bit) & 1 == 1 {
                        RowAddr::BGroup(BGroupRow::C1)
                    } else {
                        RowAddr::BGroup(BGroupRow::C0)
                    };
                    sa.aap(src, RowAddr::Data(base_row + bit))?;
                }
                per_step.push(sa.trace_since(mark));
            }
            RunStep::Copy {
                src_base,
                dst_base,
                width,
            } => {
                let mark = sa.trace_mark();
                for bit in 0..*width {
                    sa.aap(RowAddr::Data(src_base + bit), RowAddr::Data(dst_base + bit))?;
                }
                per_step.push(sa.trace_since(mark));
            }
            RunStep::Exec {
                program,
                compiled,
                binding,
                ..
            } => match compiled {
                Some(kernel) => {
                    per_step.push(
                        kernel
                            .run(sa, binding, with_history)
                            .map_err(CoreError::from)?,
                    );
                }
                None => {
                    per_step.push(execute_uprog(program, sa, binding).map_err(CoreError::from)?);
                }
            },
        }
        let now = sa.faults_injected();
        injected.push(now - injected_before);
        injected_before = now;
    }
    sa.drain_trace();
    Ok((per_step, injected))
}

/// Runs one chunk's batch under the machine's [`GuardMode`].
///
/// With [`GuardMode::Off`] this is exactly [`run_steps`] (plus a retry count of 0).
/// Under [`GuardMode::Redundant`] each attempt snapshots the data rows, runs the batch
/// **twice** from the same snapshot and compares the resulting data rows: agreement
/// accepts the second run's state, disagreement rolls back and retries. Every attempt's
/// commands are merged into the returned per-step traces — detection is paid for in
/// modeled time and energy, roughly 2× per attempt. A chunk that exhausts `max_retries`
/// is rolled back to its pre-batch snapshot and fails with [`CoreError::Fault`].
///
/// Retries advance the per-subarray fault stream (the stream key is a persistent
/// counter), so *transient* faults draw fresh randomness and converge, while the
/// persistent weak cells of [`simdram_dram::FaultModel::RowMap`] keep disagreeing and
/// drive quarantine.
fn run_steps_guarded(
    steps: &[RunStep],
    sa: &mut Subarray,
    with_history: bool,
    guard: GuardMode,
    chunk: usize,
    coord: (usize, usize),
) -> Result<(Vec<CommandTrace>, Vec<u64>, u32)> {
    let GuardMode::Redundant { max_retries } = guard else {
        let (traces, injected) = run_steps(steps, sa, with_history)?;
        return Ok((traces, injected, 0));
    };
    let baseline = sa.clone_data_rows();
    let mut merged_traces: Vec<CommandTrace> = Vec::new();
    let mut merged_injected: Vec<u64> = vec![0; steps.len()];
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let (first_traces, first_injected) = run_steps(steps, sa, with_history)?;
        let first = sa.clone_data_rows();
        sa.restore_data_rows(&baseline);
        let (second_traces, second_injected) = run_steps(steps, sa, with_history)?;
        if merged_traces.is_empty() {
            merged_traces = first_traces;
        } else {
            for (merged, trace) in merged_traces.iter_mut().zip(&first_traces) {
                merged.merge(trace);
            }
        }
        for (merged, trace) in merged_traces.iter_mut().zip(&second_traces) {
            merged.merge(trace);
        }
        for ((merged, a), b) in merged_injected
            .iter_mut()
            .zip(&first_injected)
            .zip(&second_injected)
        {
            *merged += a + b;
        }
        if sa.data_rows_equal(&first) {
            return Ok((merged_traces, merged_injected, attempts - 1));
        }
        if attempts > max_retries {
            let second = sa.clone_data_rows();
            let mismatched_rows = first.iter().zip(&second).filter(|(a, b)| a != b).count();
            sa.restore_data_rows(&baseline);
            sa.drain_trace();
            return Err(CoreError::Fault(FaultError {
                bank: coord.0,
                subarray: coord.1,
                chunk,
                attempts,
                mismatched_rows,
            }));
        }
        sa.restore_data_rows(&baseline);
    }
}

/// Consecutive guarded failures after which a chunk is quarantined (excluded from
/// future placements; see [`SimdramMachine::quarantined_chunks`]).
const QUARANTINE_THRESHOLD: u32 = 2;

/// A lease on a contiguous range of compute subarrays ("chunks"), granted by
/// [`SimdramMachine::reserve_subarrays`].
///
/// Reservations are the placement axis of the serving model: rows stay globally
/// allocated (a row extent is valid at the same offset in *every* compute subarray, so a
/// compiled [`Plan`] runs unmodified on any placement), while reservations carve the
/// subarray dimension into disjoint sets. Plans placed on disjoint reservations touch
/// disjoint subarrays, which is what lets [`SimdramMachine::run_plans_on`] fuse batches
/// from independent plans into one broadcast dispatch.
///
/// The handle does not release itself on drop — return it through
/// [`SimdramMachine::release_subarrays`] when the placement is no longer needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    id: u64,
    offset: usize,
    chunks: usize,
}

impl Reservation {
    /// Unique identifier of the reservation within its machine.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// First compute chunk (linear subarray index) of the reserved range.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of consecutive compute chunks reserved.
    pub fn chunks(&self) -> usize {
        self.chunks
    }
}

/// A complete SIMDRAM system: DRAM device, memory-controller control unit, transposition
/// unit and the memory manager for vertically laid-out objects.
///
/// This is the type user programs (and the application kernels in `simdram-apps`) interact
/// with. The same machine can be configured to drive the Ambit baseline by selecting
/// [`simdram_uprog::Target::Ambit`] in its [`SimdramConfig`].
///
/// # Examples
///
/// ```
/// use simdram_core::{SimdramConfig, SimdramMachine};
/// use simdram_logic::Operation;
///
/// let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;
/// let a = machine.alloc_and_write(8, &[10, 20, 30, 250])?;
/// let b = machine.alloc_and_write(8, &[5, 30, 3, 10])?;
/// let (sum, report) = machine.binary(Operation::Add, &a, &b)?;
/// assert_eq!(machine.read(&sum)?, vec![15, 50, 33, 4]); // 250 + 10 wraps at 8 bits
/// assert!(report.throughput_gops() > 0.0);
/// # Ok::<(), simdram_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct SimdramMachine {
    config: SimdramConfig,
    device: DramDevice,
    allocator: RowAllocator,
    control: ControlUnit,
    transposer: TranspositionUnit,
    executor: BroadcastExecutor,
    /// Command cost templates derived once from the DRAM config — the single source the
    /// subarrays and the μProgram compiler both charge from, keeping compiled execution
    /// bit-identical to interpreted accounting.
    costs: CommandCosts,
    estimator: TraceEstimator,
    /// The selected timing backend ([`SimdramConfig::timing_backend`]): every broadcast's
    /// traces are folded through it into the cumulative [`MachineEstimate`]. The analytic
    /// numbers it produces are bit-identical across backends; the bank-state backend
    /// additionally attaches its replay to each estimate.
    backend: Box<dyn TimingBackend>,
    stats: MachineStats,
    functional_stats: DeviceStats,
    machine_estimate: MachineEstimate,
    next_id: u64,
    /// Extent allocator over the compute chunks (linear subarray indices), backing
    /// [`SimdramMachine::reserve_subarrays`].
    chunk_allocator: RowAllocator,
    /// Active reservations: id → (offset, chunks). Used to validate handles.
    reservations: HashMap<u64, (usize, usize)>,
    next_reservation_id: u64,
    /// Cumulative fault detection/recovery accounting (see [`SimdramMachine::fault_log`]).
    fault_log: FaultLog,
    /// Guarded-failure count per compute chunk, feeding the quarantine decision.
    failure_counts: HashMap<usize, u32>,
    /// Compute chunks removed from placement circulation after repeated failures.
    quarantined: BTreeSet<usize>,
}

impl SimdramMachine {
    /// Builds a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: SimdramConfig) -> Result<Self> {
        config.validate()?;
        let mut device = DramDevice::new(config.dram.clone())?;
        device.install_faults(&config.faults);
        let allocator = RowAllocator::new(config.allocatable_rows());
        let control = ControlUnit::new(config.target, config.codegen);
        let transposer =
            TranspositionUnit::new(config.dram.timing.clone(), config.dram.energy.clone());
        let executor = BroadcastExecutor::new(config.execution);
        let costs = CommandCosts::new(&config.dram);
        let estimator = TraceEstimator::new(config.dram.timing.clone(), config.dram.energy.clone());
        let backend = config
            .timing_backend
            .build(config.dram.timing.clone(), config.dram.energy.clone());
        let chunk_allocator =
            RowAllocator::new(config.compute_banks * config.compute_subarrays_per_bank);
        Ok(SimdramMachine {
            config,
            device,
            allocator,
            control,
            transposer,
            executor,
            costs,
            estimator,
            backend,
            stats: MachineStats::default(),
            functional_stats: DeviceStats::new(),
            machine_estimate: MachineEstimate::new(),
            next_id: 0,
            chunk_allocator,
            reservations: HashMap::new(),
            next_reservation_id: 0,
            fault_log: FaultLog::default(),
            failure_counts: HashMap::new(),
            quarantined: BTreeSet::new(),
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SimdramConfig {
        &self.config
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Cumulative *functional* DRAM command statistics: every command actually issued by
    /// broadcast execution (μPrograms, constant broadcasts, RowClone copies), merged from
    /// the per-chunk [`CommandTrace`]s in deterministic chunk order.
    ///
    /// Because chunk kernels are pure and the merge order is fixed, this is bit-identical
    /// between [`ExecutionPolicy::Sequential`] and [`ExecutionPolicy::Threaded`] runs.
    pub fn device_stats(&self) -> &DeviceStats {
        &self.functional_stats
    }

    /// Cumulative *trace-driven* timing/energy estimate: every broadcast's command
    /// traces folded through the estimation engine ([`TraceEstimator`]) under the
    /// hardware's concurrency semantics — per-broadcast latency is the max over the
    /// participating subarrays (they execute in lock-step), energy is the sum, and
    /// successive broadcasts serialize.
    ///
    /// Like [`SimdramMachine::device_stats`], this is bit-identical between
    /// [`ExecutionPolicy::Sequential`] and [`ExecutionPolicy::Threaded`] runs.
    pub fn estimate(&self) -> &MachineEstimate {
        &self.machine_estimate
    }

    /// Clears the functional command accounting: the machine-level [`DeviceStats`], the
    /// cumulative [`MachineEstimate`] and every subarray's cumulative command trace.
    ///
    /// Long-running drivers (benchmarks, soak tests) call this between measurements.
    /// Note that machine memory is bounded even without calling this: every broadcast
    /// kernel drains the per-command history its subarray accumulated (the absorbed
    /// local traces carry it), keeping only O(1) aggregate counters per subarray.
    pub fn reset_device_stats(&mut self) {
        self.device.reset_stats();
        self.functional_stats = DeviceStats::new();
        self.machine_estimate = MachineEstimate::new();
    }

    /// The active broadcast execution policy.
    pub fn execution_policy(&self) -> ExecutionPolicy {
        self.executor.policy()
    }

    /// Switches the broadcast execution policy at runtime (results are unaffected; only
    /// simulation wall-clock changes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for a threaded policy with `max_threads == 0`.
    pub fn set_execution_policy(&mut self, policy: ExecutionPolicy) -> Result<()> {
        policy.validate()?;
        self.config.execution = policy;
        self.executor = BroadcastExecutor::new(policy);
        Ok(())
    }

    /// The active functional-execution mode (interpreted vs compiled).
    pub fn functional_mode(&self) -> FunctionalMode {
        self.config.functional
    }

    /// The active timing backend (analytic vs bank-state).
    pub fn timing_backend(&self) -> TimingBackendKind {
        self.config.timing_backend
    }

    /// Switches the timing backend at runtime. Functional results and the analytic
    /// accounting are unaffected — only whether subsequent broadcasts carry a
    /// bank-state replay (and retain the per-command history it classifies) changes.
    pub fn set_timing_backend(&mut self, kind: TimingBackendKind) {
        self.config.timing_backend = kind;
        self.backend = kind.build(
            self.config.dram.timing.clone(),
            self.config.dram.energy.clone(),
        );
    }

    /// Switches the functional-execution mode at runtime. Like
    /// [`SimdramMachine::set_execution_policy`], results and aggregate accounting are
    /// unaffected; only simulation wall-clock and per-command history retention change.
    /// Kernels already compiled stay cached.
    pub fn set_functional_mode(&mut self, mode: FunctionalMode) {
        self.config.functional = mode;
    }

    /// Number of SIMD lanes (elements processed per μProgram broadcast).
    pub fn lanes(&self) -> usize {
        self.config.total_lanes()
    }

    /// Number of elements each individual subarray contributes (one per bitline).
    pub fn lanes_per_subarray(&self) -> usize {
        self.config.dram.columns_per_row
    }

    /// Total number of compute chunks (subarrays) the machine can place work on
    /// (`compute_banks × compute_subarrays_per_bank`).
    pub fn compute_chunks(&self) -> usize {
        self.config.compute_banks * self.config.compute_subarrays_per_bank
    }

    /// Number of compute chunks not currently held by a [`Reservation`]. Quarantined
    /// chunks are permanently out of this pool — repeated guarded failures shrink the
    /// machine's placeable capacity, which is how a serving layer observes degradation.
    pub fn free_chunks(&self) -> usize {
        self.chunk_allocator.free_rows()
    }

    /// Cumulative fault injection/detection/recovery accounting. The injected count is
    /// read live from the device, so it also covers unguarded execution.
    pub fn fault_log(&self) -> FaultLog {
        let mut log = self.fault_log;
        log.injected = self.device.injected_faults();
        log
    }

    /// Compute chunks quarantined after repeated guarded failures, in ascending order.
    /// Quarantined chunks are never handed out by
    /// [`SimdramMachine::reserve_subarrays`] again.
    pub fn quarantined_chunks(&self) -> Vec<usize> {
        self.quarantined.iter().copied().collect()
    }

    /// Total bit flips the fault model has injected across the device (0 with
    /// [`simdram_dram::FaultModel::Off`]).
    pub fn injected_faults(&self) -> u64 {
        self.device.injected_faults()
    }

    /// Records one exhausted-retries failure of `chunk` and quarantines it once it
    /// crosses `QUARANTINE_THRESHOLD`: the chunk is carved out of the free pool now
    /// if it is free, or kept back by [`SimdramMachine::release_subarrays`] when the
    /// reservation holding it is returned.
    fn note_chunk_failure(&mut self, chunk: usize) {
        let count = self.failure_counts.entry(chunk).or_insert(0);
        *count += 1;
        if *count >= QUARANTINE_THRESHOLD && self.quarantined.insert(chunk) {
            self.chunk_allocator.reserve_at(chunk, 1);
        }
    }

    /// Reserves `chunks` consecutive compute subarrays, returning a placement handle.
    ///
    /// Reservations granted while others are outstanding are guaranteed disjoint, which
    /// is the isolation contract behind [`SimdramMachine::run_plans_on`]. Plain
    /// (non-placed) machine calls such as [`SimdramMachine::run_plan`] always use chunks
    /// starting at 0 and do not consult the reservation table — a serving layer that
    /// hands out reservations should route all placed work through the `*_to`/`*_on`
    /// entry points.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for a zero-chunk request and
    /// [`CoreError::SubarrayOverflow`] when no contiguous range of `chunks` free
    /// subarrays exists.
    pub fn reserve_subarrays(&mut self, chunks: usize) -> Result<Reservation> {
        if chunks == 0 {
            return Err(CoreError::Shape(
                "cannot reserve zero compute subarrays".into(),
            ));
        }
        let free = self.free_chunks();
        let offset =
            self.chunk_allocator
                .alloc(chunks)
                .map_err(|_| CoreError::SubarrayOverflow {
                    needed: chunks,
                    available: free,
                })?;
        let id = self.next_reservation_id;
        self.next_reservation_id += 1;
        self.reservations.insert(id, (offset, chunks));
        Ok(Reservation { id, offset, chunks })
    }

    /// Returns a reservation's subarrays to the free pool — except any chunk that was
    /// quarantined while the reservation held it, which stays out of circulation (the
    /// free-list coalescing keeps the surviving neighbours allocatable).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidHandle`] for an unknown (already released or foreign)
    /// reservation.
    pub fn release_subarrays(&mut self, reservation: Reservation) -> Result<()> {
        match self.reservations.remove(&reservation.id) {
            Some((offset, chunks))
                if offset == reservation.offset && chunks == reservation.chunks =>
            {
                for chunk in offset..offset + chunks {
                    if !self.quarantined.contains(&chunk) {
                        self.chunk_allocator.free(chunk, 1);
                    }
                }
                Ok(())
            }
            Some(state) => {
                self.reservations.insert(reservation.id, state);
                Err(CoreError::InvalidHandle(
                    "reservation handle does not match the machine's records".into(),
                ))
            }
            None => Err(CoreError::InvalidHandle(
                "unknown or already released reservation".into(),
            )),
        }
    }

    /// Checks that `reservation` is active on this machine and matches its records.
    fn validate_reservation(&self, reservation: &Reservation) -> Result<()> {
        match self.reservations.get(&reservation.id) {
            Some(&(offset, chunks))
                if offset == reservation.offset && chunks == reservation.chunks =>
            {
                Ok(())
            }
            _ => Err(CoreError::InvalidHandle(
                "unknown or already released reservation".into(),
            )),
        }
    }

    /// Allocates a vertically laid-out vector of `len` elements of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for invalid widths, or [`CoreError::Allocation`] when
    /// the vector does not fit in the compute subarrays.
    pub fn alloc(&mut self, width: usize, len: usize) -> Result<SimdVector> {
        if width == 0 || width > 64 {
            return Err(CoreError::Shape(format!(
                "element width must be in 1..=64, got {width}"
            )));
        }
        if len == 0 {
            return Err(CoreError::Shape("cannot allocate an empty vector".into()));
        }
        if len > self.lanes() {
            return Err(CoreError::Allocation(format!(
                "vector of {len} elements exceeds the machine's {} SIMD lanes",
                self.lanes()
            )));
        }
        let base_row = self.allocator.alloc(width)?;
        let id = self.next_id;
        self.next_id += 1;
        Ok(SimdVector::new(id, base_row, width, len))
    }

    /// Frees a vector's rows.
    pub fn free(&mut self, vector: SimdVector) {
        self.allocator.free(vector.base_row(), vector.width());
    }

    /// Allocates a vector and writes `values` into it (transposing to the vertical layout).
    ///
    /// # Errors
    ///
    /// Propagates allocation and shape errors from [`SimdramMachine::alloc`] and
    /// [`SimdramMachine::write`].
    pub fn alloc_and_write(&mut self, width: usize, values: &[u64]) -> Result<SimdVector> {
        let vector = self.alloc(width, values.len())?;
        self.write(&vector, values)?;
        Ok(vector)
    }

    /// Writes host (horizontal) data into a vector through the transposition unit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if more values than the vector's length are supplied.
    pub fn write(&mut self, vector: &SimdVector, values: &[u64]) -> Result<()> {
        self.write_at(0, vector, values)
    }

    /// Writes host data into `vector` as resident on a reserved placement: the vector's
    /// rows inside `placement`'s subarrays, starting at its first chunk.
    ///
    /// This is the data-shipping half of the serving model — a plan later executed with
    /// [`SimdramMachine::run_plan_on`] on the same placement reads exactly these
    /// subarrays.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidHandle`] for a released reservation,
    /// [`CoreError::SubarrayOverflow`] when the values span more chunks than reserved,
    /// and the same shape errors as [`SimdramMachine::write`].
    pub fn write_to(
        &mut self,
        placement: &Reservation,
        vector: &SimdVector,
        values: &[u64],
    ) -> Result<()> {
        self.validate_reservation(placement)?;
        let needed = self.subarrays_for(values.len());
        if needed > placement.chunks() {
            return Err(CoreError::SubarrayOverflow {
                needed,
                available: placement.chunks(),
            });
        }
        self.write_at(placement.offset(), vector, values)
    }

    /// Offset-aware body of [`SimdramMachine::write`]/[`SimdramMachine::write_to`]:
    /// chunk `i` of `values` lands in compute chunk `chunk_offset + i`.
    fn write_at(&mut self, chunk_offset: usize, vector: &SimdVector, values: &[u64]) -> Result<()> {
        if values.len() > vector.len() {
            return Err(CoreError::Shape(format!(
                "writing {} values into a vector of {} elements",
                values.len(),
                vector.len()
            )));
        }
        let columns = self.lanes_per_subarray();
        let width = vector.width();
        let base_row = vector.base_row();
        // The layout conversion is per-chunk and pure, so each kernel converts its own
        // slice of `values` in place: under the threaded policy the dominant
        // O(lanes × width) transpose cost parallelizes along with the pokes, and no full
        // converted copy of the data is ever materialized.
        let coords = self.compute_coords_at(chunk_offset, values.len().div_ceil(columns))?;
        self.executor
            .broadcast(&mut self.device, &coords, |chunk, sa| {
                let start = chunk * columns;
                let end = (start + columns).min(values.len());
                let slices = horizontal_to_vertical(&values[start..end], width, columns);
                for (bit, slice) in slices.iter().enumerate() {
                    let row = BitRow::from_words(slice, columns);
                    sa.poke(RowAddr::Data(base_row + bit), &row)?;
                }
                Ok(())
            })?;
        let latency = self.transposer.latency_ns(values.len(), width);
        let energy = self.transposer.energy_nj(values.len(), width);
        self.stats.record_transpose(latency, energy);
        Ok(())
    }

    /// Writes a boolean predicate vector (1-bit elements).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if the vector is not 1 bit wide.
    pub fn write_bools(&mut self, vector: &SimdVector, values: &[bool]) -> Result<()> {
        if vector.width() != 1 {
            return Err(CoreError::Shape(format!(
                "predicate vectors must be 1 bit wide, got {}",
                vector.width()
            )));
        }
        let as_words: Vec<u64> = values.iter().map(|&b| u64::from(b)).collect();
        self.write(vector, &as_words)
    }

    /// Reads a vector back into host (horizontal) layout through the transposition unit.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector's rows lie outside the device (stale handle).
    pub fn read(&mut self, vector: &SimdVector) -> Result<Vec<u64>> {
        self.read_at(0, vector)
    }

    /// Reads `vector` back from a reserved placement (the inverse of
    /// [`SimdramMachine::write_to`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidHandle`] for a released reservation,
    /// [`CoreError::SubarrayOverflow`] when the vector spans more chunks than reserved,
    /// and the same errors as [`SimdramMachine::read`].
    pub fn read_from(&mut self, placement: &Reservation, vector: &SimdVector) -> Result<Vec<u64>> {
        self.validate_reservation(placement)?;
        let needed = self.subarrays_for(vector.len());
        if needed > placement.chunks() {
            return Err(CoreError::SubarrayOverflow {
                needed,
                available: placement.chunks(),
            });
        }
        self.read_at(placement.offset(), vector)
    }

    /// Offset-aware body of [`SimdramMachine::read`]/[`SimdramMachine::read_from`].
    fn read_at(&mut self, chunk_offset: usize, vector: &SimdVector) -> Result<Vec<u64>> {
        let columns = self.lanes_per_subarray();
        let width = vector.width();
        let base_row = vector.base_row();
        let len = vector.len();
        let coords = self.compute_coords_at(chunk_offset, self.subarrays_for(len))?;
        let chunk_values = self
            .executor
            .broadcast(&mut self.device, &coords, |chunk, sa| {
                let lanes = columns.min(len - chunk * columns);
                // Borrow each row's packed words directly — the inspect path never
                // clones a row.
                let mut slices: Vec<&[u64]> = Vec::with_capacity(width);
                for bit in 0..width {
                    slices.push(sa.row(RowAddr::Data(base_row + bit))?.words());
                }
                Ok(vertical_to_horizontal(&slices, width, lanes))
            })?;
        let mut values = Vec::with_capacity(len);
        for chunk in chunk_values {
            values.extend(chunk);
        }
        let latency = self.transposer.latency_ns(len, width);
        let energy = self.transposer.energy_nj(len, width);
        self.stats.record_transpose(latency, energy);
        Ok(values)
    }

    /// Executes one bbop instruction.
    ///
    /// # Errors
    ///
    /// Propagates shape, allocation and substrate errors.
    pub fn issue(&mut self, instruction: &BbopInstruction) -> Result<Option<ExecutionReport>> {
        match *instruction {
            BbopInstruction::Op {
                op,
                dst,
                src_a,
                src_b,
                pred,
            } => self
                .execute(op, &dst, &src_a, src_b.as_ref(), pred.as_ref())
                .map(Some),
            BbopInstruction::Transpose { vector, direction } => {
                let latency = self.transposer.latency_ns(vector.len(), vector.width());
                let energy = self.transposer.energy_nj(vector.len(), vector.width());
                self.stats.record_transpose(latency, energy);
                let _ = direction;
                Ok(None)
            }
            BbopInstruction::Init { dst, value } => {
                self.init(&dst, value)?;
                Ok(None)
            }
        }
    }

    /// Fills every element of `vector` with `value`, using row-wide copies from the control
    /// rows (`C0`/`C1`), one AAP per destination bit-row per subarray.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector's rows lie outside the device.
    pub fn init(&mut self, vector: &SimdVector, value: u64) -> Result<()> {
        let coords = self.compute_coords(self.subarrays_for(vector.len()))?;
        let width = vector.width();
        let base_row = vector.base_row();
        let traces = self
            .executor
            .broadcast_traced(&mut self.device, &coords, |_, sa| {
                for bit in 0..width {
                    let src = if (value >> bit) & 1 == 1 {
                        RowAddr::BGroup(BGroupRow::C1)
                    } else {
                        RowAddr::BGroup(BGroupRow::C0)
                    };
                    sa.aap(src, RowAddr::Data(base_row + bit))?;
                }
                Ok(())
            })?;
        self.absorb_chunk_traces(&traces);
        Ok(())
    }

    /// Executes `op` element-wise, writing results into `dst`.
    ///
    /// `src_b` must be supplied for two-operand operations and `pred` (a 1-bit vector) for
    /// predicated operations.
    ///
    /// This is the eager **convenience path**: internally it builds, compiles and runs a
    /// one-node [`Plan`] storing into `dst`. Multi-operation expressions fuse better when
    /// composed with a [`PlanBuilder`] and executed through
    /// [`SimdramMachine::run_plan`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches, [`CoreError::Allocation`] when
    /// the μProgram needs more reserved rows than configured, or a substrate error.
    pub fn execute(
        &mut self,
        op: Operation,
        dst: &SimdVector,
        src_a: &SimdVector,
        src_b: Option<&SimdVector>,
        pred: Option<&SimdVector>,
    ) -> Result<ExecutionReport> {
        let mut builder = PlanBuilder::new();
        let a = builder.input(src_a);
        let b = src_b.map(|v| builder.input(v));
        let p = pred.map(|v| builder.input(v));
        let expr = builder.apply(op, a, b, p)?;
        builder.store(expr, dst)?;
        let plan = builder.compile()?;
        let (_, mut report) = self.run_plan(&plan)?.into_parts();
        Ok(report
            .step_reports
            .pop()
            .expect("a one-node plan produces exactly one step report"))
    }

    /// Convenience: allocates a destination and executes a two-operand operation (sugar
    /// over a one-node [`Plan`], like [`SimdramMachine::execute`]).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SimdramMachine::alloc`] and [`SimdramMachine::execute`].
    pub fn binary(
        &mut self,
        op: Operation,
        a: &SimdVector,
        b: &SimdVector,
    ) -> Result<(SimdVector, ExecutionReport)> {
        let dst = self.alloc(op.output_width(a.width()), a.len())?;
        let report = self.execute(op, &dst, a, Some(b), None)?;
        Ok((dst, report))
    }

    /// Convenience: allocates a destination and executes a single-operand operation
    /// (sugar over a one-node [`Plan`], like [`SimdramMachine::execute`]).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SimdramMachine::alloc`] and [`SimdramMachine::execute`].
    pub fn unary(
        &mut self,
        op: Operation,
        a: &SimdVector,
    ) -> Result<(SimdVector, ExecutionReport)> {
        let dst = self.alloc(op.output_width(a.width()), a.len())?;
        let report = self.execute(op, &dst, a, None, None)?;
        Ok((dst, report))
    }

    /// Copies a vector with in-DRAM RowClone operations (one AAP per bit-row per subarray),
    /// never moving the data over the memory channel.
    ///
    /// This is the bulk-copy primitive the paper inherits from RowClone: initializing or
    /// duplicating operands costs row activations only.
    ///
    /// # Errors
    ///
    /// Propagates allocation and substrate errors.
    pub fn copy(&mut self, src: &SimdVector) -> Result<SimdVector> {
        let dst = self.alloc(src.width(), src.len())?;
        let coords = self.compute_coords(self.subarrays_for(src.len()))?;
        let width = src.width();
        let src_base = src.base_row();
        let dst_base = dst.base_row();
        let traces = self
            .executor
            .broadcast_traced(&mut self.device, &coords, |_, sa| {
                for bit in 0..width {
                    sa.aap(RowAddr::Data(src_base + bit), RowAddr::Data(dst_base + bit))?;
                }
                Ok(())
            })?;
        self.absorb_chunk_traces(&traces);
        Ok(dst)
    }

    /// Returns a *view* of `vector` logically right-shifted by `bits` (dropping its low
    /// bits), without issuing a single DRAM command.
    ///
    /// This implements the paper's observation that explicit in-DRAM shifting is usually
    /// unnecessary: because the layout is vertical, shifting is just re-indexing which rows
    /// a later μProgram reads, i.e. the returned handle simply starts `bits` rows higher.
    /// The view aliases the original rows; do not pass the view to [`SimdramMachine::free`]
    /// — free the original handle when the data is no longer needed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if `bits` is not smaller than the vector's width.
    pub fn shifted_view(&self, vector: &SimdVector, bits: usize) -> Result<SimdVector> {
        if bits >= vector.width() {
            return Err(CoreError::Shape(format!(
                "cannot shift a {}-bit vector right by {bits} bits",
                vector.width()
            )));
        }
        Ok(SimdVector::new(
            vector.id(),
            vector.base_row() + bits,
            vector.width() - bits,
            vector.len(),
        ))
    }

    /// Convenience: predicated select (`pred ? a : b`), SIMDRAM's if-then-else (sugar
    /// over a one-node [`Plan`], like [`SimdramMachine::execute`]).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SimdramMachine::alloc`] and [`SimdramMachine::execute`].
    pub fn select(
        &mut self,
        pred: &SimdVector,
        a: &SimdVector,
        b: &SimdVector,
    ) -> Result<(SimdVector, ExecutionReport)> {
        let dst = self.alloc(a.width(), a.len())?;
        let report = self.execute(Operation::IfElse, &dst, a, Some(b), Some(pred))?;
        Ok((dst, report))
    }

    /// Executes a compiled [`Plan`]: binds it to physical rows, issues every batch as
    /// one **fused broadcast**, and returns the materialized outputs with the
    /// plan-level accounting.
    ///
    /// Each batch's steps run back-to-back inside a single broadcast kernel per
    /// participating subarray, so under [`ExecutionPolicy::Threaded`] the banks crunch
    /// through the whole batch without synchronizing between steps, and the modeled
    /// broadcast count drops below op-by-op issue (see [`PlanReport`]). Per-step
    /// command traces are still merged in `(step, chunk)` order, keeping every number —
    /// results, [`DeviceStats`], [`MachineEstimate`], [`ExecutionReport`]s —
    /// bit-identical between execution policies and with the equivalent eager call
    /// sequence.
    ///
    /// Pooled temporaries are allocated before the first batch and released when the
    /// run finishes (or fails); output vectors are owned by the caller and must be
    /// freed with [`SimdramMachine::free`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Allocation`] when a μProgram needs more reserved rows than
    /// configured or the plan's vectors do not fit, [`CoreError::SubarrayOverflow`] when
    /// a batch needs more subarrays than available, or a substrate error. On error the
    /// machine's row allocator is restored (no rows leak).
    pub fn run_plan(&mut self, plan: &Plan) -> Result<PlanExecution> {
        let mut execs = self.run_plans_at(&[(plan, 0, self.compute_chunks())])?;
        Ok(execs.pop().expect("one plan in, one execution out"))
    }

    /// Executes a compiled [`Plan`] on a reserved placement: every broadcast uses the
    /// reservation's subarrays instead of chunks `0..n`.
    ///
    /// Inputs must be resident on the same placement (written with
    /// [`SimdramMachine::write_to`]); outputs are read back with
    /// [`SimdramMachine::read_from`]. Accounting is identical to
    /// [`SimdramMachine::run_plan`] — placement changes *where* a plan runs, never what
    /// it computes or costs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidHandle`] for a released reservation,
    /// [`CoreError::SubarrayOverflow`] when a batch needs more subarrays than reserved,
    /// plus every [`SimdramMachine::run_plan`] error.
    pub fn run_plan_on(&mut self, plan: &Plan, placement: &Reservation) -> Result<PlanExecution> {
        let mut execs = self.run_plans_on(&[(plan, placement)])?;
        Ok(execs.pop().expect("one plan in, one execution out"))
    }

    /// Executes several independent plans **concurrently**, fusing their broadcast
    /// batches into shared dispatches: the `d`-th batch of every plan runs as ONE
    /// broadcast over the union of the plans' (disjoint) reserved subarrays.
    ///
    /// This is the multi-tenant entry point of the serving layer (`simdram-serve`).
    /// Compared to running the same plans back-to-back it issues
    /// `max(batches)` dispatches instead of `Σ batches`, and each fused dispatch's
    /// modeled busy window is the max over all participating subarrays instead of the
    /// sum of per-plan windows — while every plan's own [`PlanReport`] keeps the same
    /// per-plan accounting (its own chunks, its own steps) it would have solo, and
    /// results stay bit-identical to sequential execution under either
    /// [`ExecutionPolicy`].
    ///
    /// Executions are returned in job order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidHandle`] when a reservation is released or one
    /// reservation is shared by two jobs, [`CoreError::SubarrayOverflow`] when a plan's
    /// batch does not fit its reservation, plus every [`SimdramMachine::run_plan`]
    /// error. On error no rows leak and no partial outputs survive.
    pub fn run_plans_on(&mut self, jobs: &[(&Plan, &Reservation)]) -> Result<Vec<PlanExecution>> {
        for (index, (_, reservation)) in jobs.iter().enumerate() {
            self.validate_reservation(reservation)?;
            if jobs[..index]
                .iter()
                .any(|(_, r)| r.id() == reservation.id())
            {
                return Err(CoreError::InvalidHandle(
                    "the same reservation was supplied for two jobs".into(),
                ));
            }
        }
        let resolved: Vec<(&Plan, usize, usize)> = jobs
            .iter()
            .map(|(plan, r)| (*plan, r.offset(), r.chunks()))
            .collect();
        self.run_plans_at(&resolved)
    }

    /// Issues several independent plans as **exactly one heterogeneous MIMD dispatch
    /// window**: each plan becomes one `(μProgram stream, subarray set)` entry of the
    /// window, all entries execute concurrently over the disjoint reservations, and the
    /// whole call records a single [`crate::BroadcastEstimate`].
    ///
    /// This is [`SimdramMachine::run_plans_on`] with a hard single-window contract —
    /// the caller asserting "this is one dispatch" (e.g. control-divergent lanes of one
    /// logical kernel, split into per-branch plans over disjoint element ranges).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] when any plan needs more than one dispatch window
    /// under the current [`crate::SimdramConfig::mimd_windows`] setting, plus every
    /// [`SimdramMachine::run_plans_on`] error.
    pub fn run_mimd_window(
        &mut self,
        jobs: &[(&Plan, &Reservation)],
    ) -> Result<Vec<PlanExecution>> {
        for &(plan, _) in jobs {
            let windows = if self.config.mimd_windows {
                plan.window_count()
            } else {
                plan.batch_count()
            };
            if windows > 1 {
                return Err(CoreError::Shape(format!(
                    "run_mimd_window issues exactly one dispatch, but a plan needs \
                     {windows} windows; use run_plans_on for multi-window plans"
                )));
            }
        }
        self.run_plans_on(jobs)
    }

    /// Total dispatch windows the control unit has issued (see
    /// [`crate::ControlUnit::windows_issued`]).
    pub fn dispatch_windows_issued(&self) -> u64 {
        self.control.windows_issued()
    }

    /// Dispatch windows that carried ≥ 2 distinct μProgram streams — true MIMD
    /// dispatches (see [`crate::ControlUnit::mimd_windows_issued`]).
    pub fn mimd_windows_issued(&self) -> u64 {
        self.control.mimd_windows_issued()
    }

    /// Shared implementation of every plan entry point: each job is a plan plus a chunk
    /// placement `(offset, budget)`. Validates, allocates storage with rollback, runs
    /// the fused dispatches and returns per-job executions.
    fn run_plans_at(&mut self, jobs: &[(&Plan, usize, usize)]) -> Result<Vec<PlanExecution>> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Generate every μProgram the plans need up front — the paper's offline
        // programming step — and validate reserved-row and subarray-budget requirements
        // before touching the allocator.
        for &(plan, _, budget) in jobs {
            self.control.preload(plan.programs_needed());
            if self.config.functional.is_compiled() {
                // The offline programming step of the fast-functional mode: lower every
                // needed μProgram into its word-level kernel once, before any batch runs.
                self.control
                    .preload_compiled(plan.programs_needed(), &self.costs)?;
            }
            for (op, width) in plan.programs_needed() {
                let temp_rows = self.control.microprogram(op, width).temp_rows();
                if temp_rows > self.config.dram.reserved_rows {
                    return Err(CoreError::Allocation(format!(
                        "{op} at {width} bits needs {temp_rows} reserved rows but only {} are configured",
                        self.config.dram.reserved_rows
                    )));
                }
            }
            for batch in plan.batches() {
                let needed = self.subarrays_for(batch.len);
                if needed > budget {
                    return Err(CoreError::SubarrayOverflow {
                        needed,
                        available: budget,
                    });
                }
            }
        }
        let mut storages: Vec<(Vec<SimdVector>, Vec<usize>)> = Vec::with_capacity(jobs.len());
        for &(plan, _, _) in jobs {
            match self.alloc_plan_storage(plan) {
                Ok(storage) => storages.push(storage),
                Err(err) => {
                    for (&(plan, _, _), (outputs, slot_bases)) in jobs.iter().zip(storages) {
                        for (slot, base) in slot_bases.into_iter().enumerate() {
                            self.allocator.free(base, plan.slot_widths()[slot]);
                        }
                        for vector in outputs {
                            self.free(vector);
                        }
                    }
                    return Err(err);
                }
            }
        }
        let result = self.execute_plan_batches(jobs, &storages);
        for (&(plan, _, _), (_, slot_bases)) in jobs.iter().zip(&storages) {
            for (slot, &base) in slot_bases.iter().enumerate() {
                self.allocator.free(base, plan.slot_widths()[slot]);
            }
        }
        match result {
            Ok(reports) => Ok(jobs
                .iter()
                .zip(storages)
                .zip(reports)
                .map(|((&(plan, _, _), (outputs, _)), report)| {
                    PlanExecution::new(plan.builder_id(), outputs, report)
                })
                .collect()),
            Err(err) => {
                for (outputs, _) in storages {
                    for vector in outputs {
                        self.free(vector);
                    }
                }
                Err(err)
            }
        }
    }

    /// Allocates a plan's dedicated outputs and pooled temp slots, rolling back every
    /// partial allocation on failure.
    fn alloc_plan_storage(&mut self, plan: &Plan) -> Result<(Vec<SimdVector>, Vec<usize>)> {
        let mut outputs: Vec<SimdVector> = Vec::with_capacity(plan.output_count());
        let mut slot_bases: Vec<usize> = Vec::with_capacity(plan.slot_widths().len());
        let mut failure = None;
        for &node_id in plan.output_nodes() {
            let node = plan.node(node_id);
            match self.alloc(node.width(), node.len()) {
                Ok(vector) => outputs.push(vector),
                Err(err) => {
                    failure = Some(err);
                    break;
                }
            }
        }
        if failure.is_none() {
            for &width in plan.slot_widths() {
                match self.allocator.alloc(width) {
                    Ok(base) => slot_bases.push(base),
                    Err(err) => {
                        failure = Some(err);
                        break;
                    }
                }
            }
        }
        if let Some(err) = failure {
            for (slot, &base) in slot_bases.iter().enumerate() {
                self.allocator.free(base, plan.slot_widths()[slot]);
            }
            for vector in outputs {
                self.free(vector);
            }
            return Err(err);
        }
        Ok((outputs, slot_bases))
    }

    /// Issues the jobs' batches as fused MIMD dispatch windows — at window depth `d`,
    /// the `d`-th window of every plan that has one runs inside ONE broadcast over the
    /// union of the jobs' chunk placements, each chunk executing its owning job's
    /// co-issued batch segments back-to-back — folding the per-step traces into the
    /// machine's accounting exactly like back-to-back execution would have (traces are
    /// merged in deterministic `(job, batch, step, chunk)` order, so results and
    /// per-plan reports are bit-identical with [`crate::SimdramConfig::mimd_windows`]
    /// on or off).
    fn execute_plan_batches(
        &mut self,
        jobs: &[(&Plan, usize, usize)],
        storages: &[(Vec<SimdVector>, Vec<usize>)],
    ) -> Result<Vec<PlanReport>> {
        // Resolve each job's node → run-time vector handles (inputs in place,
        // temporaries in their pooled slots, outputs/stores in their destinations).
        let mut job_vectors: Vec<Vec<Option<SimdVector>>> = Vec::with_capacity(jobs.len());
        for (&(plan, _, _), (outputs, slot_bases)) in jobs.iter().zip(storages) {
            let mut node_vectors: Vec<Option<SimdVector>> = Vec::with_capacity(plan.nodes().len());
            for (id, node) in plan.nodes().iter().enumerate() {
                let vector = match plan.storage_of(id) {
                    Storage::InPlace => node.input_vector(),
                    Storage::Slot(slot) => {
                        let handle_id = self.next_id;
                        self.next_id += 1;
                        Some(SimdVector::new(
                            handle_id,
                            slot_bases[*slot],
                            node.width(),
                            node.len(),
                        ))
                    }
                    Storage::Output(index) => Some(outputs[*index]),
                    Storage::External(dst) => Some(*dst),
                };
                node_vectors.push(vector);
            }
            job_vectors.push(node_vectors);
        }

        let mut reports: Vec<PlanReport> = jobs
            .iter()
            .map(|&(plan, _, _)| PlanReport {
                eager_broadcasts: plan.step_count(),
                ..PlanReport::default()
            })
            .collect();

        let mimd = self.config.mimd_windows;
        let windows_of = |plan: &Plan| {
            if mimd {
                plan.window_count()
            } else {
                plan.batch_count()
            }
        };
        let max_windows = jobs
            .iter()
            .map(|&(plan, _, _)| windows_of(plan))
            .max()
            .unwrap_or(0);
        for depth in 0..max_windows {
            // Resolve every participating job's dispatch window into per-batch step
            // segments plus its placement coordinates. A window covers one or more
            // independent same-level batches (one, for every level of a uniform-length
            // plan); a chunk executes, back-to-back, the segment of every batch wide
            // enough to reach it. Coordinates are appended in job order, so position
            // `p` of the dispatch belongs to `owner_of_position[p]`.
            let mut participants: Vec<usize> = Vec::new();
            let mut segment_lists: Vec<Vec<(Vec<RunStep>, usize)>> = Vec::new();
            let mut participant_chunks: Vec<usize> = Vec::new();
            let mut participant_starts: Vec<usize> = Vec::new();
            let mut coords: Vec<(usize, usize)> = Vec::new();
            let mut owner_of_position: Vec<usize> = Vec::new();
            let mut entries: Vec<DispatchEntry> = Vec::new();
            for (job_index, &(plan, offset, _)) in jobs.iter().enumerate() {
                if depth >= windows_of(plan) {
                    continue;
                }
                let node_vectors = &job_vectors[job_index];
                let batch_range = if mimd {
                    plan.windows()[depth].clone()
                } else {
                    depth..depth + 1
                };
                let mut segments: Vec<(Vec<RunStep>, usize)> = Vec::new();
                let mut programs: Vec<(Operation, usize)> = Vec::new();
                for batch in &plan.batches()[batch_range] {
                    let chunks = self.subarrays_for(batch.len);
                    let mut steps: Vec<RunStep> = Vec::with_capacity(batch.steps.len());
                    for &id in &batch.steps {
                        let node = plan.node(id);
                        let dst = node_vectors[id].expect("computed nodes have storage");
                        if let Some(value) = node.kind_constant() {
                            steps.push(RunStep::Init {
                                base_row: dst.base_row(),
                                width: node.width(),
                                value,
                            });
                        } else if let Some(src) = node.kind_copy() {
                            let src_vec = node_vectors[src].expect("operands precede their users");
                            steps.push(RunStep::Copy {
                                src_base: src_vec.base_row(),
                                dst_base: dst.base_row(),
                                width: node.width(),
                            });
                        } else if let Some((op, a, b, pred)) = node.kind_op() {
                            let a_vec = node_vectors[a].expect("operands precede their users");
                            let b_vec =
                                b.map(|i| node_vectors[i].expect("operands precede their users"));
                            let p_vec = pred
                                .map(|i| node_vectors[i].expect("operands precede their users"));
                            let binding = self.control.bind(
                                op,
                                &dst,
                                &a_vec,
                                b_vec.as_ref(),
                                p_vec.as_ref(),
                                self.config.reserved_base(),
                            )?;
                            let program = self.control.microprogram(op, a_vec.width()).clone();
                            let compiled = if self.config.functional.is_compiled() {
                                Some(self.control.compiled_microprogram(
                                    op,
                                    a_vec.width(),
                                    &self.costs,
                                )?)
                            } else {
                                None
                            };
                            programs.push((op, a_vec.width()));
                            steps.push(RunStep::Exec {
                                program,
                                compiled,
                                binding,
                                node: id,
                            });
                        }
                    }
                    segments.push((steps, chunks));
                }
                let job_chunks = segments
                    .iter()
                    .map(|&(_, chunks)| chunks)
                    .max()
                    .unwrap_or(1);
                let participant = participants.len();
                participant_starts.push(coords.len());
                coords.extend(self.compute_coords_at(offset, job_chunks)?);
                owner_of_position.extend(std::iter::repeat_n(participant, job_chunks));
                entries.push(DispatchEntry::new(
                    programs,
                    (offset..offset + job_chunks).collect(),
                ));
                participants.push(job_index);
                segment_lists.push(segments);
                participant_chunks.push(job_chunks);
            }

            // The control unit assembles and validates the window's (μProgram stream,
            // subarray set) entries before anything issues: reservations make the sets
            // disjoint by construction, and this is the layer that would reject a
            // corrupted placement table.
            self.control.describe_window(entries)?;

            // One fused MIMD dispatch: every chunk executes, in batch order, the
            // segment of every owning-job batch that reaches it, returning each
            // segment's local per-step traces so per-step accounting stays exact.
            // Placements are disjoint, so the disjoint-borrow API hands every chunk
            // kernel its own subarray.
            let dispatch_chunks = coords.len();
            // History sampling keys off the dispatch position, which is assigned in
            // deterministic (job, chunk) order independent of the execution policy.
            let mode = self.config.functional;
            // The bank-state backend classifies individual commands, so it asks for
            // per-command history even when the compiled mode would sample it away
            // (aggregate accounting is bit-identical either way).
            let force_history = self.backend.wants_history();
            let guard = self.config.guard;
            let per_bank = self.config.compute_subarrays_per_bank;
            let coords_ref = &coords;
            let segment_lists_ref = &segment_lists;
            let owners = &owner_of_position;
            let starts = &participant_starts;
            let broadcast = self
                .executor
                .broadcast(&mut self.device, &coords, |position, sa| {
                    let participant = owners[position];
                    let local = position - starts[participant];
                    let (bank, subarray) = coords_ref[position];
                    let mut outputs: Vec<(Vec<CommandTrace>, Vec<u64>, u32)> = Vec::new();
                    for (steps, chunks) in &segment_lists_ref[participant] {
                        if local >= *chunks {
                            continue;
                        }
                        outputs.push(run_steps_guarded(
                            steps,
                            sa,
                            force_history || mode.trace_with_history(position),
                            guard,
                            bank * per_bank + subarray,
                            (bank, subarray),
                        )?);
                    }
                    Ok(outputs)
                });
            let chunk_results = match broadcast {
                Ok(results) => results,
                Err(err) => {
                    // An exhausted-retries chunk aborts the whole dispatch (the serve
                    // layer re-dispatches surviving jobs); record the failure so
                    // repeated offenders get quarantined.
                    if let CoreError::Fault(fault) = &err {
                        self.fault_log.exhausted += 1;
                        self.fault_log.retries += u64::from(fault.attempts.saturating_sub(1));
                        self.note_chunk_failure(fault.chunk);
                    }
                    return Err(err);
                }
            };

            // Dispatch-level bank-state replay: merge every segment's per-step traces
            // into one stream per chunk (the order the subarray really issued them) and
            // replay the whole fused window. Skipped entirely under the analytic
            // backend.
            let fused_bank_state = if self.backend.kind().is_bank_state() {
                let merged: Vec<CommandTrace> = chunk_results
                    .iter()
                    .map(|segments| {
                        let mut whole = CommandTrace::new();
                        for (steps, _, _) in segments {
                            for step in steps {
                                whole.merge(step);
                            }
                        }
                        whole
                    })
                    .collect();
                self.backend.broadcast(&merged).bank_state
            } else {
                None
            };

            let mut dispatch_latency = 0.0f64;
            let mut dispatch_commands = 0usize;
            let mut dispatch_energy = 0.0f64;
            let mut dispatch_retries = 0u64;
            let mut chunk_iter = chunk_results.into_iter();
            for (participant, &job_index) in participants.iter().enumerate() {
                let job_chunks = participant_chunks[participant];
                let plan = jobs[job_index].0;
                // Per chunk, the segments it ran, in batch order; consumed
                // batch-by-batch below, reconstructing each batch's per-step
                // chunk-major traces exactly as serialized dispatch would see them.
                let mut chunk_segments: Vec<_> = (0..job_chunks)
                    .map(|_| {
                        chunk_iter
                            .next()
                            .expect("one segment list per chunk")
                            .into_iter()
                    })
                    .collect();
                let mut window_chunk_latency = vec![0.0f64; job_chunks];
                let mut window_commands = 0usize;
                let mut window_energy = 0.0f64;
                let mut job_retries = 0u64;
                for (steps, batch_chunks) in &segment_lists[participant] {
                    // Transpose this batch's [chunk][step] traces into per-step chunk
                    // order, summing each step's injected-fault deltas over its chunks.
                    let mut per_step: Vec<Vec<CommandTrace>> = (0..steps.len())
                        .map(|_| Vec::with_capacity(*batch_chunks))
                        .collect();
                    let mut step_injected = vec![0u64; steps.len()];
                    for segments in chunk_segments.iter_mut().take(*batch_chunks) {
                        let (chunk_traces, chunk_injected, chunk_retries) = segments
                            .next()
                            .expect("one segment per participating chunk");
                        for (step, trace) in chunk_traces.into_iter().enumerate() {
                            per_step[step].push(trace);
                        }
                        for (step, n) in chunk_injected.into_iter().enumerate() {
                            step_injected[step] += n;
                        }
                        if chunk_retries > 0 {
                            job_retries += u64::from(chunk_retries);
                            self.fault_log.retries += u64::from(chunk_retries);
                            self.fault_log.recovered += 1;
                        }
                    }

                    let report = &mut reports[job_index];
                    for ((step_index, step), traces) in steps.iter().enumerate().zip(&per_step) {
                        for (chunk, trace) in traces.iter().enumerate() {
                            self.functional_stats.absorb_trace(trace);
                            window_chunk_latency[chunk] += trace.total_latency_ns();
                            window_energy += trace.total_energy_nj();
                            window_commands += trace.len();
                        }
                        report.faults_injected += step_injected[step_index];
                        match step {
                            RunStep::Init { width, .. } => {
                                report.constants += 1;
                                report.commands += width;
                            }
                            RunStep::Copy { width, .. } => {
                                report.copies += 1;
                                report.commands += width;
                            }
                            RunStep::Exec { program, node, .. } => {
                                let measured = self.backend.broadcast(traces);
                                let elements = plan.node(*node).len();
                                let timing = &self.config.dram.timing;
                                let energy_model = &self.config.dram.energy;
                                let step_report = ExecutionReport {
                                    op: program.operation(),
                                    width: program.width(),
                                    elements,
                                    subarrays_used: *batch_chunks,
                                    commands: program.command_count(),
                                    tra_count: program.tra_count(),
                                    latency_ns: program.latency_ns(timing),
                                    energy_nj: program.energy_nj(energy_model)
                                        * *batch_chunks as f64,
                                    measured_latency_ns: measured.latency_ns,
                                    measured_energy_nj: measured.energy_nj,
                                    bank_state_latency_ns: measured
                                        .bank_state
                                        .as_ref()
                                        .map(|replay| replay.latency_ns),
                                    faults_injected: step_injected[step_index],
                                };
                                self.stats.record_execution(&step_report);
                                report.ops += 1;
                                report.commands += step_report.commands;
                                report.elements += step_report.elements;
                                report.latency_ns += step_report.latency_ns;
                                report.energy_nj += step_report.energy_nj;
                                report.step_reports.push(step_report);
                            }
                        }
                    }
                    // One fused broadcast batch accounted (a window may carry several).
                    report.broadcasts += 1;
                }

                // The job's own busy window for this dispatch: its chunks run their
                // segment chains in lock-step, so it is the max over the job's chunks
                // of each chunk's window total. Co-issued batches overlap here instead
                // of serializing — the MIMD win.
                let window_latency = window_chunk_latency.iter().copied().fold(0.0f64, f64::max);
                let report = &mut reports[job_index];
                report.windows += 1;
                report.fault_retries += job_retries;
                report.measured_latency_ns += window_latency;
                report.measured_energy_nj += window_energy;
                dispatch_retries += job_retries;
                dispatch_latency = dispatch_latency.max(window_latency);
                dispatch_commands += window_commands;
                dispatch_energy += window_energy;
            }

            // Recovery is not free: every retry charges a modeled re-dispatch window
            // on top of the (already doubled-and-merged) guarded traces, serializing
            // into the dispatch's busy window. Zero with the guard off, keeping the
            // estimate bit-identical to pre-fault-model behaviour.
            if dispatch_retries > 0 {
                let backoff = dispatch_retries as f64 * RETRY_BACKOFF_NS;
                self.fault_log.backoff_ns += backoff;
                dispatch_latency += backoff;
            }

            // Fold the whole fused dispatch into the cumulative estimate as ONE
            // broadcast: all participating subarrays (across every job and every
            // co-issued batch) run in lock-step, so the machine's busy window is the
            // max over all of them — this is where cross-job fusion and MIMD windows
            // show up as fewer, no-longer-serialized broadcasts in [`MachineEstimate`].
            let fused = BroadcastEstimate {
                chunks: dispatch_chunks,
                commands: dispatch_commands,
                latency_ns: dispatch_latency,
                cycles: self.estimator.timing().cycles(dispatch_latency),
                energy_nj: dispatch_energy,
                background_nj: self
                    .estimator
                    .energy_model()
                    .background_nj(dispatch_latency),
                bank_state: fused_bank_state,
            };
            self.machine_estimate.record(&fused);
        }
        Ok(reports)
    }

    /// Merges per-chunk traces into the functional device statistics **in chunk order**
    /// (the executor already returns them ordered), keeping even floating-point sums
    /// identical between execution policies, and folds the broadcast through the
    /// estimation engine into the cumulative [`MachineEstimate`].
    fn absorb_chunk_traces(&mut self, traces: &[CommandTrace]) -> BroadcastEstimate {
        for trace in traces {
            self.functional_stats.absorb_trace(trace);
        }
        let estimate = self.backend.broadcast(traces);
        self.machine_estimate.record(&estimate);
        estimate
    }

    fn subarrays_for(&self, elements: usize) -> usize {
        elements.div_ceil(self.lanes_per_subarray()).max(1)
    }

    /// Maps chunk indices `0..chunks` to `(bank, subarray)` coordinates for a broadcast.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SubarrayOverflow`] when the broadcast needs more subarrays
    /// than `compute_banks × compute_subarrays_per_bank` provides.
    fn compute_coords(&self, chunks: usize) -> Result<Vec<(usize, usize)>> {
        let available = self.config.compute_banks * self.config.compute_subarrays_per_bank;
        if chunks > available {
            // Report the full requirement, not the first failing chunk, so a user can
            // size the configuration from the message in one step.
            return Err(CoreError::SubarrayOverflow {
                needed: chunks,
                available,
            });
        }
        (0..chunks).map(|i| self.subarray_coordinates(i)).collect()
    }

    /// Maps chunk indices `offset..offset + chunks` to `(bank, subarray)` coordinates,
    /// i.e. [`compute_coords`](Self::compute_coords) shifted to a reservation's window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SubarrayOverflow`] when the shifted window runs past
    /// `compute_banks × compute_subarrays_per_bank`.
    fn compute_coords_at(&self, offset: usize, chunks: usize) -> Result<Vec<(usize, usize)>> {
        let available = self.config.compute_banks * self.config.compute_subarrays_per_bank;
        if offset + chunks > available {
            return Err(CoreError::SubarrayOverflow {
                needed: offset + chunks,
                available,
            });
        }
        (offset..offset + chunks)
            .map(|i| self.subarray_coordinates(i))
            .collect()
    }

    fn subarray_coordinates(&self, chunk_index: usize) -> Result<(usize, usize)> {
        let per_bank = self.config.compute_subarrays_per_bank;
        let bank = chunk_index / per_bank;
        let subarray = chunk_index % per_bank;
        if bank >= self.config.compute_banks {
            return Err(CoreError::SubarrayOverflow {
                needed: chunk_index + 1,
                available: self.config.compute_banks * per_bank,
            });
        }
        Ok((bank, subarray))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::TransposeDirection;

    fn machine() -> SimdramMachine {
        SimdramMachine::new(SimdramConfig::functional_test()).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = machine();
        let values: Vec<u64> = (0..300).map(|i| (i * 7 + 3) & 0xFF).collect();
        let v = m.alloc_and_write(8, &values).unwrap();
        assert_eq!(m.read(&v).unwrap(), values);
    }

    #[test]
    fn addition_matches_reference_across_subarrays() {
        let mut m = machine();
        // 300 elements with 256 columns per subarray spans two subarrays.
        let a_vals: Vec<u64> = (0..300u64).map(|i| i & 0xFF).collect();
        let b_vals: Vec<u64> = (0..300u64).map(|i| (i * 3) & 0xFF).collect();
        let a = m.alloc_and_write(8, &a_vals).unwrap();
        let b = m.alloc_and_write(8, &b_vals).unwrap();
        let (sum, report) = m.binary(Operation::Add, &a, &b).unwrap();
        assert_eq!(report.subarrays_used, 2);
        let results = m.read(&sum).unwrap();
        for i in 0..300 {
            assert_eq!(
                results[i],
                Operation::Add.reference(8, a_vals[i], b_vals[i], false)
            );
        }
    }

    #[test]
    fn predicated_select_uses_predicate_vector() {
        let mut m = machine();
        let a = m.alloc_and_write(8, &[1, 2, 3, 4]).unwrap();
        let b = m.alloc_and_write(8, &[10, 20, 30, 40]).unwrap();
        let pred = m.alloc(1, 4).unwrap();
        m.write_bools(&pred, &[true, false, true, false]).unwrap();
        let (out, _) = m.select(&pred, &a, &b).unwrap();
        assert_eq!(m.read(&out).unwrap(), vec![1, 20, 3, 40]);
    }

    #[test]
    fn init_broadcasts_a_constant() {
        let mut m = machine();
        let v = m.alloc(8, 100).unwrap();
        m.init(&v, 0xA5).unwrap();
        assert_eq!(m.read(&v).unwrap(), vec![0xA5; 100]);
    }

    #[test]
    fn issue_executes_bbop_instructions() {
        let mut m = machine();
        let a = m.alloc_and_write(8, &[100, 200]).unwrap();
        let b = m.alloc_and_write(8, &[1, 2]).unwrap();
        let dst = m.alloc(8, 2).unwrap();
        let report = m
            .issue(&BbopInstruction::Op {
                op: Operation::Sub,
                dst,
                src_a: a,
                src_b: Some(b),
                pred: None,
            })
            .unwrap()
            .unwrap();
        assert_eq!(report.op, Operation::Sub);
        assert_eq!(m.read(&dst).unwrap(), vec![99, 198]);
        assert!(m
            .issue(&BbopInstruction::Transpose {
                vector: a,
                direction: TransposeDirection::VerticalToHorizontal,
            })
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_vectors_are_rejected() {
        let mut m = machine();
        let too_many = m.lanes() + 1;
        assert!(matches!(
            m.alloc(8, too_many),
            Err(CoreError::Allocation(_))
        ));
        assert!(matches!(m.alloc(0, 10), Err(CoreError::Shape(_))));
        assert!(matches!(m.alloc(65, 10), Err(CoreError::Shape(_))));
    }

    #[test]
    fn free_allows_rows_to_be_reused() {
        let mut m = machine();
        let mut remaining = m.config().allocatable_rows();
        let mut held = Vec::new();
        while remaining > 0 {
            let width = remaining.min(64);
            held.push(m.alloc(width, 4).unwrap());
            remaining -= width;
        }
        assert!(m.alloc(1, 4).is_err());
        for vector in held {
            m.free(vector);
        }
        assert!(m.alloc(64, 4).is_ok());
    }

    #[test]
    fn copy_duplicates_a_vector_in_dram() {
        let mut m = machine();
        let values: Vec<u64> = (0..100u64).map(|i| (i * 13 + 5) & 0xFFFF).collect();
        let original = m.alloc_and_write(16, &values).unwrap();
        let clone = m.copy(&original).unwrap();
        assert_ne!(clone.base_row(), original.base_row());
        assert_eq!(m.read(&clone).unwrap(), values);
        // The copy is independent: overwriting the original leaves the clone intact.
        m.init(&original, 0).unwrap();
        assert_eq!(m.read(&clone).unwrap(), values);
    }

    #[test]
    fn shifted_view_reads_high_bits_without_commands() {
        let mut m = machine();
        let values: Vec<u64> = (0..50u64).map(|i| i * 7 + 3).collect();
        let v = m.alloc_and_write(16, &values).unwrap();
        let commands_before = m.stats().commands;
        let half = m.shifted_view(&v, 4).unwrap();
        assert_eq!(m.stats().commands, commands_before);
        assert_eq!(half.width(), 12);
        let expected: Vec<u64> = values.iter().map(|&x| x >> 4).collect();
        assert_eq!(m.read(&half).unwrap(), expected);
        assert!(m.shifted_view(&v, 16).is_err());
    }

    #[test]
    fn shifted_view_composes_with_operations() {
        // Divide by 16 via a shifted view, then add 1 — all in DRAM.
        let mut m = machine();
        let values: Vec<u64> = (0..64u64).map(|i| i * 97).collect();
        let v = m.alloc_and_write(16, &values).unwrap();
        let high = m.shifted_view(&v, 4).unwrap();
        let one = m.alloc(12, values.len()).unwrap();
        m.init(&one, 1).unwrap();
        let (result, _) = m.binary(Operation::Add, &high, &one).unwrap();
        let expected: Vec<u64> = values.iter().map(|&x| ((x >> 4) + 1) & 0xFFF).collect();
        assert_eq!(m.read(&result).unwrap(), expected);
    }

    #[test]
    fn stats_track_operations_and_transposes() {
        let mut m = machine();
        let a = m.alloc_and_write(8, &[1, 2, 3]).unwrap();
        let b = m.alloc_and_write(8, &[4, 5, 6]).unwrap();
        m.binary(Operation::Add, &a, &b).unwrap();
        let stats = m.stats();
        assert_eq!(stats.operations, 1);
        assert_eq!(stats.elements, 3);
        assert!(stats.compute_latency_ns > 0.0);
        assert!(stats.transpose_latency_ns > 0.0);
    }

    #[test]
    fn subarray_coordinates_overflow_is_a_typed_error() {
        let m = machine();
        // functional_test: 2 banks × 2 subarrays = 4 compute subarrays; chunk 4 overflows.
        assert_eq!(m.subarray_coordinates(3).unwrap(), (1, 1));
        assert_eq!(
            m.subarray_coordinates(4),
            Err(CoreError::SubarrayOverflow {
                needed: 5,
                available: 4
            })
        );
        // compute_coords reports the full requirement, not the first failing chunk.
        assert!(matches!(
            m.compute_coords(6),
            Err(CoreError::SubarrayOverflow {
                needed: 6,
                available: 4
            })
        ));
    }

    #[test]
    fn threaded_policy_is_bit_identical_to_sequential() {
        // Pin both policies explicitly: functional_test() honors SIMDRAM_EXEC, and this
        // test must keep comparing sequential against threaded even in the CI job that
        // forces the threaded engine globally.
        let machine_with = |policy: ExecutionPolicy| {
            let mut config = SimdramConfig::functional_test();
            config.execution = policy;
            SimdramMachine::new(config).unwrap()
        };
        let mut sequential = machine_with(ExecutionPolicy::Sequential);
        let mut threaded = machine_with(ExecutionPolicy::Threaded { max_threads: 4 });
        assert!(threaded.execution_policy().is_threaded());
        // 700 elements span 3 of the 4 subarrays.
        let a_vals: Vec<u64> = (0..700u64).map(|i| (i * 37 + 11) & 0xFFFF).collect();
        let b_vals: Vec<u64> = (0..700u64).map(|i| (i * 91 + 3) & 0xFFFF).collect();
        let mut results = Vec::new();
        let mut reports = Vec::new();
        let mut device_stats = Vec::new();
        for m in [&mut sequential, &mut threaded] {
            let a = m.alloc_and_write(16, &a_vals).unwrap();
            let b = m.alloc_and_write(16, &b_vals).unwrap();
            let (sum, report) = m.binary(Operation::Add, &a, &b).unwrap();
            let clone = m.copy(&sum).unwrap();
            m.init(&a, 0x5A).unwrap();
            results.push(m.read(&clone).unwrap());
            reports.push(report);
            device_stats.push(m.device_stats().clone());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(reports[0], reports[1]);
        assert_eq!(device_stats[0], device_stats[1]);
        assert!(device_stats[0].total_commands() > 0);
    }

    #[test]
    fn broadcast_kernels_drain_subarray_history() {
        // Repeated executions must not accumulate per-command history inside the
        // device's subarrays (the machine absorbs each broadcast's local trace instead);
        // aggregate counters survive the drain, so device-level stats stay complete.
        let mut m = machine();
        let a = m.alloc_and_write(8, &[1, 2, 3]).unwrap();
        let b = m.alloc_and_write(8, &[4, 5, 6]).unwrap();
        for _ in 0..5 {
            let (dst, _) = m.binary(Operation::Add, &a, &b).unwrap();
            m.init(&dst, 0).unwrap();
            m.free(dst);
        }
        let retained: usize = m
            .device
            .iter()
            .flat_map(|bank| bank.iter())
            .map(|sa| sa.trace().history_len())
            .sum();
        assert_eq!(retained, 0, "subarray per-command history must be drained");
        let commands: usize = m
            .device
            .iter()
            .flat_map(|bank| bank.iter())
            .map(|sa| sa.trace().len())
            .sum();
        assert!(commands > 0, "aggregate counters must survive the drain");
        assert_eq!(m.device_stats().total_commands(), commands);
    }

    #[test]
    fn reset_device_stats_clears_functional_accounting() {
        let mut m = machine();
        let a = m.alloc_and_write(8, &[1, 2, 3]).unwrap();
        m.init(&a, 7).unwrap();
        assert!(m.device_stats().total_commands() > 0);
        m.reset_device_stats();
        assert_eq!(m.device_stats().total_commands(), 0);
    }

    #[test]
    fn execution_policy_can_be_switched_at_runtime() {
        let mut m = machine();
        let values: Vec<u64> = (0..300u64).map(|i| i & 0xFF).collect();
        let v = m.alloc_and_write(8, &values).unwrap();
        m.set_execution_policy(ExecutionPolicy::Threaded { max_threads: 3 })
            .unwrap();
        assert_eq!(m.read(&v).unwrap(), values);
        assert!(matches!(
            m.set_execution_policy(ExecutionPolicy::Threaded { max_threads: 0 }),
            Err(CoreError::Shape(_))
        ));
    }

    #[test]
    fn compiled_plan_matches_eager_execution_with_fewer_broadcasts() {
        // knn-style distance: d = |x - q| + |x - r| with q, r constants.
        let x_vals: Vec<u64> = (0..300u64).map(|i| (i * 37 + 11) & 0xFF).collect();
        let wrapped_abs_diff = |x: u64, q: u64| {
            let diff = Operation::Sub.reference(8, x, q, false);
            Operation::Abs.reference(8, diff, 0, false)
        };
        let reference: Vec<u64> = x_vals
            .iter()
            .map(|&x| {
                Operation::Add.reference(
                    8,
                    wrapped_abs_diff(x, 90),
                    wrapped_abs_diff(x, 200),
                    false,
                )
            })
            .collect();

        // Eager: 2 inits + 5 ops = 7 broadcasts.
        let mut eager = machine();
        let x = eager.alloc_and_write(8, &x_vals).unwrap();
        let q = eager.alloc(8, x_vals.len()).unwrap();
        eager.init(&q, 90).unwrap();
        let r = eager.alloc(8, x_vals.len()).unwrap();
        eager.init(&r, 200).unwrap();
        let (d1, _) = eager.binary(Operation::Sub, &x, &q).unwrap();
        let (d2, _) = eager.binary(Operation::Sub, &x, &r).unwrap();
        let (a1, _) = eager.unary(Operation::Abs, &d1).unwrap();
        let (a2, _) = eager.unary(Operation::Abs, &d2).unwrap();
        let (sum, _) = eager.binary(Operation::Add, &a1, &a2).unwrap();
        assert_eq!(eager.read(&sum).unwrap(), reference);
        let eager_broadcasts = eager.estimate().broadcasts;
        assert_eq!(eager_broadcasts, 7);

        // Plan: constants + subs + abs + add fuse into 4 batches.
        let mut planned = machine();
        let x = planned.alloc_and_write(8, &x_vals).unwrap();
        let mut s = PlanBuilder::new();
        let xe = s.input(&x);
        let q = s.constant(8, x_vals.len(), 90).unwrap();
        let r = s.constant(8, x_vals.len(), 200).unwrap();
        let d1 = s.sub(xe, q).unwrap();
        let d2 = s.sub(xe, r).unwrap();
        let a1 = s.abs(d1).unwrap();
        let a2 = s.abs(d2).unwrap();
        let sum = s.add(a1, a2).unwrap();
        let out = s.materialize(sum).unwrap();
        let plan = s.compile().unwrap();
        let exec = planned.run_plan(&plan).unwrap();
        assert_eq!(planned.read(exec.output(out)).unwrap(), reference);

        let report = exec.report();
        assert_eq!(report.ops, 5);
        assert_eq!(report.constants, 2);
        assert_eq!(report.eager_broadcasts, 7);
        assert_eq!(report.broadcasts, 4);
        assert_eq!(planned.estimate().broadcasts, 4);
        assert!(report.broadcasts < eager_broadcasts);
        assert!(report.broadcast_savings() > 1.5);
        // The fused schedule issues exactly the commands the eager path issued, and the
        // machine-level functional accounting is identical.
        assert_eq!(planned.device_stats(), eager.device_stats());
        assert_eq!(planned.stats().operations, 5);
        assert_eq!(report.step_reports.len(), 5);
        assert!(report.measured_latency_ns > 0.0);
        assert!((report.measured_latency_ns - planned.estimate().busy_latency_ns).abs() < 1e-9);
    }

    #[test]
    fn plan_temporaries_are_released_after_the_run() {
        let mut m = machine();
        let free_before = m.allocator.free_rows();
        let x = m.alloc_and_write(8, &[1, 2, 3]).unwrap();
        let mut s = PlanBuilder::new();
        let xe = s.input(&x);
        let c = s.constant(8, 3, 5).unwrap();
        let sum = s.add(xe, c).unwrap();
        let doubled = s.add(sum, sum).unwrap();
        let out = s.materialize(doubled).unwrap();
        let plan = s.compile().unwrap();
        assert!(plan.temp_rows() > 0);
        let exec = m.run_plan(&plan).unwrap();
        assert_eq!(m.read(exec.output(out)).unwrap(), vec![12, 14, 16]);
        // Only the input and the single output remain allocated.
        assert_eq!(m.allocator.free_rows(), free_before - 2 * 8);
        let output = *exec.output(out);
        m.free(output);
        m.free(x);
        assert_eq!(m.allocator.free_rows(), free_before);
    }

    #[test]
    fn failing_plans_leak_no_rows() {
        let mut m = machine();
        let free_before = m.allocator.free_rows();
        // Four 64-bit temp slots (256 rows) exceed the functional machine's 160
        // allocatable rows, so storage allocation fails partway and must roll back.
        let mut s = PlanBuilder::new();
        let c1 = s.constant(64, 4, 1).unwrap();
        let c2 = s.constant(64, 4, 2).unwrap();
        let c3 = s.constant(64, 4, 3).unwrap();
        let s1 = s.add(c1, c2).unwrap();
        let s2 = s.add(s1, c3).unwrap();
        s.materialize(s2).unwrap();
        let plan = s.compile().unwrap();
        assert!(plan.temp_rows() > m.config().allocatable_rows());
        assert!(matches!(m.run_plan(&plan), Err(CoreError::Allocation(_))));
        assert_eq!(m.allocator.free_rows(), free_before);

        // A plan whose element count exceeds the machine's lanes fails cleanly too.
        let mut s = PlanBuilder::new();
        let c = s.constant(8, 5_000, 1).unwrap();
        let sum = s.add(c, c).unwrap();
        s.materialize(sum).unwrap();
        let plan = s.compile().unwrap();
        assert!(m.run_plan(&plan).is_err());
        assert_eq!(m.allocator.free_rows(), free_before);
    }

    #[test]
    fn reservations_partition_the_compute_chunks() {
        let mut m = machine();
        assert_eq!(m.compute_chunks(), 4);
        assert_eq!(m.free_chunks(), 4);
        let a = m.reserve_subarrays(2).unwrap();
        let b = m.reserve_subarrays(1).unwrap();
        assert_eq!(m.free_chunks(), 1);
        // Disjoint, consecutive windows.
        assert_eq!((a.offset(), a.chunks()), (0, 2));
        assert_eq!((b.offset(), b.chunks()), (2, 1));
        // No room for two more chunks; zero-chunk requests are shape errors.
        assert!(matches!(
            m.reserve_subarrays(2),
            Err(CoreError::SubarrayOverflow {
                needed: 2,
                available: 1
            })
        ));
        assert!(matches!(m.reserve_subarrays(0), Err(CoreError::Shape(_))));
        // Releasing returns the window; double release is a typed error.
        m.release_subarrays(a.clone()).unwrap();
        assert_eq!(m.free_chunks(), 3);
        assert!(matches!(
            m.release_subarrays(a),
            Err(CoreError::InvalidHandle(_))
        ));
        m.release_subarrays(b).unwrap();
        assert_eq!(m.free_chunks(), 4);
    }

    #[test]
    fn placed_writes_and_reads_stay_inside_the_reservation() {
        let mut m = machine();
        let lanes = m.lanes_per_subarray();
        let first = m.reserve_subarrays(1).unwrap();
        let second = m.reserve_subarrays(1).unwrap();
        let a_vals: Vec<u64> = (0..lanes as u64).map(|i| i & 0xFF).collect();
        let b_vals: Vec<u64> = (0..lanes as u64).map(|i| (255 - i) & 0xFF).collect();
        let a = m.alloc(8, lanes).unwrap();
        let b = m.alloc(8, lanes).unwrap();
        m.write_to(&first, &a, &a_vals).unwrap();
        m.write_to(&second, &b, &b_vals).unwrap();
        // Both vectors share row addresses but live in different subarray windows.
        assert_eq!(m.read_from(&first, &a).unwrap(), a_vals);
        assert_eq!(m.read_from(&second, &b).unwrap(), b_vals);
        // Data that spans more chunks than reserved is rejected up front.
        let wide_vals: Vec<u64> = vec![1; lanes + 1];
        let wide = m.alloc(8, lanes + 1).unwrap();
        assert!(matches!(
            m.write_to(&first, &wide, &wide_vals),
            Err(CoreError::SubarrayOverflow { .. })
        ));
        // Stale handles are typed errors, not silent chunk-0 fallbacks.
        let stale = first.clone();
        m.release_subarrays(first).unwrap();
        assert!(matches!(
            m.read_from(&stale, &a),
            Err(CoreError::InvalidHandle(_))
        ));
    }

    /// Builds the knn-style plan from `compiled_plan_matches_eager_execution_...` over
    /// `x`, returning the plan and its output handle.
    fn knn_plan(x: &SimdVector, len: usize) -> (Plan, crate::plan::PlanOutput) {
        let mut s = PlanBuilder::new();
        let xe = s.input(x);
        let q = s.constant(8, len, 90).unwrap();
        let r = s.constant(8, len, 200).unwrap();
        let d1 = s.sub(xe, q).unwrap();
        let d2 = s.sub(xe, r).unwrap();
        let a1 = s.abs(d1).unwrap();
        let a2 = s.abs(d2).unwrap();
        let sum = s.add(a1, a2).unwrap();
        let out = s.materialize(sum).unwrap();
        (s.compile().unwrap(), out)
    }

    #[test]
    fn fused_multi_plan_run_is_bit_identical_with_fewer_dispatches() {
        let lanes = machine().lanes_per_subarray();
        let a_vals: Vec<u64> = (0..lanes as u64).map(|i| (i * 37 + 11) & 0xFF).collect();
        let b_vals: Vec<u64> = (0..lanes as u64).map(|i| (i * 91 + 3) & 0xFF).collect();

        // Sequential reference: each tenant's plan on its own machine.
        let mut sequential_outputs = Vec::new();
        let mut sequential_broadcasts = 0;
        let mut sequential_reports = Vec::new();
        for vals in [&a_vals, &b_vals] {
            let mut m = machine();
            let x = m.alloc_and_write(8, vals).unwrap();
            let (plan, out) = knn_plan(&x, vals.len());
            let exec = m.run_plan(&plan).unwrap();
            sequential_outputs.push(m.read(exec.output(out)).unwrap());
            sequential_broadcasts += exec.report().broadcasts;
            sequential_reports.push(exec.report().clone());
        }

        // Served: both plans fused onto one machine with disjoint placements.
        let mut m = machine();
        let ra = m.reserve_subarrays(1).unwrap();
        let rb = m.reserve_subarrays(1).unwrap();
        let xa = m.alloc(8, a_vals.len()).unwrap();
        let xb = m.alloc(8, b_vals.len()).unwrap();
        m.write_to(&ra, &xa, &a_vals).unwrap();
        m.write_to(&rb, &xb, &b_vals).unwrap();
        let (plan_a, out_a) = knn_plan(&xa, a_vals.len());
        let (plan_b, out_b) = knn_plan(&xb, b_vals.len());
        let estimate_before = m.estimate().broadcasts;
        let execs = m.run_plans_on(&[(&plan_a, &ra), (&plan_b, &rb)]).unwrap();
        let fused_dispatches = m.estimate().broadcasts - estimate_before;

        // Bit-identical results on both placements.
        assert_eq!(
            m.read_from(&ra, execs[0].output(out_a)).unwrap(),
            sequential_outputs[0]
        );
        assert_eq!(
            m.read_from(&rb, execs[1].output(out_b)).unwrap(),
            sequential_outputs[1]
        );

        // The fused run issued max(batches) dispatches instead of the sequential sum,
        // while each tenant's own report is identical to its solo run.
        assert_eq!(
            fused_dispatches,
            plan_a.batch_count().max(plan_b.batch_count())
        );
        assert!(fused_dispatches < sequential_broadcasts);
        for (exec, solo) in execs.iter().zip(&sequential_reports) {
            assert_eq!(exec.report().broadcasts, solo.broadcasts);
            assert_eq!(exec.report().ops, solo.ops);
            assert_eq!(exec.report().commands, solo.commands);
            assert!((exec.report().measured_latency_ns - solo.measured_latency_ns).abs() < 1e-9);
            assert!((exec.report().measured_energy_nj - solo.measured_energy_nj).abs() < 1e-6);
        }
    }

    #[test]
    fn mixed_width_batches_co_issue_in_one_mimd_window() {
        let lanes = machine().lanes_per_subarray();
        // Two independent same-level steps with differing lane widths: an 8-bit op over
        // lanes+1 elements (2 chunks) and a 16-bit op over 3 elements (1 chunk). PR 9
        // serialized these as separate dispatches; MIMD windows co-issue them.
        let x_vals: Vec<u64> = (0..(lanes + 1) as u64)
            .map(|i| (i * 37 + 11) & 0xFF)
            .collect();
        let y_vals = [700u64, 800, 900];
        let build = |m: &mut SimdramMachine| {
            let x = m.alloc_and_write(8, &x_vals).unwrap();
            let y = m.alloc_and_write(16, &y_vals).unwrap();
            let mut s = PlanBuilder::new();
            let xe = s.input(&x);
            let ye = s.input(&y);
            let c = s.constant(16, y_vals.len(), 25).unwrap();
            let ax = s.abs(xe).unwrap();
            let sy = s.add(ye, c).unwrap();
            let out_x = s.materialize(ax).unwrap();
            let out_y = s.materialize(sy).unwrap();
            (s.compile().unwrap(), out_x, out_y)
        };

        let mut m = machine();
        let (plan, out_x, out_y) = build(&mut m);
        // Constant batch at level 0, then the two mixed-width op batches share level 1:
        // three batches in two windows, one of them mixed.
        assert_eq!(plan.batch_count(), 3);
        assert_eq!(plan.window_count(), 2);
        assert_eq!(plan.mixed_window_count(), 1);

        let exec = m.run_plan(&plan).unwrap();
        let expected_x: Vec<u64> = x_vals
            .iter()
            .map(|&v| Operation::Abs.reference(8, v, 0, false))
            .collect();
        let expected_y: Vec<u64> = y_vals.iter().map(|&v| v + 25).collect();
        assert_eq!(m.read(exec.output(out_x)).unwrap(), expected_x);
        assert_eq!(m.read(exec.output(out_y)).unwrap(), expected_y);
        assert_eq!(exec.report().broadcasts, 3);
        assert_eq!(exec.report().windows, 2);
        // The machine-level estimate counts fused dispatches = windows.
        assert_eq!(m.estimate().broadcasts, 2);
        assert_eq!(m.dispatch_windows_issued(), 2);

        // The serialized schedule (mimd_windows off) is bit-identical in results and
        // functional command accounting — only the dispatch count differs.
        let mut serial_config = SimdramConfig::functional_test();
        serial_config.mimd_windows = false;
        let mut serial = SimdramMachine::new(serial_config).unwrap();
        let (plan, out_x, out_y) = build(&mut serial);
        let serial_exec = serial.run_plan(&plan).unwrap();
        assert_eq!(serial.read(serial_exec.output(out_x)).unwrap(), expected_x);
        assert_eq!(serial.read(serial_exec.output(out_y)).unwrap(), expected_y);
        assert_eq!(serial_exec.report().broadcasts, 3);
        assert_eq!(serial_exec.report().windows, 3);
        assert_eq!(serial.estimate().broadcasts, 3);
        assert_eq!(serial.device_stats(), m.device_stats());
        assert_eq!(serial_exec.report().commands, exec.report().commands);
        // Lane-fixed placement makes both batches claim chunk 0, so inside one plan the
        // co-issued segments still serialize on that subarray: the busy window is
        // bit-identical and the MIMD win is the dispatch-window count (cross-plan
        // windows over disjoint reservations get real overlap — see
        // `run_mimd_window_issues_one_heterogeneous_dispatch`).
        assert!(
            (exec.report().measured_latency_ns - serial_exec.report().measured_latency_ns).abs()
                < 1e-9
        );
    }

    #[test]
    fn run_mimd_window_issues_one_heterogeneous_dispatch() {
        let mut m = machine();
        let lanes = m.lanes_per_subarray();
        let ra = m.reserve_subarrays(1).unwrap();
        let rb = m.reserve_subarrays(1).unwrap();
        let a_vals: Vec<u64> = (0..lanes as u64).map(|i| (i * 37 + 11) & 0xFF).collect();
        let b_vals: Vec<u64> = (0..lanes as u64).map(|i| (i * 91 + 3) & 0xFF).collect();
        let xa = m.alloc(8, a_vals.len()).unwrap();
        let xb = m.alloc(8, b_vals.len()).unwrap();
        m.write_to(&ra, &xa, &a_vals).unwrap();
        m.write_to(&rb, &xb, &b_vals).unwrap();

        // Two single-window plans running *different* μPrograms on disjoint subarrays.
        let unary_plan = |x: &SimdVector, op: Operation| {
            let mut s = PlanBuilder::new();
            let xe = s.input(x);
            let node = s.unary(op, xe).unwrap();
            let out = s.materialize(node).unwrap();
            (s.compile().unwrap(), out)
        };
        let (plan_a, out_a) = unary_plan(&xa, Operation::Abs);
        let (plan_b, out_b) = unary_plan(&xb, Operation::Relu);
        let before = m.estimate().broadcasts;
        let mimd_before = m.mimd_windows_issued();
        let execs = m
            .run_mimd_window(&[(&plan_a, &ra), (&plan_b, &rb)])
            .unwrap();
        // Exactly ONE fused dispatch carried both μProgram streams.
        assert_eq!(m.estimate().broadcasts - before, 1);
        assert_eq!(m.mimd_windows_issued() - mimd_before, 1);
        let expected_a: Vec<u64> = a_vals
            .iter()
            .map(|&v| Operation::Abs.reference(8, v, 0, false))
            .collect();
        let expected_b: Vec<u64> = b_vals
            .iter()
            .map(|&v| Operation::Relu.reference(8, v, 0, false))
            .collect();
        assert_eq!(
            m.read_from(&ra, execs[0].output(out_a)).unwrap(),
            expected_a
        );
        assert_eq!(
            m.read_from(&rb, execs[1].output(out_b)).unwrap(),
            expected_b
        );

        // A plan needing more than one window violates the single-dispatch contract.
        let (deep_plan, _) = knn_plan(&xa, a_vals.len());
        assert!(deep_plan.window_count() > 1);
        assert!(matches!(
            m.run_mimd_window(&[(&deep_plan, &ra)]),
            Err(CoreError::Shape(_))
        ));
    }

    #[test]
    fn run_plans_on_rejects_bad_reservations_and_oversized_plans() {
        let mut m = machine();
        let lanes = m.lanes_per_subarray();
        let r = m.reserve_subarrays(1).unwrap();
        let x = m.alloc(8, lanes).unwrap();
        m.write_to(&r, &x, &vec![1; lanes]).unwrap();
        let (plan, _) = knn_plan(&x, lanes);

        // One reservation shared by two jobs is a typed error.
        assert!(matches!(
            m.run_plans_on(&[(&plan, &r), (&plan, &r)]),
            Err(CoreError::InvalidHandle(_))
        ));
        // A plan whose batches need more chunks than reserved is rejected up front.
        let big = m.alloc(8, lanes + 1).unwrap();
        let (big_plan, _) = knn_plan(&big, lanes + 1);
        assert_eq!(big_plan.subarrays_needed(lanes), 2);
        assert!(matches!(
            m.run_plan_on(&big_plan, &r),
            Err(CoreError::SubarrayOverflow {
                needed: 2,
                available: 1
            })
        ));
        // A released reservation cannot host work.
        let stale = r.clone();
        m.release_subarrays(r).unwrap();
        assert!(matches!(
            m.run_plan_on(&plan, &stale),
            Err(CoreError::InvalidHandle(_))
        ));
        // Nothing leaked: the full chunk pool is back.
        assert_eq!(m.free_chunks(), m.compute_chunks());
    }

    #[test]
    fn one_node_plan_reports_match_the_legacy_eager_contract() {
        // execute() is sugar over a one-node plan; its report must carry the same
        // analytic and measured accounting the dedicated broadcast produced.
        let mut m = machine();
        let a = m.alloc_and_write(8, &[1, 2, 3]).unwrap();
        let b = m.alloc_and_write(8, &[9, 8, 7]).unwrap();
        let (sum, report) = m.binary(Operation::Add, &a, &b).unwrap();
        assert_eq!(m.read(&sum).unwrap(), vec![10; 3]);
        assert_eq!(report.op, Operation::Add);
        assert_eq!(report.elements, 3);
        assert_eq!(report.subarrays_used, 1);
        assert!(report.commands > 0);
        assert!(report.latency_ns > 0.0);
        assert!((report.measured_latency_ns - report.latency_ns).abs() < 1e-9);
        assert_eq!(m.stats().operations, 1);
        assert_eq!(m.estimate().broadcasts, 1);
    }

    #[test]
    fn ambit_target_produces_identical_results_with_more_commands() {
        let mut simdram = machine();
        let mut ambit = SimdramMachine::new(SimdramConfig::functional_test_ambit()).unwrap();
        let a_vals = [13u64, 77, 250, 8];
        let b_vals = [9u64, 77, 100, 200];
        let mut results = Vec::new();
        let mut commands = Vec::new();
        for m in [&mut simdram, &mut ambit] {
            let a = m.alloc_and_write(8, &a_vals).unwrap();
            let b = m.alloc_and_write(8, &b_vals).unwrap();
            let (out, report) = m.binary(Operation::Add, &a, &b).unwrap();
            results.push(m.read(&out).unwrap());
            commands.push(report.commands);
        }
        assert_eq!(results[0], results[1]);
        assert!(
            commands[0] < commands[1],
            "SIMDRAM should issue fewer commands than Ambit"
        );
    }
}
