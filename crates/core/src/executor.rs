//! The broadcast execution engine: sequential or bank-parallel (threaded) fan-out of
//! per-subarray work.
//!
//! SIMDRAM's throughput comes from *bank-level parallelism*: the memory controller
//! broadcasts one μProgram command stream and every participating bank/subarray executes it
//! concurrently, so operation latency is O(1) in the number of SIMD lanes. The functional
//! simulator used to walk the participating subarrays one by one, making simulation
//! wall-clock O(lanes). [`BroadcastExecutor`] restores the hardware shape: it obtains one
//! exclusive borrow per participating subarray through the disjoint-borrow API
//! ([`simdram_dram::DramDevice::subarrays_mut`]) and fans the chunks out over scoped
//! threads.
//!
//! # Determinism guarantee
//!
//! [`ExecutionPolicy::Threaded`] and [`ExecutionPolicy::Sequential`] produce bit-identical
//! results:
//!
//! * every chunk kernel is a pure function of its own subarray (no shared mutable state);
//! * per-chunk outputs — including per-chunk [`simdram_dram::CommandTrace`] accounting —
//!   are merged **in chunk order**, never in thread-completion order, so even
//!   floating-point latency/energy sums are reproduced exactly;
//! * when several chunks fail, the error reported is the one from the lowest-indexed
//!   chunk, regardless of thread scheduling.

use std::num::NonZeroUsize;

use simdram_dram::envopt::{self, EnvOverrideError};
use simdram_dram::{CommandTrace, DramDevice, Subarray};

use crate::error::{CoreError, Result};

/// Environment variable carrying the broadcast-policy override.
const EXEC_VAR: &str = "SIMDRAM_EXEC";
/// Accepted `SIMDRAM_EXEC` grammar, quoted in every rejection error.
const EXEC_EXPECTED: &str = "sequential | threaded | threaded:N (N >= 1)";
/// Environment variable carrying the functional-mode override.
const FUNC_VAR: &str = "SIMDRAM_FUNC";
/// Accepted `SIMDRAM_FUNC` grammar, quoted in every rejection error.
const FUNC_EXPECTED: &str = "interpreted | compiled | compiled:N (N >= 1)";

/// How a [`BroadcastExecutor`] drives the subarrays participating in a broadcast.
///
/// The policy only changes the simulator's wall-clock behaviour, never the simulated
/// outcome: results, [`simdram_dram::stats::DeviceStats`] and
/// [`crate::ExecutionReport`]s are bit-identical between the two policies (see the
/// determinism guarantee in this module's documentation).
///
/// # Examples
///
/// ```
/// use simdram_core::{ExecutionPolicy, SimdramConfig, SimdramMachine};
/// use simdram_logic::Operation;
///
/// let mut config = SimdramConfig::functional_test();
/// config.execution = ExecutionPolicy::threaded();
/// let mut machine = SimdramMachine::new(config)?;
/// let a = machine.alloc_and_write(8, &[1, 2, 3])?;
/// let b = machine.alloc_and_write(8, &[10, 20, 30])?;
/// let (sum, _) = machine.binary(Operation::Add, &a, &b)?;
/// assert_eq!(machine.read(&sum)?, vec![11, 22, 33]);
/// # Ok::<(), simdram_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPolicy {
    /// Execute chunks one after another on the calling thread (the reference behaviour).
    #[default]
    Sequential,
    /// Fan chunks out over up to `max_threads` scoped OS threads.
    Threaded {
        /// Upper bound on worker threads; clamped to the number of chunks. Must be ≥ 1
        /// ([`crate::SimdramConfig::validate`] rejects 0).
        max_threads: usize,
    },
}

impl ExecutionPolicy {
    /// A threaded policy sized to the host's available parallelism (at least 2, so the
    /// policy exercises the parallel path even on single-core CI runners).
    pub fn threaded() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(2)
            .max(2);
        ExecutionPolicy::Threaded {
            max_threads: threads,
        }
    }

    /// Reads the `SIMDRAM_EXEC` environment override, surfacing malformed values as a
    /// typed [`EnvOverrideError`] instead of panicking or silently falling back.
    /// Returns `Ok(None)` only when the variable is unset.
    ///
    /// Recognized (case-insensitive) values: `sequential`, `threaded`, and `threaded:N`
    /// for an explicit thread cap (N ≥ 1). This is how CI forces the whole tier-1 suite
    /// through the threaded engine without code changes.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] when the variable is set but unrecognized
    /// (including `threaded:0`).
    pub fn try_from_env() -> std::result::Result<Option<Self>, EnvOverrideError> {
        envopt::env_override(EXEC_VAR, EXEC_EXPECTED, Self::recognize)
    }

    /// Reads the `SIMDRAM_EXEC` environment override. Returns `None` only when the
    /// variable is unset, letting the caller fall back to its configured default.
    ///
    /// # Panics
    ///
    /// Panics on a set-but-unrecognized value (including `threaded:0`). The variable
    /// exists solely as a test/CI override; silently ignoring a typo would let a CI job
    /// believe it exercised the threaded engine while re-running the sequential path.
    /// Callers that want a recoverable failure use [`ExecutionPolicy::try_from_env`].
    pub fn from_env() -> Option<Self> {
        Self::try_from_env().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Parses one `SIMDRAM_EXEC` override value with the shared normalization rules.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] on anything [`ExecutionPolicy::try_from_env`] would
    /// reject.
    pub fn parse_override(raw: &str) -> std::result::Result<Self, EnvOverrideError> {
        envopt::parse_override(EXEC_VAR, EXEC_EXPECTED, raw, Self::recognize)
    }

    /// The pure grammar recognizer behind [`ExecutionPolicy::parse_override`]: `value`
    /// is already trimmed and lowercased; `None` means "not in the grammar".
    fn recognize(value: &str) -> Option<Self> {
        if value == "sequential" {
            Some(ExecutionPolicy::Sequential)
        } else if value == "threaded" {
            Some(ExecutionPolicy::threaded())
        } else if let Some(n) = value.strip_prefix("threaded:") {
            let max_threads = n.parse().ok().filter(|&n| n >= 1)?;
            Some(ExecutionPolicy::Threaded { max_threads })
        } else {
            None
        }
    }

    /// Returns `true` for the threaded variant.
    pub fn is_threaded(&self) -> bool {
        matches!(self, ExecutionPolicy::Threaded { .. })
    }

    /// Checks the policy's invariants (shared by [`crate::SimdramConfig::validate`] and
    /// [`crate::SimdramMachine::set_execution_policy`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for a threaded policy with `max_threads == 0`.
    pub fn validate(&self) -> Result<()> {
        if let ExecutionPolicy::Threaded { max_threads: 0 } = self {
            return Err(CoreError::Shape(
                "ExecutionPolicy::Threaded requires max_threads >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// How the machine executes a μProgram functionally inside each subarray chunk.
///
/// Orthogonal to [`ExecutionPolicy`] (which decides *where* chunks run, this decides
/// *what* runs per chunk): the interpreted path walks the symbolic μProgram one μOp at a
/// time, while the compiled path runs the μProgram's cached
/// [`simdram_uprog::CompiledProgram`] kernel — pre-resolved rows, word-level operations,
/// one aggregate trace charge per run. The two modes are bit-identical in every simulated
/// outcome (results, [`simdram_dram::stats::DeviceStats`], [`crate::MachineEstimate`]);
/// only per-command *history* differs, governed by `trace_every`.
///
/// # Examples
///
/// ```
/// use simdram_core::{FunctionalMode, SimdramConfig, SimdramMachine};
/// use simdram_logic::Operation;
///
/// let mut config = SimdramConfig::functional_test();
/// config.functional = FunctionalMode::compiled();
/// let mut machine = SimdramMachine::new(config)?;
/// let a = machine.alloc_and_write(8, &[1, 2, 3])?;
/// let b = machine.alloc_and_write(8, &[10, 20, 30])?;
/// let (sum, _) = machine.binary(Operation::Add, &a, &b)?;
/// assert_eq!(machine.read(&sum)?, vec![11, 22, 33]);
/// # Ok::<(), simdram_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FunctionalMode {
    /// Walk the symbolic μProgram per chunk, recording full per-command history (the
    /// reference behaviour).
    #[default]
    Interpreted,
    /// Run the compiled word-level kernel per chunk.
    Compiled {
        /// Per-command history sampling: retain full history for one in every
        /// `trace_every` chunks (chunk indices divisible by `trace_every`), aggregate-only
        /// for the rest. `0` disables history entirely — the fastest setting and the
        /// [`FunctionalMode::compiled`] default. Aggregate accounting (counts,
        /// latency/energy totals) is always charged regardless.
        trace_every: usize,
    },
}

impl FunctionalMode {
    /// The compiled mode at its fastest setting: no per-command history retained.
    pub fn compiled() -> Self {
        FunctionalMode::Compiled { trace_every: 0 }
    }

    /// Reads the `SIMDRAM_FUNC` environment override, surfacing malformed values as a
    /// typed [`EnvOverrideError`] instead of panicking or silently falling back.
    /// Returns `Ok(None)` only when the variable is unset.
    ///
    /// Recognized (case-insensitive) values: `interpreted`, `compiled`, and `compiled:N`
    /// to retain per-command history for one in every N chunks (N ≥ 1). This is how CI
    /// forces the whole tier-1 suite through the compiled engine without code changes.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] when the variable is set but unrecognized
    /// (including `compiled:0` — plain `compiled` already means "no history").
    pub fn try_from_env() -> std::result::Result<Option<Self>, EnvOverrideError> {
        envopt::env_override(FUNC_VAR, FUNC_EXPECTED, Self::recognize)
    }

    /// Reads the `SIMDRAM_FUNC` environment override. Returns `None` only when the
    /// variable is unset, letting the caller fall back to its configured default.
    ///
    /// # Panics
    ///
    /// Panics on a set-but-unrecognized value. The variable exists solely as a test/CI
    /// override; silently ignoring a typo would let a CI job believe it exercised the
    /// compiled engine while re-running the interpreter. Callers that want a
    /// recoverable failure use [`FunctionalMode::try_from_env`].
    pub fn from_env() -> Option<Self> {
        Self::try_from_env().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Parses one `SIMDRAM_FUNC` override value with the shared normalization rules.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] on anything [`FunctionalMode::try_from_env`] would
    /// reject.
    pub fn parse_override(raw: &str) -> std::result::Result<Self, EnvOverrideError> {
        envopt::parse_override(FUNC_VAR, FUNC_EXPECTED, raw, Self::recognize)
    }

    /// The pure grammar recognizer behind [`FunctionalMode::parse_override`]: `value`
    /// is already trimmed and lowercased; `None` means "not in the grammar".
    fn recognize(value: &str) -> Option<Self> {
        if value == "interpreted" {
            Some(FunctionalMode::Interpreted)
        } else if value == "compiled" {
            Some(FunctionalMode::compiled())
        } else if let Some(n) = value.strip_prefix("compiled:") {
            let trace_every = n.parse().ok().filter(|&n| n >= 1)?;
            Some(FunctionalMode::Compiled { trace_every })
        } else {
            None
        }
    }

    /// Returns `true` for the compiled variant.
    pub fn is_compiled(&self) -> bool {
        matches!(self, FunctionalMode::Compiled { .. })
    }

    /// Whether the broadcast chunk at `chunk` index retains per-command history under
    /// this mode. Chunk indices are assigned in coordinate order independent of the
    /// [`ExecutionPolicy`], so the sampling decision — like everything else — is
    /// deterministic across sequential and threaded runs.
    pub fn trace_with_history(&self, chunk: usize) -> bool {
        match *self {
            FunctionalMode::Interpreted => true,
            FunctionalMode::Compiled { trace_every: 0 } => false,
            FunctionalMode::Compiled { trace_every } => chunk % trace_every == 0,
        }
    }
}

/// Fans per-subarray broadcast chunks out according to an [`ExecutionPolicy`].
///
/// Every [`crate::SimdramMachine`] operation that touches multiple subarrays —
/// μProgram broadcast, host writes/reads through the transposition unit, constant
/// broadcast and RowClone copies — is routed through [`BroadcastExecutor::broadcast`].
/// The kernel receives `(chunk_index, &mut Subarray)` and must be a pure function of
/// those two inputs (plus captured shared *immutable* state); the executor guarantees the
/// returned outputs are ordered by chunk index whichever policy runs.
///
/// # Examples
///
/// ```
/// use simdram_core::{BroadcastExecutor, ExecutionPolicy};
/// use simdram_dram::{BitRow, DramConfig, DramDevice, RowAddr};
///
/// let mut device = DramDevice::new(DramConfig::tiny()).unwrap();
/// let executor = BroadcastExecutor::new(ExecutionPolicy::threaded());
/// // Broadcast a row fill across three subarrays and collect one result per chunk.
/// let coords = [(0, 0), (0, 1), (1, 0)];
/// let ones = executor
///     .broadcast(&mut device, &coords, |chunk, sa| {
///         sa.poke(RowAddr::Data(0), &BitRow::splat_word(chunk as u64, 256))?;
///         Ok(sa.peek(RowAddr::Data(0))?.count_ones())
///     })
///     .unwrap();
/// assert_eq!(ones.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastExecutor {
    policy: ExecutionPolicy,
}

impl BroadcastExecutor {
    /// Creates an executor with the given policy.
    pub fn new(policy: ExecutionPolicy) -> Self {
        BroadcastExecutor { policy }
    }

    /// The executor's policy.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Runs `kernel` once per coordinate in `coords`, giving each invocation exclusive
    /// mutable access to its subarray, and returns the kernel outputs in chunk order.
    ///
    /// Under [`ExecutionPolicy::Sequential`] the chunks run in order on the calling
    /// thread. Under [`ExecutionPolicy::Threaded`] the chunk list is split into
    /// contiguous groups, one per worker, executed with [`std::thread::scope`]; outputs
    /// (and errors) are still merged in chunk order, so the two policies are
    /// indistinguishable from the caller's perspective.
    ///
    /// # Errors
    ///
    /// Propagates coordinate-validation errors from
    /// [`simdram_dram::DramDevice::subarrays_mut`] and the first kernel error in chunk
    /// order. If a chunk fails, which of the remaining chunks already executed is
    /// unspecified (sequential stops at the failure; threaded workers each stop at their
    /// first local failure).
    pub fn broadcast<T, F>(
        &self,
        device: &mut DramDevice,
        coords: &[(usize, usize)],
        kernel: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, &mut Subarray) -> Result<T> + Sync,
    {
        let subarrays = device.subarrays_mut(coords)?;
        match self.policy {
            ExecutionPolicy::Sequential => subarrays
                .into_iter()
                .enumerate()
                .map(|(chunk, sa)| kernel(chunk, sa))
                .collect(),
            ExecutionPolicy::Threaded { max_threads } => {
                run_threaded(subarrays, max_threads, &kernel)
            }
        }
    }

    /// Like [`BroadcastExecutor::broadcast`], but wraps the kernel in the standard
    /// command-accounting protocol every machine-level broadcast follows: the subarray's
    /// trace is marked before the kernel runs, the commands it issued are returned as a
    /// self-contained local [`CommandTrace`] per chunk (in chunk order), and the
    /// subarray's own per-command history is drained so long-running machines stay
    /// bounded (aggregate counters survive the drain).
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`BroadcastExecutor::broadcast`].
    pub fn broadcast_traced<F>(
        &self,
        device: &mut DramDevice,
        coords: &[(usize, usize)],
        kernel: F,
    ) -> Result<Vec<CommandTrace>>
    where
        F: Fn(usize, &mut Subarray) -> Result<()> + Sync,
    {
        self.broadcast(device, coords, |chunk, sa| {
            let mark = sa.trace_mark();
            kernel(chunk, sa)?;
            let local = sa.trace_since(mark);
            sa.drain_trace();
            Ok(local)
        })
    }
}

/// Threaded fan-out: contiguous chunk groups, one scoped thread per group, outputs
/// reassembled in chunk order.
fn run_threaded<T, F>(
    subarrays: Vec<&mut Subarray>,
    max_threads: usize,
    kernel: &F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, &mut Subarray) -> Result<T> + Sync,
{
    let total = subarrays.len();
    let threads = max_threads.max(1).min(total);
    if threads <= 1 {
        return subarrays
            .into_iter()
            .enumerate()
            .map(|(chunk, sa)| kernel(chunk, sa))
            .collect();
    }
    // Partition the exclusive borrows into `threads` contiguous groups, remembering each
    // group's first chunk index so outputs can be labelled without any shared counter.
    let per_group = total.div_ceil(threads);
    let mut groups: Vec<(usize, Vec<&mut Subarray>)> = Vec::with_capacity(threads);
    let mut rest = subarrays;
    let mut base = 0;
    while !rest.is_empty() {
        let take = per_group.min(rest.len());
        let tail = rest.split_off(take);
        groups.push((base, rest));
        base += take;
        rest = tail;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|(group_base, group)| {
                scope.spawn(move || {
                    group
                        .into_iter()
                        .enumerate()
                        .map(|(offset, sa)| kernel(group_base + offset, sa))
                        .collect::<Result<Vec<T>>>()
                })
            })
            .collect();
        let mut outputs = Vec::with_capacity(total);
        let mut first_error: Option<CoreError> = None;
        // Join in spawn (= chunk) order so the reported error is the lowest-indexed
        // chunk's, independent of thread scheduling.
        for handle in handles {
            match handle.join() {
                Ok(Ok(group_outputs)) => outputs.extend(group_outputs),
                Ok(Err(err)) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(outputs),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_dram::{BitRow, DramConfig, RowAddr};

    fn device() -> DramDevice {
        DramDevice::new(DramConfig::tiny()).unwrap()
    }

    fn all_coords() -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1), (1, 0), (1, 1)]
    }

    fn fill_kernel(chunk: usize, sa: &mut Subarray) -> Result<u64> {
        let pattern = BitRow::splat_word(chunk as u64 + 1, sa.columns());
        sa.poke(RowAddr::Data(0), &pattern)?;
        Ok(sa.peek(RowAddr::Data(0))?.word(0))
    }

    #[test]
    fn sequential_and_threaded_produce_identical_outputs() {
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Threaded { max_threads: 2 },
            ExecutionPolicy::Threaded { max_threads: 16 },
        ] {
            let mut dev = device();
            let outputs = BroadcastExecutor::new(policy)
                .broadcast(&mut dev, &all_coords(), fill_kernel)
                .unwrap();
            assert_eq!(outputs, vec![1, 2, 3, 4], "{policy:?}");
        }
    }

    #[test]
    fn threaded_with_more_threads_than_chunks_still_covers_every_chunk() {
        let mut dev = device();
        let executor = BroadcastExecutor::new(ExecutionPolicy::Threaded { max_threads: 64 });
        let outputs = executor
            .broadcast(&mut dev, &all_coords(), fill_kernel)
            .unwrap();
        assert_eq!(outputs, vec![1, 2, 3, 4]);
        // The writes really landed in the device, one per subarray.
        for (chunk, (bank, sub)) in all_coords().into_iter().enumerate() {
            let row = dev
                .bank(bank)
                .unwrap()
                .subarray(sub)
                .unwrap()
                .peek(RowAddr::Data(0))
                .unwrap();
            assert_eq!(row.word(0), chunk as u64 + 1);
        }
    }

    #[test]
    fn first_error_in_chunk_order_wins_under_both_policies() {
        let failing = |chunk: usize, _sa: &mut Subarray| -> Result<()> {
            if chunk >= 1 {
                Err(CoreError::Shape(format!("chunk {chunk} failed")))
            } else {
                Ok(())
            }
        };
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Threaded { max_threads: 4 },
        ] {
            let mut dev = device();
            let err = BroadcastExecutor::new(policy)
                .broadcast(&mut dev, &all_coords(), failing)
                .unwrap_err();
            assert_eq!(err, CoreError::Shape("chunk 1 failed".into()), "{policy:?}");
        }
    }

    #[test]
    fn invalid_coordinates_are_rejected_before_any_kernel_runs() {
        let mut dev = device();
        let executor = BroadcastExecutor::new(ExecutionPolicy::threaded());
        let err = executor
            .broadcast(&mut dev, &[(0, 0), (0, 0)], |_, _| Ok(()))
            .unwrap_err();
        assert!(matches!(err, CoreError::Dram(_)));
    }

    #[test]
    fn env_override_parsing() {
        // parse_override is from_env minus the env read, so every branch is testable
        // without touching the process environment; the env-sensitive plumbing itself is
        // covered by CI running the whole suite under SIMDRAM_EXEC=threaded.
        assert_eq!(
            ExecutionPolicy::parse_override("sequential"),
            Ok(ExecutionPolicy::Sequential)
        );
        assert_eq!(
            ExecutionPolicy::parse_override(" Sequential "),
            Ok(ExecutionPolicy::Sequential)
        );
        assert!(ExecutionPolicy::parse_override("threaded")
            .unwrap()
            .is_threaded());
        assert_eq!(
            ExecutionPolicy::parse_override("threaded:4"),
            Ok(ExecutionPolicy::Threaded { max_threads: 4 })
        );
        assert!(ExecutionPolicy::threaded().is_threaded());
        assert!(!ExecutionPolicy::Sequential.is_threaded());
        if let ExecutionPolicy::Threaded { max_threads } = ExecutionPolicy::threaded() {
            assert!(max_threads >= 2);
        }
    }

    #[test]
    fn env_override_rejects_typos_with_a_typed_error() {
        let err = ExecutionPolicy::parse_override("thread").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_EXEC");
        assert_eq!(err.value, "thread");
        assert!(err.to_string().contains("sequential | threaded"));
    }

    #[test]
    fn env_override_rejects_zero_thread_cap_with_a_typed_error() {
        let err = ExecutionPolicy::parse_override("threaded:0").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_EXEC");
        assert!(ExecutionPolicy::parse_override("threaded:x").is_err());
    }

    #[test]
    fn functional_mode_override_parsing() {
        assert_eq!(
            FunctionalMode::parse_override("interpreted"),
            Ok(FunctionalMode::Interpreted)
        );
        assert_eq!(
            FunctionalMode::parse_override(" Compiled "),
            Ok(FunctionalMode::compiled())
        );
        assert_eq!(
            FunctionalMode::parse_override("compiled:16"),
            Ok(FunctionalMode::Compiled { trace_every: 16 })
        );
        assert!(FunctionalMode::compiled().is_compiled());
        assert!(!FunctionalMode::Interpreted.is_compiled());
    }

    #[test]
    fn functional_mode_history_sampling_is_per_chunk() {
        // Interpreted always keeps history; compiled-without-sampling never does;
        // compiled:N keeps it for every Nth chunk starting at 0.
        for chunk in 0..8 {
            assert!(FunctionalMode::Interpreted.trace_with_history(chunk));
            assert!(!FunctionalMode::compiled().trace_with_history(chunk));
        }
        let sampled = FunctionalMode::Compiled { trace_every: 3 };
        let kept: Vec<usize> = (0..9).filter(|&c| sampled.trace_with_history(c)).collect();
        assert_eq!(kept, vec![0, 3, 6]);
    }

    #[test]
    fn functional_mode_override_rejects_typos_with_a_typed_error() {
        let err = FunctionalMode::parse_override("compile").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_FUNC");
        assert_eq!(err.value, "compile");
        assert!(err.to_string().contains("interpreted | compiled"));
    }

    #[test]
    fn functional_mode_override_rejects_zero_period_with_a_typed_error() {
        let err = FunctionalMode::parse_override("compiled:0").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_FUNC");
        assert!(FunctionalMode::parse_override("compiled:").is_err());
    }
}
