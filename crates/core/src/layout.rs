//! Vertical-layout memory management: SIMD vector handles and the row allocator.
//!
//! A SIMDRAM object ("SIMD vector") of `n` elements × `w` bits occupies `w` consecutive rows
//! in every participating subarray, with element `i` living in column `i mod columns` of
//! subarray `i / columns`. Because μPrograms are broadcast with the *same* row addresses to
//! every subarray, allocation is global: a row extent is reserved at the same offset in all
//! compute subarrays.

use crate::error::{CoreError, Result};

/// A handle to a vertically laid-out SIMD vector resident in the compute subarrays.
///
/// Handles are small and `Copy`; they do not own the underlying rows — freeing is explicit
/// through [`crate::SimdramMachine::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimdVector {
    id: u64,
    base_row: usize,
    width: usize,
    len: usize,
}

impl SimdVector {
    pub(crate) fn new(id: u64, base_row: usize, width: usize, len: usize) -> Self {
        SimdVector {
            id,
            base_row,
            width,
            len,
        }
    }

    /// Unique identifier of the vector within its machine.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// First DRAM row (in every participating subarray) holding the vector's bit 0.
    pub fn base_row(&self) -> usize {
        self.base_row
    }

    /// Element width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// First-fit extent allocator over the allocatable rows of the compute subarrays.
#[derive(Debug, Clone)]
pub(crate) struct RowAllocator {
    total_rows: usize,
    /// Sorted, disjoint free extents: (start, length).
    free: Vec<(usize, usize)>,
}

impl RowAllocator {
    pub(crate) fn new(total_rows: usize) -> Self {
        RowAllocator {
            total_rows,
            free: vec![(0, total_rows)],
        }
    }

    /// Allocates `rows` consecutive rows, returning the base row.
    pub(crate) fn alloc(&mut self, rows: usize) -> Result<usize> {
        if rows == 0 {
            return Err(CoreError::Allocation("cannot allocate zero rows".into()));
        }
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            if len >= rows {
                if len == rows {
                    self.free.remove(i);
                } else {
                    self.free[i] = (start + rows, len - rows);
                }
                return Ok(start);
            }
        }
        Err(CoreError::Allocation(format!(
            "no free extent of {rows} rows (total {} rows, {} free)",
            self.total_rows,
            self.free_rows()
        )))
    }

    /// Returns a previously allocated extent to the free list, coalescing neighbours.
    pub(crate) fn free(&mut self, base: usize, rows: usize) {
        if rows == 0 {
            return;
        }
        let pos = self.free.partition_point(|&(start, _)| start < base);
        self.free.insert(pos, (base, rows));
        // Coalesce with the next extent.
        if pos + 1 < self.free.len() {
            let (next_start, next_len) = self.free[pos + 1];
            let (start, len) = self.free[pos];
            if start + len == next_start {
                self.free[pos] = (start, len + next_len);
                self.free.remove(pos + 1);
            }
        }
        // Coalesce with the previous extent.
        if pos > 0 {
            let (prev_start, prev_len) = self.free[pos - 1];
            let (start, len) = self.free[pos];
            if prev_start + prev_len == start {
                self.free[pos - 1] = (prev_start, prev_len + len);
                self.free.remove(pos);
            }
        }
    }

    /// Total number of currently free rows.
    pub(crate) fn free_rows(&self) -> usize {
        self.free.iter().map(|&(_, len)| len).sum()
    }

    /// Carves the specific extent `[base, base + rows)` out of the free list, returning
    /// `false` (and changing nothing) unless the whole extent is currently free.
    ///
    /// This is the quarantine primitive: removing a known-bad chunk from circulation is
    /// an allocation *at a fixed address*, which first-fit [`RowAllocator::alloc`]
    /// cannot express.
    pub(crate) fn reserve_at(&mut self, base: usize, rows: usize) -> bool {
        if rows == 0 {
            return false;
        }
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            if start <= base && base + rows <= start + len {
                let before = base - start;
                let after = (start + len) - (base + rows);
                match (before, after) {
                    (0, 0) => {
                        self.free.remove(i);
                    }
                    (0, _) => self.free[i] = (base + rows, after),
                    (_, 0) => self.free[i] = (start, before),
                    (_, _) => {
                        self.free[i] = (start, before);
                        self.free.insert(i + 1, (base + rows, after));
                    }
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_handle_accessors() {
        let v = SimdVector::new(7, 12, 16, 1000);
        assert_eq!(v.id(), 7);
        assert_eq!(v.base_row(), 12);
        assert_eq!(v.width(), 16);
        assert_eq!(v.len(), 1000);
        assert!(!v.is_empty());
    }

    #[test]
    fn alloc_is_first_fit_and_exhausts() {
        let mut a = RowAllocator::new(32);
        assert_eq!(a.alloc(8).unwrap(), 0);
        assert_eq!(a.alloc(8).unwrap(), 8);
        assert_eq!(a.alloc(16).unwrap(), 16);
        assert!(a.alloc(1).is_err());
        assert_eq!(a.free_rows(), 0);
    }

    #[test]
    fn free_coalesces_neighbouring_extents() {
        let mut a = RowAllocator::new(32);
        let x = a.alloc(8).unwrap();
        let y = a.alloc(8).unwrap();
        let z = a.alloc(16).unwrap();
        a.free(y, 8);
        a.free(x, 8);
        a.free(z, 16);
        assert_eq!(a.free_rows(), 32);
        // After full coalescing a 32-row allocation must succeed again.
        assert_eq!(a.alloc(32).unwrap(), 0);
    }

    #[test]
    fn fragmented_allocations_fail_gracefully() {
        let mut a = RowAllocator::new(24);
        let x = a.alloc(8).unwrap();
        let _y = a.alloc(8).unwrap();
        let _z = a.alloc(8).unwrap();
        a.free(x, 8);
        // 8 rows are free but a 16-row request cannot be satisfied contiguously.
        assert!(a.alloc(16).is_err());
        assert_eq!(a.alloc(8).unwrap(), 0);
    }

    #[test]
    fn zero_row_allocation_is_an_error() {
        let mut a = RowAllocator::new(8);
        assert!(matches!(a.alloc(0), Err(CoreError::Allocation(_))));
    }

    #[test]
    fn reserve_at_carves_out_fixed_extents() {
        let mut a = RowAllocator::new(16);
        // Middle of the only extent: splits it.
        assert!(a.reserve_at(4, 2));
        assert_eq!(a.free_rows(), 14);
        // Already reserved.
        assert!(!a.reserve_at(4, 1));
        assert!(!a.reserve_at(3, 3));
        // Exact front and back of the remaining extents.
        assert!(a.reserve_at(0, 4));
        assert!(a.reserve_at(6, 10));
        assert_eq!(a.free_rows(), 0);
        assert!(!a.reserve_at(0, 1));
        assert!(!a.reserve_at(0, 0));
        // Freeing the reservations restores a fully coalesced allocator.
        a.free(4, 2);
        a.free(0, 4);
        a.free(6, 10);
        assert_eq!(a.alloc(16).unwrap(), 0);
    }
}
