//! # simdram-core — Step 3 and system integration of the SIMDRAM framework
//!
//! This crate ties the framework together into a usable system, mirroring the paper's
//! end-to-end design:
//!
//! * [`SimdramMachine`] — the user-facing executor: allocate vertically laid-out SIMD
//!   vectors, write/read them through the **transposition unit**, and execute any of the 16
//!   operations (or your own) on them with a single call. The same machine drives the Ambit
//!   baseline when configured with [`simdram_uprog::Target::Ambit`].
//! * [`PlanBuilder`]/[`Plan`] — the deferred dataflow frontend: compose whole expressions
//!   lazily, `compile()` them (dead-code elimination, subexpression sharing, temp-row
//!   reuse, broadcast batching) and run them with [`SimdramMachine::run_plan`]. The eager
//!   single-op calls are kept as sugar over one-node plans.
//! * [`ControlUnit`] — the memory-controller logic that expands **bbop** instructions
//!   ([`BbopInstruction`]) into μPrograms and binds them to physical rows.
//! * [`BroadcastExecutor`]/[`ExecutionPolicy`] — the broadcast execution engine that fans
//!   μProgram chunks out over the participating subarrays, either sequentially or on
//!   threads (bank-level parallelism), with bit-identical results either way.
//! * [`FunctionalMode`] — what each chunk runs: the per-μOp interpreter, or the compiled
//!   word-level kernel cached per μProgram ([`simdram_uprog::CompiledProgram`]) — again
//!   bit-identical in results and aggregate accounting, several times faster to simulate.
//! * [`TimingBackend`]/[`TimingBackendKind`] — which estimation engine folds the executed
//!   command traces: the analytic [`TraceEstimator`], or the bank-state replay
//!   ([`simdram_dram::BankStateModel`]) that models row-buffer state, ACTIVATE
//!   serialization and refresh interference alongside the unchanged analytic numbers.
//! * [`transpose_64x64`] — horizontal ↔ vertical layout conversion, both functional and as
//!   a cost model ([`TranspositionUnit`]).
//! * [`pud_performance`] — the analytic throughput/energy model used to regenerate the
//!   paper's figures.
//! * [`AreaModel`] — the area-overhead estimate behind the "<1% DRAM area" claim.
//!
//! ## Quickstart
//!
//! ```
//! use simdram_core::{SimdramConfig, SimdramMachine};
//! use simdram_logic::Operation;
//!
//! let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;
//! let prices = machine.alloc_and_write(16, &[120, 4999, 25, 310])?;
//! let threshold = machine.alloc_and_write(16, &[200, 200, 200, 200])?;
//! let (cheap, _) = machine.binary(Operation::Greater, &threshold, &prices)?;
//! assert_eq!(machine.read(&cheap)?, vec![1, 0, 1, 0]);
//! # Ok::<(), simdram_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod config;
mod control_unit;
mod error;
mod estimate;
mod executor;
mod guard;
mod isa;
mod layout;
mod machine;
mod perf;
mod plan;
mod report;
mod timing_backend;
mod topology;
mod transpose;
mod verify;

pub use area::AreaModel;
pub use config::SimdramConfig;
pub use control_unit::ControlUnit;
pub use error::{CoreError, Result};
pub use estimate::{BankStateTotals, BroadcastEstimate, MachineEstimate, TraceEstimator};
pub use executor::{BroadcastExecutor, ExecutionPolicy, FunctionalMode};
pub use guard::{FaultError, FaultLog, GuardMode, DEFAULT_MAX_RETRIES, RETRY_BACKOFF_NS};
// Re-exported so downstream crates can populate `SimdramConfig::faults` without
// depending on `simdram-dram` directly.
pub use isa::{BbopInstruction, Mnemonic, TransposeDirection};
pub use layout::SimdVector;
pub use machine::{Reservation, SimdramMachine};
pub use perf::{ddr4, pud_performance, PerfPoint};
pub use plan::{Expr, Plan, PlanBuilder, PlanExecution, PlanOutput, Session};
pub use report::{ExecutionReport, MachineStats, PlanReport};
pub use simdram_dram::{EnvOverrideError, FaultModel};
pub use timing_backend::{BankStateBackend, TimingBackend, TimingBackendKind};
pub use topology::{
    DeviceHealth, FleetEstimate, LinkModel, MovementTotals, ShardMap, ShardPolicy, ShardedMachine,
    ShardedVector,
};
pub use transpose::{
    horizontal_to_vertical, transpose_64x64, vertical_to_horizontal, TranspositionUnit,
};
pub use verify::{mismatches, reference_elementwise};
