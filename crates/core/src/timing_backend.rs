//! Pluggable timing backends: the trait layer between broadcast execution and
//! timing/energy estimation.
//!
//! The machine's accounting has always been *trace-driven*: broadcast kernels return
//! per-chunk [`CommandTrace`]s, and an estimation engine folds them into a
//! [`BroadcastEstimate`]. This module makes the engine swappable:
//!
//! * [`TimingBackendKind::Analytic`] — the [`TraceEstimator`] math, unchanged and
//!   bit-identical to what the machine always computed: per-command template costs,
//!   max over lock-step chunks, serialized broadcasts.
//! * [`TimingBackendKind::BankState`] — the analytic numbers **plus** a bank-state
//!   replay of the same traces ([`simdram_dram::BankStateModel`]): open-row tracking,
//!   rank-wide ACTIVATE serialization (tRRD/tFAW) and tREFI/tRFC refresh
//!   interference. The replay rides in [`BroadcastEstimate::bank_state`]; the analytic
//!   fields are never touched, so selecting a backend cannot move the baseline
//!   numbers.
//!
//! Selection flows through [`crate::SimdramConfig::timing_backend`] and the
//! `SIMDRAM_TIMING` environment override (mirroring `SIMDRAM_EXEC`/`SIMDRAM_FUNC`),
//! so the machine, the plan runner and the `simdram-serve` layer all pick the backend
//! up without code changes.

use std::fmt;

use simdram_dram::energy::EnergyModel;
use simdram_dram::envopt::{self, EnvOverrideError};
use simdram_dram::{BankStateModel, BankTiming, CommandTrace, DramTiming};

use crate::estimate::{BroadcastEstimate, TraceEstimator};

/// Environment variable carrying the timing-backend override.
const TIMING_VAR: &str = "SIMDRAM_TIMING";
/// Accepted `SIMDRAM_TIMING` grammar, quoted in every rejection error.
const TIMING_EXPECTED: &str = "analytic | bankstate";

/// Which timing backend a machine folds its command traces through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingBackendKind {
    /// The analytic trace estimator: template costs, max over lock-step chunks (the
    /// reference behaviour, bit-identical to every prior release).
    #[default]
    Analytic,
    /// Analytic plus the bank-state replay (row-buffer state, ACTIVATE serialization,
    /// refresh interference) surfaced alongside the analytic numbers.
    BankState,
}

impl TimingBackendKind {
    /// The backend's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            TimingBackendKind::Analytic => "analytic",
            TimingBackendKind::BankState => "bankstate",
        }
    }

    /// Reads the `SIMDRAM_TIMING` environment override, surfacing malformed values as
    /// a typed [`EnvOverrideError`] instead of panicking or silently falling back.
    /// Returns `Ok(None)` only when the variable is unset.
    ///
    /// Recognized (case-insensitive) values: `analytic`, `bankstate`. This is how CI
    /// forces the whole tier-1 suite through the bank-state backend without code
    /// changes.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] when the variable is set but unrecognized.
    pub fn try_from_env() -> Result<Option<Self>, EnvOverrideError> {
        envopt::env_override(TIMING_VAR, TIMING_EXPECTED, Self::recognize)
    }

    /// Reads the `SIMDRAM_TIMING` environment override. Returns `None` only when the
    /// variable is unset, letting the caller fall back to its configured default.
    ///
    /// # Panics
    ///
    /// Panics on a set-but-unrecognized value. The variable exists solely as a
    /// test/CI override; silently ignoring a typo would let a CI job believe it
    /// exercised the bank-state backend while re-running the analytic path. Callers
    /// that want a recoverable failure use [`TimingBackendKind::try_from_env`].
    pub fn from_env() -> Option<Self> {
        Self::try_from_env().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Parses one `SIMDRAM_TIMING` override value with the shared normalization rules.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] on anything [`TimingBackendKind::try_from_env`]
    /// would reject.
    pub fn parse_override(raw: &str) -> Result<Self, EnvOverrideError> {
        envopt::parse_override(TIMING_VAR, TIMING_EXPECTED, raw, Self::recognize)
    }

    /// The pure grammar recognizer behind [`TimingBackendKind::parse_override`]:
    /// `value` is already trimmed and lowercased; `None` means "not in the grammar".
    fn recognize(value: &str) -> Option<Self> {
        match value {
            "analytic" => Some(TimingBackendKind::Analytic),
            "bankstate" => Some(TimingBackendKind::BankState),
            _ => None,
        }
    }

    /// Returns `true` for the bank-state variant.
    pub fn is_bank_state(self) -> bool {
        matches!(self, TimingBackendKind::BankState)
    }

    /// Builds the backend for this kind over the given timing/energy models.
    pub fn build(self, timing: DramTiming, energy: EnergyModel) -> Box<dyn TimingBackend> {
        match self {
            TimingBackendKind::Analytic => Box::new(TraceEstimator::new(timing, energy)),
            TimingBackendKind::BankState => {
                Box::new(BankStateBackend::new(timing, energy, BankTiming::default()))
            }
        }
    }
}

impl fmt::Display for TimingBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A timing backend: folds one broadcast's per-chunk command traces into a
/// [`BroadcastEstimate`].
///
/// Every implementation must keep the estimate's *analytic* fields (`latency_ns`,
/// `cycles`, `energy_nj`, `background_nj`, counts) bit-identical to
/// [`TraceEstimator::broadcast`] — higher-fidelity data goes in
/// [`BroadcastEstimate::bank_state`]. This is the contract that lets CI run the whole
/// suite under any backend without perturbing a single baseline number.
pub trait TimingBackend: fmt::Debug + Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> TimingBackendKind;

    /// Folds one broadcast's per-chunk traces into an estimate.
    fn broadcast(&self, traces: &[CommandTrace]) -> BroadcastEstimate;

    /// Whether broadcasts should retain per-command trace history for this backend.
    /// The bank-state replay classifies individual commands, so it asks the machine to
    /// keep history even in the compiled functional mode (aggregate-only traces fall
    /// back to analytic charging).
    fn wants_history(&self) -> bool {
        self.kind().is_bank_state()
    }
}

impl TimingBackend for TraceEstimator {
    fn kind(&self) -> TimingBackendKind {
        TimingBackendKind::Analytic
    }

    fn broadcast(&self, traces: &[CommandTrace]) -> BroadcastEstimate {
        TraceEstimator::broadcast(self, traces)
    }
}

/// The bank-state backend: analytic numbers with the bank-state replay attached.
#[derive(Debug, Clone, PartialEq)]
pub struct BankStateBackend {
    analytic: TraceEstimator,
    model: BankStateModel,
}

impl BankStateBackend {
    /// Creates a bank-state backend over the given timing/energy models.
    pub fn new(timing: DramTiming, energy: EnergyModel, bank: BankTiming) -> Self {
        let model = BankStateModel::new(timing.clone(), bank);
        BankStateBackend {
            analytic: TraceEstimator::new(timing, energy),
            model,
        }
    }

    /// The replay engine behind this backend.
    pub fn model(&self) -> &BankStateModel {
        &self.model
    }
}

impl TimingBackend for BankStateBackend {
    fn kind(&self) -> TimingBackendKind {
        TimingBackendKind::BankState
    }

    fn broadcast(&self, traces: &[CommandTrace]) -> BroadcastEstimate {
        let mut estimate = self.analytic.broadcast(traces);
        estimate.bank_state = Some(self.model.replay(traces));
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_dram::{BGroupRow, DramConfig, RowAddr, Subarray};

    fn sample_traces() -> Vec<CommandTrace> {
        let config = DramConfig::tiny();
        (0..2)
            .map(|_| {
                let mut sa = Subarray::new(&config);
                sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0))
                    .unwrap();
                sa.aap(RowAddr::Data(1), RowAddr::BGroup(BGroupRow::T1))
                    .unwrap();
                sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                    .unwrap();
                sa.trace().clone()
            })
            .collect()
    }

    #[test]
    fn env_override_parsing() {
        // parse_override is from_env minus the env read, so every branch is testable
        // without touching the process environment; the env-sensitive plumbing itself
        // is covered by CI running the suite under SIMDRAM_TIMING=bankstate.
        assert_eq!(
            TimingBackendKind::parse_override("analytic"),
            Ok(TimingBackendKind::Analytic)
        );
        assert_eq!(
            TimingBackendKind::parse_override(" BankState "),
            Ok(TimingBackendKind::BankState)
        );
        assert!(TimingBackendKind::BankState.is_bank_state());
        assert!(!TimingBackendKind::Analytic.is_bank_state());
        assert_eq!(TimingBackendKind::Analytic.to_string(), "analytic");
        assert_eq!(TimingBackendKind::BankState.name(), "bankstate");
    }

    #[test]
    fn env_override_rejects_typos_with_a_typed_error() {
        let err = TimingBackendKind::parse_override("bank-state").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_TIMING");
        assert_eq!(err.value, "bank-state");
        assert!(err.to_string().contains("analytic | bankstate"));
    }

    #[test]
    fn analytic_backend_delegates_bit_identically() {
        let timing = DramTiming::default();
        let energy = EnergyModel::default();
        let traces = sample_traces();
        let direct = TraceEstimator::new(timing.clone(), energy.clone()).broadcast(&traces);
        let via_trait = TimingBackendKind::Analytic
            .build(timing, energy)
            .broadcast(&traces);
        assert_eq!(direct, via_trait);
        assert!(via_trait.bank_state.is_none());
    }

    #[test]
    fn bankstate_backend_keeps_analytic_fields_and_attaches_a_replay() {
        let timing = DramTiming::default();
        let energy = EnergyModel::default();
        let traces = sample_traces();
        let analytic = TraceEstimator::new(timing.clone(), energy.clone()).broadcast(&traces);
        let backend = TimingBackendKind::BankState.build(timing, energy);
        assert!(backend.wants_history());
        let estimate = backend.broadcast(&traces);
        // Analytic fields untouched, bit for bit.
        assert_eq!(estimate.latency_ns.to_bits(), analytic.latency_ns.to_bits());
        assert_eq!(estimate.energy_nj.to_bits(), analytic.energy_nj.to_bits());
        assert_eq!(estimate.cycles, analytic.cycles);
        let replay = estimate.bank_state.expect("bankstate replay attached");
        assert!(replay.latency_ns >= estimate.latency_ns);
        assert_eq!(replay.chunks, 2);
    }
}
