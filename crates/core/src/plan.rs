//! The deferred dataflow frontend: build–compile–execute plans.
//!
//! The eager [`crate::SimdramMachine`] API executes one bbop per call: every
//! `binary`/`unary` allocates a destination, expands one μProgram and runs one broadcast.
//! That mirrors how a host program would issue individual bbop instructions, but the
//! paper's framework separates *what* to compute (a program over SIMD vectors) from *how*
//! the control unit schedules μPrograms onto subarrays — and scheduling whole expressions
//! at once is what enables temporary reuse and multi-op broadcast batching.
//!
//! This module is that frontend:
//!
//! 1. **Build** — compose operations on typed [`Expr`] handles with a [`PlanBuilder`]
//!    (no DRAM commands are issued; the builder only grows a dataflow graph).
//! 2. **Compile** — [`PlanBuilder::compile`] performs dead-code elimination,
//!    common-subexpression sharing, liveness analysis (so temporaries reuse row extents)
//!    and groups steps into per-level broadcast **batches**.
//! 3. **Execute** — [`crate::SimdramMachine::run_plan`] binds the compiled [`Plan`] to
//!    physical rows and hands each batch to the broadcast executor as **one** fused
//!    broadcast, so the threaded policy overlaps every step of a batch across banks and
//!    the modeled broadcast count drops below op-by-op issue.
//!
//! The eager convenience methods ([`crate::SimdramMachine::binary`] and friends) are kept
//! as sugar over one-node plans.
//!
//! # Examples
//!
//! ```
//! use simdram_core::{PlanBuilder, SimdramConfig, SimdramMachine};
//!
//! let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;
//! let a = machine.alloc_and_write(8, &[1, 2, 3, 250])?;
//! let b = machine.alloc_and_write(8, &[10, 20, 30, 40])?;
//!
//! let mut s = PlanBuilder::new();
//! let (xa, xb) = (s.input(&a), s.input(&b));
//! let sum = s.add(xa, xb)?;
//! let bigger = s.max(sum, xa)?;
//! let out = s.materialize(bigger)?;
//! let plan = s.compile()?;
//!
//! let exec = machine.run_plan(&plan)?;
//! assert_eq!(machine.read(exec.output(out))?, vec![11, 22, 33, 250]);
//! assert!(exec.report().broadcasts <= exec.report().eager_broadcasts);
//! # Ok::<(), simdram_core::CoreError>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use simdram_logic::{word_mask, Operation};

use crate::error::{CoreError, Result};
use crate::layout::SimdVector;
use crate::report::PlanReport;

/// Monotonic id source so [`Expr`] handles cannot be mixed up between builders.
static NEXT_BUILDER_ID: AtomicU64 = AtomicU64::new(0);

/// A typed handle to one node of a [`PlanBuilder`]'s dataflow graph.
///
/// Handles are small and `Copy`. They carry the node's element width and length so
/// expressions can be composed and shape-checked without consulting the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expr {
    builder: u64,
    node: usize,
    width: usize,
    len: usize,
}

impl Expr {
    /// Element width of the expression's value in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements the expression produces.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the expression produces no elements (never the case for
    /// builder-created expressions).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A handle to one materialized output of a compiled [`Plan`].
///
/// Obtained from [`PlanBuilder::materialize`]; after [`crate::SimdramMachine::run_plan`],
/// exchange it for the output's [`SimdVector`] with [`PlanExecution::output`]. The
/// handle remembers which builder it came from, so using it against another plan's
/// execution fails loudly instead of silently returning the wrong vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOutput {
    plan: u64,
    index: usize,
}

impl PlanOutput {
    /// Position of this output among the plan's materialized outputs — the index into
    /// [`PlanExecution::outputs`] (serving layers use it to key read-back host buffers).
    pub fn index(&self) -> usize {
        self.index
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum NodeKind {
    /// An existing machine vector read in place.
    Input,
    /// A constant broadcast into every element (row initialization from `C0`/`C1`).
    Constant(u64),
    /// A RowClone duplicate of another node (one AAP per bit-row).
    ///
    /// Inserted automatically when an operation's operands alias the same rows (e.g.
    /// `add(x, x)`, possibly created by subexpression sharing): the μProgram binding
    /// requires disjoint operand regions, so one side reads a copy.
    Copy(usize),
    /// One bbop operation over earlier nodes.
    Op {
        op: Operation,
        a: usize,
        b: Option<usize>,
        pred: Option<usize>,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    kind: NodeKind,
    /// For [`NodeKind::Input`], the vector being read. `None` otherwise.
    input: Option<SimdVector>,
    width: usize,
    len: usize,
}

/// Hash-consing key for common-subexpression sharing at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CseKey {
    Input(u64, usize, usize, usize),
    Constant(u64, usize, usize),
    Copy(usize),
    Op(Operation, usize, Option<usize>, Option<usize>),
}

/// Where a compiled node's result lives at run time.
#[derive(Debug, Clone)]
pub(crate) enum Storage {
    /// Inputs: read in place from the user's vector; never written by the plan.
    InPlace,
    /// A pooled temporary slot (row extent shared with other dead nodes).
    Slot(usize),
    /// A dedicated output allocation that survives the run.
    Output(usize),
    /// An existing vector supplied through [`PlanBuilder::store`].
    External(SimdVector),
}

/// One fused broadcast batch: every step in a batch executes back-to-back inside a
/// single broadcast kernel, per participating subarray.
///
/// Batches of one dataflow level but different element counts are independent of each
/// other; the scheduler groups them into one MIMD dispatch *window*
/// ([`Plan::window_count`]) so they share a single dispatch instead of serializing.
#[derive(Debug, Clone)]
pub(crate) struct Batch {
    /// Element count shared by every step of the batch (fixes the subarray coordinates).
    pub(crate) len: usize,
    /// Dataflow level shared by every step of the batch (windows group equal levels).
    pub(crate) level: usize,
    /// Node ids of the steps, in issue order.
    pub(crate) steps: Vec<usize>,
}

/// A compiled, machine-independent execution plan.
///
/// Produced by [`PlanBuilder::compile`]; executed by
/// [`crate::SimdramMachine::run_plan`]. The plan owns the optimized dataflow graph, the
/// temp-slot assignment and the broadcast batching, but no physical rows: binding to a
/// machine happens at run time, so one plan can be run repeatedly (or on several
/// machines with the same operand handles).
#[derive(Debug, Clone)]
pub struct Plan {
    /// Id of the builder that produced the plan (stamped into [`PlanOutput`] handles).
    builder_id: u64,
    nodes: Vec<Node>,
    storage: Vec<Storage>,
    /// Width (in rows) of every pooled temp slot.
    slot_widths: Vec<usize>,
    batches: Vec<Batch>,
    /// MIMD dispatch windows: each range covers the consecutive batches of one dataflow
    /// level (batches are level-ordered). All batches of a window are mutually
    /// independent and issue inside ONE dispatch.
    windows: Vec<std::ops::Range<usize>>,
    /// Node id per materialized output, indexed by [`PlanOutput`].
    outputs: Vec<usize>,
}

impl Plan {
    /// Number of materialized outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of nodes retained after dead-code elimination and subexpression sharing
    /// (inputs included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of executable steps (operations plus constant broadcasts).
    pub fn step_count(&self) -> usize {
        self.batches.iter().map(|b| b.steps.len()).sum()
    }

    /// Number of bbop operation steps (what the eager API would have issued as
    /// `execute` calls).
    pub fn op_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Op { .. }))
            .count()
    }

    /// Number of fused broadcast batches the plan issues.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Number of MIMD dispatch windows the plan issues: one per dataflow level that has
    /// any executable step. Always ≤ [`Plan::batch_count`]; strictly smaller exactly
    /// when some level holds independent steps of *different* element counts — those
    /// batches share one heterogeneous dispatch instead of serializing.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Number of windows that are genuinely MIMD, i.e. co-issue ≥ 2 batches with
    /// different lane counts in one dispatch.
    pub fn mixed_window_count(&self) -> usize {
        self.windows.iter().filter(|w| w.len() > 1).count()
    }

    /// Total data rows occupied by the pooled temporaries, after liveness-driven reuse.
    ///
    /// Eager execution allocates a fresh destination per operation; a compiled plan
    /// recycles extents as soon as their last reader has executed, so this is never
    /// larger than the eager footprint for the same expression.
    pub fn temp_rows(&self) -> usize {
        self.slot_widths.iter().sum()
    }

    /// The `(operation, operand width)` pairs whose μPrograms the plan needs, in step
    /// order (duplicates included). The machine hands this to the μProgram library's
    /// compile entry point before the first batch runs.
    pub fn programs_needed(&self) -> impl Iterator<Item = (Operation, usize)> + '_ {
        self.batches
            .iter()
            .flat_map(|b| b.steps.iter())
            .filter_map(|&id| match self.nodes[id].kind {
                NodeKind::Op { op, a, .. } => Some((op, self.nodes[a].width)),
                _ => None,
            })
    }

    /// The widest element count any single node computes over.
    ///
    /// This is the plan's lane demand: a placement must provide at least
    /// `max_elements().div_ceil(lanes_per_subarray)` subarray chunks
    /// (see [`subarrays_needed`](Self::subarrays_needed)).
    pub fn max_elements(&self) -> usize {
        self.batches.iter().map(|b| b.len).max().unwrap_or(0)
    }

    /// Number of subarray chunks the plan needs on a machine whose subarrays expose
    /// `lanes_per_subarray` lanes each — the minimum size for a
    /// [`Reservation`](crate::machine::Reservation) that can host this plan.
    pub fn subarrays_needed(&self, lanes_per_subarray: usize) -> usize {
        self.batches
            .iter()
            .map(|b| b.len.div_ceil(lanes_per_subarray).max(1))
            .max()
            .unwrap_or(1)
    }

    /// The machine-resident input vectors the plan reads (captured by
    /// [`PlanBuilder::input`]), in node order.
    pub fn input_vectors(&self) -> impl Iterator<Item = SimdVector> + '_ {
        self.nodes.iter().filter_map(|n| n.input)
    }

    pub(crate) fn builder_id(&self) -> u64 {
        self.builder_id
    }

    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub(crate) fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    pub(crate) fn storage_of(&self, id: usize) -> &Storage {
        &self.storage[id]
    }

    pub(crate) fn slot_widths(&self) -> &[usize] {
        &self.slot_widths
    }

    pub(crate) fn batches(&self) -> &[Batch] {
        &self.batches
    }

    pub(crate) fn windows(&self) -> &[std::ops::Range<usize>] {
        &self.windows
    }

    pub(crate) fn output_nodes(&self) -> &[usize] {
        &self.outputs
    }
}

impl Node {
    pub(crate) fn kind_op(&self) -> Option<(Operation, usize, Option<usize>, Option<usize>)> {
        match self.kind {
            NodeKind::Op { op, a, b, pred } => Some((op, a, b, pred)),
            _ => None,
        }
    }

    pub(crate) fn kind_constant(&self) -> Option<u64> {
        match self.kind {
            NodeKind::Constant(value) => Some(value),
            _ => None,
        }
    }

    pub(crate) fn kind_copy(&self) -> Option<usize> {
        match self.kind {
            NodeKind::Copy(src) => Some(src),
            _ => None,
        }
    }

    pub(crate) fn input_vector(&self) -> Option<SimdVector> {
        self.input
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

/// The result of running a [`Plan`]: the materialized output vectors plus the plan-level
/// cost accounting.
///
/// Output vectors are owned by the caller — free them with
/// [`crate::SimdramMachine::free`] when no longer needed. All pooled temporaries were
/// already released when `run_plan` returned.
#[derive(Debug, Clone)]
pub struct PlanExecution {
    plan_id: u64,
    outputs: Vec<SimdVector>,
    report: PlanReport,
}

impl PlanExecution {
    pub(crate) fn new(plan_id: u64, outputs: Vec<SimdVector>, report: PlanReport) -> Self {
        PlanExecution {
            plan_id,
            outputs,
            report,
        }
    }

    /// The vector materialized for `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` was obtained from a different builder's plan.
    pub fn output(&self, handle: PlanOutput) -> &SimdVector {
        assert_eq!(
            handle.plan, self.plan_id,
            "PlanOutput handle belongs to a different plan"
        );
        &self.outputs[handle.index]
    }

    /// All materialized outputs, in [`PlanBuilder::materialize`] order.
    pub fn outputs(&self) -> &[SimdVector] {
        &self.outputs
    }

    /// The plan-level execution report (fused broadcast count, latency, energy, and the
    /// per-step [`crate::ExecutionReport`]s).
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Consumes the execution, returning the outputs and the report.
    pub fn into_parts(self) -> (Vec<SimdVector>, PlanReport) {
        (self.outputs, self.report)
    }
}

/// Builds a lazy dataflow graph over SIMD vectors, then compiles it into a [`Plan`].
///
/// Also usable under the name [`Session`]. No DRAM work happens while building; every
/// method only grows (and shape-checks) the graph. Identical subexpressions are shared
/// as they are built, and anything not reachable from a materialized or stored node is
/// dropped by [`PlanBuilder::compile`].
#[derive(Debug)]
pub struct PlanBuilder {
    id: u64,
    nodes: Vec<Node>,
    cse: HashMap<CseKey, usize>,
    /// node id → output index, for materialized nodes.
    materialized: HashMap<usize, usize>,
    outputs: Vec<usize>,
    /// node id → external destination, for stored nodes.
    stored: HashMap<usize, SimdVector>,
}

/// Session-style alias for [`PlanBuilder`], matching the build–compile–execute
/// terminology used in the module docs.
pub type Session = PlanBuilder;

impl Default for PlanBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        PlanBuilder {
            id: NEXT_BUILDER_ID.fetch_add(1, Ordering::Relaxed),
            nodes: Vec::new(),
            cse: HashMap::new(),
            materialized: HashMap::new(),
            outputs: Vec::new(),
            stored: HashMap::new(),
        }
    }

    fn expr(&self, node: usize) -> Expr {
        Expr {
            builder: self.id,
            node,
            width: self.nodes[node].width,
            len: self.nodes[node].len,
        }
    }

    fn intern(&mut self, key: CseKey, node: Node) -> Expr {
        if let Some(&existing) = self.cse.get(&key) {
            return self.expr(existing);
        }
        let id = self.nodes.len();
        self.nodes.push(node);
        self.cse.insert(key, id);
        self.expr(id)
    }

    fn check(&self, e: Expr) -> Result<usize> {
        if e.builder != self.id || e.node >= self.nodes.len() {
            return Err(CoreError::Shape(
                "Expr belongs to a different PlanBuilder".into(),
            ));
        }
        Ok(e.node)
    }

    /// Exposes an existing machine vector to the plan. The vector is read in place; the
    /// plan never writes to it. Calling `input` twice with the same vector returns the
    /// same node.
    pub fn input(&mut self, vector: &SimdVector) -> Expr {
        let key = CseKey::Input(vector.id(), vector.base_row(), vector.width(), vector.len());
        self.intern(
            key,
            Node {
                kind: NodeKind::Input,
                input: Some(*vector),
                width: vector.width(),
                len: vector.len(),
            },
        )
    }

    /// A vector of `len` elements of `width` bits, each holding `value` (broadcast with
    /// row initialization from the control rows at run time). Identical constants are
    /// shared.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for invalid widths or an empty length.
    pub fn constant(&mut self, width: usize, len: usize, value: u64) -> Result<Expr> {
        if width == 0 || width > 64 {
            return Err(CoreError::Shape(format!(
                "element width must be in 1..=64, got {width}"
            )));
        }
        if len == 0 {
            return Err(CoreError::Shape(
                "cannot build an empty constant vector".into(),
            ));
        }
        let masked = value & word_mask(width);
        let key = CseKey::Constant(masked, width, len);
        Ok(self.intern(
            key,
            Node {
                kind: NodeKind::Constant(masked),
                input: None,
                width,
                len,
            },
        ))
    }

    /// Applies `op` to the given operands, returning the result expression.
    ///
    /// This is the generic entry point behind the [`PlanBuilder::add`]-style sugar;
    /// operand shapes are validated exactly like the eager
    /// [`crate::SimdramMachine::execute`] path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand/predicate mismatches.
    pub fn apply(
        &mut self,
        op: Operation,
        a: Expr,
        b: Option<Expr>,
        pred: Option<Expr>,
    ) -> Result<Expr> {
        let a_id = self.check(a)?;
        let b_id = match (op.uses_second_operand(), b) {
            (true, Some(b)) => {
                if b.width() != a.width() {
                    return Err(CoreError::Shape(format!(
                        "operand widths differ: A is {} bits, B is {} bits",
                        a.width(),
                        b.width()
                    )));
                }
                if b.len() != a.len() {
                    return Err(CoreError::Shape(format!(
                        "operand lengths differ: A has {} elements, B has {}",
                        a.len(),
                        b.len()
                    )));
                }
                Some(self.check(b)?)
            }
            (true, None) => {
                return Err(CoreError::Shape(format!(
                    "{op} requires a second source operand"
                )))
            }
            (false, Some(_)) => {
                return Err(CoreError::Shape(format!(
                    "{op} takes a single source operand but two were supplied"
                )))
            }
            (false, None) => None,
        };
        let pred_id = match (op.uses_predicate(), pred) {
            (true, Some(p)) => {
                if p.width() != 1 {
                    return Err(CoreError::Shape(format!(
                        "predicate must be 1 bit wide, got {} bits",
                        p.width()
                    )));
                }
                if p.len() != a.len() {
                    return Err(CoreError::Shape(format!(
                        "predicate length {} does not match operand length {}",
                        p.len(),
                        a.len()
                    )));
                }
                Some(self.check(p)?)
            }
            (true, None) => {
                return Err(CoreError::Shape(format!(
                    "{op} requires a 1-bit predicate vector"
                )))
            }
            (false, Some(_)) => {
                return Err(CoreError::Shape(format!(
                    "{op} is not a predicated operation"
                )))
            }
            (false, None) => None,
        };
        // The μProgram binding requires disjoint operand row regions, so when two
        // operands resolve to the same node (written directly, or merged by
        // subexpression sharing) one side reads an automatically inserted RowClone copy.
        let b_id = match b_id {
            Some(b) if b == a_id => Some(self.copy_of(b)),
            other => other,
        };
        let pred_id = match pred_id {
            Some(p) if p == a_id || Some(p) == b_id => {
                let mut copy = self.copy_of(p);
                if Some(copy) == b_id {
                    // a, b and pred were all one node: b already took the shared copy,
                    // so the predicate reads a copy of the copy.
                    copy = self.copy_of(copy);
                }
                Some(copy)
            }
            other => other,
        };
        let key = CseKey::Op(op, a_id, b_id, pred_id);
        Ok(self.intern(
            key,
            Node {
                kind: NodeKind::Op {
                    op,
                    a: a_id,
                    b: b_id,
                    pred: pred_id,
                },
                input: None,
                width: op.output_width(a.width()),
                len: a.len(),
            },
        ))
    }

    /// Returns (creating if needed) the RowClone-copy node of `src`; one copy is shared
    /// by every operation that needs `src` de-aliased.
    fn copy_of(&mut self, src: usize) -> usize {
        let width = self.nodes[src].width;
        let len = self.nodes[src].len;
        self.intern(
            CseKey::Copy(src),
            Node {
                kind: NodeKind::Copy(src),
                input: None,
                width,
                len,
            },
        )
        .node
    }

    /// Two-operand operation sugar over [`PlanBuilder::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn binary(&mut self, op: Operation, a: Expr, b: Expr) -> Result<Expr> {
        self.apply(op, a, Some(b), None)
    }

    /// Single-operand operation sugar over [`PlanBuilder::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn unary(&mut self, op: Operation, a: Expr) -> Result<Expr> {
        self.apply(op, a, None, None)
    }

    /// `a + b` (mod 2^width).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn add(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::Add, a, b)
    }

    /// `a - b` (mod 2^width).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn sub(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::Sub, a, b)
    }

    /// `a × b` (low `width` bits).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn mul(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::Mul, a, b)
    }

    /// Unsigned `min(a, b)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn min(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::Min, a, b)
    }

    /// Unsigned `max(a, b)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn max(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::Max, a, b)
    }

    /// Unsigned `a > b` (1-bit result).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn greater(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::Greater, a, b)
    }

    /// Unsigned `a >= b` (1-bit result).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn greater_equal(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.binary(Operation::GreaterEqual, a, b)
    }

    /// Two's-complement `|a|`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand mismatches.
    pub fn abs(&mut self, a: Expr) -> Result<Expr> {
        self.unary(Operation::Abs, a)
    }

    /// Predicated select: `pred ? a : b` (SIMDRAM's if-then-else).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for operand/predicate mismatches.
    pub fn select(&mut self, pred: Expr, a: Expr, b: Expr) -> Result<Expr> {
        self.apply(Operation::IfElse, a, Some(b), Some(pred))
    }

    /// Marks `expr` as a plan output: at run time a fresh vector is allocated for it and
    /// returned through [`PlanExecution::output`]. Materializing the same expression
    /// twice returns the same handle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] when `expr` is a plain input (nothing is computed —
    /// read the original vector, or copy it with [`crate::SimdramMachine::copy`]) or
    /// already bound to an external destination via [`PlanBuilder::store`].
    pub fn materialize(&mut self, expr: Expr) -> Result<PlanOutput> {
        let node = self.check(expr)?;
        if matches!(self.nodes[node].kind, NodeKind::Input) {
            return Err(CoreError::Shape(
                "cannot materialize a plain input expression: it computes nothing".into(),
            ));
        }
        if self.stored.contains_key(&node) {
            return Err(CoreError::Shape(
                "expression is already bound to an external destination".into(),
            ));
        }
        if let Some(&index) = self.materialized.get(&node) {
            return Ok(PlanOutput {
                plan: self.id,
                index,
            });
        }
        let index = self.outputs.len();
        self.outputs.push(node);
        self.materialized.insert(node, index);
        Ok(PlanOutput {
            plan: self.id,
            index,
        })
    }

    /// Binds `expr`'s result to an existing vector instead of a fresh allocation (the
    /// eager `execute`-into-destination pattern).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] when the destination shape does not match, when
    /// `expr` is a plain input, or when the expression already has a destination.
    pub fn store(&mut self, expr: Expr, dst: &SimdVector) -> Result<()> {
        let node = self.check(expr)?;
        if matches!(self.nodes[node].kind, NodeKind::Input) {
            return Err(CoreError::Shape(
                "cannot store a plain input expression: it computes nothing".into(),
            ));
        }
        if dst.width() != expr.width() {
            return Err(CoreError::Shape(format!(
                "destination width {} does not match the expression's output width {}",
                dst.width(),
                expr.width()
            )));
        }
        if dst.len() < expr.len() {
            return Err(CoreError::Shape(format!(
                "destination holds {} elements but {} are being produced",
                dst.len(),
                expr.len()
            )));
        }
        if self.materialized.contains_key(&node) || self.stored.contains_key(&node) {
            return Err(CoreError::Shape(
                "expression already has a destination".into(),
            ));
        }
        self.stored.insert(node, *dst);
        Ok(())
    }

    /// Compiles the graph into a [`Plan`]: dead code is eliminated, shared
    /// subexpressions are already merged (hash-consing at build time), temporaries are
    /// assigned to pooled row slots by liveness, and steps are grouped into fused
    /// broadcast batches by dataflow level.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if nothing was materialized or stored.
    pub fn compile(self) -> Result<Plan> {
        if self.outputs.is_empty() && self.stored.is_empty() {
            return Err(CoreError::Shape(
                "plan has no outputs: materialize or store at least one expression".into(),
            ));
        }

        // --- Dead-code elimination: keep only nodes reachable from a destination.
        let mut live = vec![false; self.nodes.len()];
        let mut work: Vec<usize> = self
            .outputs
            .iter()
            .copied()
            .chain(self.stored.keys().copied())
            .collect();
        while let Some(id) = work.pop() {
            if std::mem::replace(&mut live[id], true) {
                continue;
            }
            match self.nodes[id].kind {
                NodeKind::Op { a, b, pred, .. } => {
                    work.push(a);
                    work.extend(b);
                    work.extend(pred);
                }
                NodeKind::Copy(src) => work.push(src),
                NodeKind::Input | NodeKind::Constant(_) => {}
            }
        }

        // --- Compact to new ids (operands always precede users, preserving topo order).
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut nodes: Vec<Node> = Vec::new();
        for (id, node) in self.nodes.into_iter().enumerate() {
            if !live[id] {
                continue;
            }
            let mut node = node;
            match node.kind {
                NodeKind::Op {
                    ref mut a,
                    ref mut b,
                    ref mut pred,
                    ..
                } => {
                    *a = remap[*a];
                    if let Some(b) = b.as_mut() {
                        *b = remap[*b];
                    }
                    if let Some(p) = pred.as_mut() {
                        *p = remap[*p];
                    }
                }
                NodeKind::Copy(ref mut src) => *src = remap[*src],
                NodeKind::Input | NodeKind::Constant(_) => {}
            }
            remap[id] = nodes.len();
            nodes.push(node);
        }
        let outputs: Vec<usize> = self.outputs.iter().map(|&id| remap[id]).collect();
        let stored: HashMap<usize, SimdVector> = self
            .stored
            .iter()
            .map(|(&id, &dst)| (remap[id], dst))
            .collect();
        let materialized: HashMap<usize, usize> = outputs
            .iter()
            .enumerate()
            .map(|(index, &id)| (id, index))
            .collect();

        // --- Destination aliasing: the scheduler orders steps by dataflow level only,
        // so a stored destination overlapping a live input's rows could be clobbered
        // before (or while) other steps still read that input. Reject row overlap
        // between external destinations and retained inputs, and between two external
        // destinations, up front.
        let overlaps = |a: &SimdVector, b: &SimdVector| {
            a.base_row() < b.base_row() + b.width() && b.base_row() < a.base_row() + a.width()
        };
        let externals: Vec<&SimdVector> = stored.values().collect();
        for dst in &externals {
            for node in &nodes {
                if let Some(input) = node.input {
                    if overlaps(dst, &input) {
                        return Err(CoreError::Shape(format!(
                            "stored destination rows {}..{} overlap input rows {}..{}: \
                             a plan may not write over rows it reads",
                            dst.base_row(),
                            dst.base_row() + dst.width(),
                            input.base_row(),
                            input.base_row() + input.width()
                        )));
                    }
                }
            }
        }
        for (i, a) in externals.iter().enumerate() {
            for b in externals.iter().skip(i + 1) {
                if overlaps(a, b) {
                    return Err(CoreError::Shape(format!(
                        "two stored destinations overlap (rows {}..{} and {}..{})",
                        a.base_row(),
                        a.base_row() + a.width(),
                        b.base_row(),
                        b.base_row() + b.width()
                    )));
                }
            }
        }

        // --- Dataflow levels: inputs and constants are ready at level 0; an operation
        // runs one level after its latest operand.
        let mut level = vec![0usize; nodes.len()];
        for id in 0..nodes.len() {
            match nodes[id].kind {
                NodeKind::Op { a, b, pred, .. } => {
                    let mut l = level[a];
                    if let Some(b) = b {
                        l = l.max(level[b]);
                    }
                    if let Some(p) = pred {
                        l = l.max(level[p]);
                    }
                    level[id] = l + 1;
                }
                NodeKind::Copy(src) => level[id] = level[src] + 1,
                NodeKind::Input | NodeKind::Constant(_) => {}
            }
        }

        // --- Liveness: a temporary dies after the level of its last reader, and its
        // slot becomes reusable from the *next* level on (steps of one level run inside
        // one fused broadcast, so same-level reuse is never allowed).
        let mut death = vec![0usize; nodes.len()];
        for id in 0..nodes.len() {
            match nodes[id].kind {
                NodeKind::Op { a, b, pred, .. } => {
                    for operand in [Some(a), b, pred].into_iter().flatten() {
                        death[operand] = death[operand].max(level[id]);
                    }
                }
                NodeKind::Copy(src) => death[src] = death[src].max(level[id]),
                NodeKind::Input | NodeKind::Constant(_) => {}
            }
        }

        // --- Slot assignment, walking levels in order.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by_key(|&id| (level[id], id));
        let mut storage: Vec<Storage> = vec![Storage::InPlace; nodes.len()];
        let mut slot_widths: Vec<usize> = Vec::new();
        let mut free_by_width: HashMap<usize, Vec<usize>> = HashMap::new();
        // (death level, slot, width) of live pooled temporaries.
        let mut pending: Vec<(usize, usize, usize)> = Vec::new();
        let mut current_level = 0usize;
        for &id in &order {
            if level[id] > current_level {
                current_level = level[id];
                pending.retain(|&(dies, slot, width)| {
                    if dies < current_level {
                        free_by_width.entry(width).or_default().push(slot);
                        false
                    } else {
                        true
                    }
                });
            }
            match nodes[id].kind {
                NodeKind::Input => {}
                NodeKind::Constant(_) | NodeKind::Copy(_) | NodeKind::Op { .. } => {
                    if let Some(&index) = materialized.get(&id) {
                        storage[id] = Storage::Output(index);
                    } else if let Some(dst) = stored.get(&id) {
                        storage[id] = Storage::External(*dst);
                    } else {
                        let width = nodes[id].width;
                        let slot = match free_by_width.entry(width).or_default().pop() {
                            Some(slot) => slot,
                            None => {
                                slot_widths.push(width);
                                slot_widths.len() - 1
                            }
                        };
                        storage[id] = Storage::Slot(slot);
                        pending.push((death[id], slot, width));
                    }
                }
            }
        }

        // --- Batching: steps of one level with one element count fuse into a single
        // broadcast (identical subarray coordinates on any machine). The walk follows
        // `order` (sorted by level), so batches come out level-ordered.
        let mut batches: Vec<Batch> = Vec::new();
        let mut batch_index: HashMap<(usize, usize), usize> = HashMap::new();
        for &id in &order {
            if matches!(nodes[id].kind, NodeKind::Input) {
                continue;
            }
            let key = (level[id], nodes[id].len);
            let index = *batch_index.entry(key).or_insert_with(|| {
                batches.push(Batch {
                    len: nodes[id].len,
                    level: level[id],
                    steps: Vec::new(),
                });
                batches.len() - 1
            });
            batches[index].steps.push(id);
        }

        // --- MIMD windows: consecutive batches of one level are mutually independent
        // (same-level steps never read each other), so they co-issue as ONE
        // heterogeneous dispatch. With uniform element counts every window holds
        // exactly one batch and the schedule is identical to the pre-window one.
        let mut windows: Vec<std::ops::Range<usize>> = Vec::new();
        for (index, batch) in batches.iter().enumerate() {
            match windows.last_mut() {
                Some(window) if batches[window.start].level == batch.level => {
                    window.end = index + 1;
                }
                _ => windows.push(index..index + 1),
            }
        }

        Ok(Plan {
            builder_id: self.id,
            nodes,
            storage,
            slot_widths,
            batches,
            windows,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(id: u64, base: usize, width: usize, len: usize) -> SimdVector {
        SimdVector::new(id, base, width, len)
    }

    fn builder_with_inputs() -> (PlanBuilder, Expr, Expr) {
        let mut b = PlanBuilder::new();
        let a = b.input(&vector(1, 0, 8, 100));
        let c = b.input(&vector(2, 8, 8, 100));
        (b, a, c)
    }

    #[test]
    fn common_subexpressions_are_shared() {
        let (mut b, x, y) = builder_with_inputs();
        let s1 = b.add(x, y).unwrap();
        let s2 = b.add(x, y).unwrap();
        assert_eq!(s1, s2);
        let c1 = b.constant(8, 100, 0x1FF).unwrap();
        let c2 = b.constant(8, 100, 0xFF).unwrap(); // masked to the same 8-bit value
        assert_eq!(c1, c2);
        // Same vector passed twice is one input node.
        let again = b.input(&vector(1, 0, 8, 100));
        assert_eq!(again, x);
    }

    #[test]
    fn dead_code_is_eliminated() {
        let (mut b, x, y) = builder_with_inputs();
        let used = b.add(x, y).unwrap();
        let _unused = b.mul(x, y).unwrap();
        let _unused_const = b.constant(8, 100, 7).unwrap();
        b.materialize(used).unwrap();
        let plan = b.compile().unwrap();
        // 2 inputs + 1 op: the unused multiply and constant are gone.
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.op_count(), 1);
        assert_eq!(plan.step_count(), 1);
    }

    #[test]
    fn shape_mismatches_are_rejected_at_build_time() {
        let mut b = PlanBuilder::new();
        let narrow = b.input(&vector(1, 0, 8, 10));
        let wide = b.input(&vector(2, 8, 16, 10));
        let short = b.input(&vector(3, 24, 8, 5));
        assert!(matches!(b.add(narrow, wide), Err(CoreError::Shape(_))));
        assert!(matches!(b.add(narrow, short), Err(CoreError::Shape(_))));
        assert!(matches!(
            b.apply(Operation::Add, narrow, None, None),
            Err(CoreError::Shape(_))
        ));
        assert!(matches!(
            b.apply(Operation::Abs, narrow, Some(narrow), None),
            Err(CoreError::Shape(_))
        ));
        // Predicates must be 1-bit and of matching length.
        assert!(matches!(
            b.select(narrow, narrow, narrow),
            Err(CoreError::Shape(_))
        ));
        assert!(matches!(b.constant(0, 10, 1), Err(CoreError::Shape(_))));
        assert!(matches!(b.constant(8, 0, 1), Err(CoreError::Shape(_))));
    }

    #[test]
    fn exprs_cannot_cross_builders() {
        let (mut b, x, _) = builder_with_inputs();
        let (mut other, foreign, _) = builder_with_inputs();
        assert!(matches!(b.add(x, foreign), Err(CoreError::Shape(_))));
        let theirs = other.add(foreign, foreign).unwrap();
        assert!(matches!(b.materialize(theirs), Err(CoreError::Shape(_))));
    }

    #[test]
    fn plans_need_an_output() {
        let (mut b, x, y) = builder_with_inputs();
        b.add(x, y).unwrap();
        assert!(matches!(b.compile(), Err(CoreError::Shape(_))));
    }

    #[test]
    fn inputs_cannot_be_materialized_or_stored() {
        let (mut b, x, _) = builder_with_inputs();
        assert!(matches!(b.materialize(x), Err(CoreError::Shape(_))));
        let dst = vector(9, 32, 8, 100);
        assert!(matches!(b.store(x, &dst), Err(CoreError::Shape(_))));
    }

    #[test]
    fn store_validates_destination_shape_and_uniqueness() {
        let (mut b, x, y) = builder_with_inputs();
        let sum = b.add(x, y).unwrap();
        let wrong_width = vector(9, 32, 16, 100);
        assert!(matches!(
            b.store(sum, &wrong_width),
            Err(CoreError::Shape(_))
        ));
        let too_short = vector(9, 32, 8, 10);
        assert!(matches!(b.store(sum, &too_short), Err(CoreError::Shape(_))));
        let dst = vector(9, 32, 8, 100);
        b.store(sum, &dst).unwrap();
        assert!(matches!(b.store(sum, &dst), Err(CoreError::Shape(_))));
        assert!(matches!(b.materialize(sum), Err(CoreError::Shape(_))));
        let plan = b.compile().unwrap();
        assert_eq!(plan.output_count(), 0);
        assert_eq!(plan.step_count(), 1);
    }

    #[test]
    fn stored_destinations_may_not_alias_plan_inputs_or_each_other() {
        // Writing over rows the plan still reads would be reordered freely by the
        // level scheduler — rejected at compile time.
        let (mut b, x, y) = builder_with_inputs();
        let sum = b.add(x, y).unwrap();
        let prod = b.mul(x, y).unwrap();
        b.materialize(prod).unwrap();
        let aliases_x = vector(9, 4, 8, 100); // overlaps input x (rows 0..8)
        b.store(sum, &aliases_x).unwrap();
        assert!(matches!(b.compile(), Err(CoreError::Shape(_))));

        // Two stores into overlapping destinations are rejected too.
        let (mut b, x, y) = builder_with_inputs();
        let sum = b.add(x, y).unwrap();
        let diff = b.sub(x, y).unwrap();
        b.store(sum, &vector(9, 32, 8, 100)).unwrap();
        b.store(diff, &vector(10, 36, 8, 100)).unwrap();
        assert!(matches!(b.compile(), Err(CoreError::Shape(_))));

        // Disjoint destinations compile fine.
        let (mut b, x, y) = builder_with_inputs();
        let sum = b.add(x, y).unwrap();
        b.store(sum, &vector(9, 32, 8, 100)).unwrap();
        assert!(b.compile().is_ok());
    }

    #[test]
    #[should_panic(expected = "different plan")]
    fn plan_output_handles_do_not_cross_plans() {
        let (mut b, x, y) = builder_with_inputs();
        let sum = b.add(x, y).unwrap();
        let foreign = b.materialize(sum).unwrap();
        // An execution of a DIFFERENT plan must reject the handle.
        let exec = PlanExecution::new(u64::MAX, vec![vector(1, 0, 8, 4)], PlanReport::default());
        let _ = exec.output(foreign);
    }

    #[test]
    fn materializing_twice_returns_the_same_handle() {
        let (mut b, x, y) = builder_with_inputs();
        let sum = b.add(x, y).unwrap();
        let o1 = b.materialize(sum).unwrap();
        let o2 = b.materialize(sum).unwrap();
        assert_eq!(o1, o2);
        let plan = b.compile().unwrap();
        assert_eq!(plan.output_count(), 1);
    }

    #[test]
    fn liveness_reuses_temporary_slots_across_levels() {
        // d = |x - q1| + |x - q2|: the two subs die when the two abs execute, and the
        // abs results die at the final add, so 4 pooled 8-row slots suffice (the eager
        // path would have allocated 5 intermediates of 8 rows plus the output).
        let (mut b, x, y) = builder_with_inputs();
        let d1 = b.sub(x, y).unwrap();
        let d2 = b.sub(y, x).unwrap();
        let a1 = b.abs(d1).unwrap();
        let a2 = b.abs(d2).unwrap();
        let sum = b.add(a1, a2).unwrap();
        b.materialize(sum).unwrap();
        let plan = b.compile().unwrap();
        assert_eq!(plan.op_count(), 5);
        // Slots: {d1, d2} at level 1, reused by {a1, a2} only from level 3 on — here the
        // abs nodes run at level 2 while the subs are still their live inputs, so 4
        // slots are needed; the eager equivalent would hold all 5 temporaries at once.
        assert_eq!(plan.temp_rows(), 4 * 8);
        // Levels: subs, abs, add = 3 batches vs 5 eager broadcasts.
        assert_eq!(plan.batch_count(), 3);
        assert!(plan.batch_count() < plan.step_count());
    }

    #[test]
    fn batches_group_independent_steps_of_one_level() {
        let (mut b, x, y) = builder_with_inputs();
        let s = b.add(x, y).unwrap();
        let d = b.sub(x, y).unwrap();
        let m = b.mul(x, y).unwrap();
        let t = b.max(s, d).unwrap();
        let u = b.min(t, m).unwrap();
        b.materialize(u).unwrap();
        let plan = b.compile().unwrap();
        // Level 1: {add, sub, mul} fused; level 2: {max}; level 3: {min}.
        assert_eq!(plan.batch_count(), 3);
        assert_eq!(plan.step_count(), 5);
        let sizes: Vec<usize> = plan.batches().iter().map(|b| b.steps.len()).collect();
        assert_eq!(sizes, vec![3, 1, 1]);
    }

    #[test]
    fn aliased_operands_read_an_inserted_copy() {
        let (mut b, x, _) = builder_with_inputs();
        // add(x, x): the second operand must be de-aliased through a RowClone copy.
        let doubled = b.add(x, x).unwrap();
        b.materialize(doubled).unwrap();
        let plan = b.compile().unwrap();
        // input + copy + add.
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.step_count(), 2);
        assert_eq!(plan.op_count(), 1);
        // The copy runs in the batch before the add (the add reads it).
        assert_eq!(plan.batch_count(), 2);

        // CSE-created aliasing takes the same path, and the copy is shared.
        let (mut b, x, y) = builder_with_inputs();
        let d1 = b.sub(x, y).unwrap();
        let d2 = b.sub(x, y).unwrap(); // same node as d1
        assert_eq!(d1, d2);
        let prod = b.mul(d1, d2).unwrap();
        let prod2 = b.mul(d2, d1).unwrap(); // de-aliases to the same (a, copy) pair
        assert_eq!(prod, prod2);
        let total = b.add(prod, prod2).unwrap();
        b.materialize(total).unwrap();
        let plan = b.compile().unwrap();
        // x, y, sub, copy(sub), mul, copy(mul), add.
        assert_eq!(plan.node_count(), 7);
    }

    #[test]
    fn programs_needed_lists_each_op_with_operand_width() {
        let (mut b, x, y) = builder_with_inputs();
        let gt = b.greater(x, y).unwrap(); // 1-bit output of an 8-bit compare
        let pick = b.select(gt, x, y).unwrap();
        b.materialize(pick).unwrap();
        let plan = b.compile().unwrap();
        let programs: Vec<(Operation, usize)> = plan.programs_needed().collect();
        assert_eq!(
            programs,
            vec![(Operation::Greater, 8), (Operation::IfElse, 8)]
        );
    }

    #[test]
    fn constants_are_scheduled_in_the_first_batch() {
        let (mut b, x, _) = builder_with_inputs();
        let c = b.constant(8, 100, 42).unwrap();
        let sum = b.add(x, c).unwrap();
        b.materialize(sum).unwrap();
        let plan = b.compile().unwrap();
        assert_eq!(plan.batch_count(), 2);
        assert_eq!(plan.batches()[0].steps.len(), 1); // the constant broadcast
        assert_eq!(plan.step_count(), 2);
        assert_eq!(plan.op_count(), 1);
    }
}
