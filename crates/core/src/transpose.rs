//! The transposition unit: converting between horizontal and vertical data layouts.
//!
//! SIMDRAM stores compute data *vertically* (all bits of an element in one bitline) while
//! the CPU reads and writes DRAM *horizontally* (all bits of an element in one row, accessed
//! a cache line at a time). The paper adds a transposition unit to the memory controller
//! that converts between the two layouts at object granularity, so only data that is
//! actually used for in-DRAM computation pays the conversion cost and the rest of memory
//! keeps the conventional layout and full CPU bandwidth.
//!
//! This module provides both the *functional* transposition (a 64×64 bit-matrix transpose,
//! the building block the hardware unit would use) and an *analytical* cost model for
//! transposing whole objects through the memory controller.

use simdram_dram::{energy::EnergyModel, DramTiming};

/// Transposes a 64×64 bit matrix held as 64 row words.
///
/// Bit `j` of input word `i` becomes bit `i` of output word `j`. This is the core primitive
/// of the transposition unit: a horizontal cache line's worth of 64-bit elements becomes 64
/// vertical bit-slices (and vice versa — the transform is an involution).
///
/// The software model runs the same 6-stage butterfly network the hardware unit would
/// use: each stage swaps square sub-blocks with word-wide masked XORs (the classic
/// recursive block-transpose), so the cost is ~6 × 64 branch-free word operations,
/// independent of how many bits are set.
///
/// # Examples
///
/// ```
/// use simdram_core::transpose_64x64;
///
/// let mut matrix = [0u64; 64];
/// matrix[3] = 1 << 10; // row 3, column 10
/// let t = transpose_64x64(&matrix);
/// assert_eq!(t[10], 1 << 3); // row 10, column 3
/// assert_eq!(transpose_64x64(&t), matrix);
/// ```
pub fn transpose_64x64(rows: &[u64; 64]) -> [u64; 64] {
    let mut m = *rows;
    // Stage s swaps, for every 2j×2j block on the diagonal, its upper-right and
    // lower-left j×j sub-blocks (j = 32, 16, …, 1): a delta-swap between row r's high
    // (column ≥ j) bits and row r+j's low bits.
    let mut j = 32usize;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (m[k] >> j ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
    m
}

/// Analytic latency/energy model of the memory-controller transposition unit.
///
/// The unit streams data between the channel and a small SRAM holding one 64×64 tile;
/// transposing an object of `n` `width`-bit elements therefore moves `n × width` bits twice
/// (read horizontally, write vertically, or vice versa) plus a fixed per-tile pipeline
/// latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TranspositionUnit {
    /// Pipeline latency of transposing one 64×64 tile, in nanoseconds.
    pub tile_latency_ns: f64,
    /// Energy of transposing one 64×64 tile inside the unit's SRAM, in nanojoules.
    pub tile_energy_nj: f64,
    timing: DramTiming,
    energy: EnergyModel,
}

impl TranspositionUnit {
    /// Creates the unit with the paper's assumptions: the tile transpose is pipelined behind
    /// the DRAM accesses, costing a few nanoseconds and a fraction of a nanojoule per tile.
    pub fn new(timing: DramTiming, energy: EnergyModel) -> Self {
        TranspositionUnit {
            tile_latency_ns: 4.0,
            tile_energy_nj: 0.1,
            timing,
            energy,
        }
    }

    /// Number of 64×64 tiles needed to transpose `elements` elements of `width` bits.
    pub fn tiles(&self, elements: usize, width: usize) -> usize {
        elements.div_ceil(64) * width.div_ceil(64).max(1)
    }

    /// Latency in nanoseconds of transposing an object of `elements` × `width` bits,
    /// including reading it from DRAM in one layout and writing it back in the other.
    pub fn latency_ns(&self, elements: usize, width: usize) -> f64 {
        let bytes = (elements * width).div_ceil(8);
        let tiles = self.tiles(elements, width) as f64;
        self.timing.row_read_ns(bytes)
            + self.timing.row_write_ns(bytes)
            + tiles * self.tile_latency_ns
    }

    /// Energy in nanojoules of transposing an object of `elements` × `width` bits.
    pub fn energy_nj(&self, elements: usize, width: usize) -> f64 {
        let bits = elements * width;
        let tiles = self.tiles(elements, width) as f64;
        // The data crosses the on-DIMM datapath twice (read + write) plus the tile SRAM.
        2.0 * self.energy.array_access_nj(bits) + tiles * self.tile_energy_nj
    }
}

/// Transposes `values` (one `width`-bit element each, element `i` in lane `i`) into
/// `width` bit-slices of `lanes` bits packed as `u64` words (LSB-first lane order).
///
/// Slice `b` of the result holds bit `b` of every element — exactly the contents of DRAM row
/// `base + b` in SIMDRAM's vertical layout. [`vertical_to_horizontal`] is the inverse.
///
/// The conversion is word-tiled: each group of 64 lanes forms one 64×64 tile that is
/// transposed with [`transpose_64x64`] — the same primitive the hardware unit pipelines —
/// so the cost is one tile transpose per 64 lanes instead of one inner loop per bit.
/// `width` must be at most 64 (elements are `u64`s).
pub fn horizontal_to_vertical(values: &[u64], width: usize, lanes: usize) -> Vec<Vec<u64>> {
    let words_per_slice = lanes.div_ceil(64);
    let mut slices = vec![vec![0u64; words_per_slice]; width];
    let used = values.len().min(lanes);
    let mut tile = [0u64; 64];
    for w in 0..words_per_slice {
        let base = w * 64;
        let n = used.saturating_sub(base).min(64);
        if n == 0 {
            break;
        }
        tile[..n].copy_from_slice(&values[base..base + n]);
        tile[n..].fill(0);
        let transposed = transpose_64x64(&tile);
        for (slice, &word) in slices.iter_mut().zip(&transposed) {
            slice[w] = word;
        }
    }
    slices
}

/// Inverse of [`horizontal_to_vertical`]: reassembles per-element values from bit-slices.
///
/// Word-tiled like the forward conversion. Accepts any word-slice representation of the
/// vertical layout (`Vec<u64>` rows, borrowed `&[u64]` DRAM row words, …); slices shorter
/// than `lanes` bits are treated as zero-padded.
pub fn vertical_to_horizontal<S: AsRef<[u64]>>(
    slices: &[S],
    width: usize,
    lanes: usize,
) -> Vec<u64> {
    let mut values = vec![0u64; lanes];
    let width = width.min(slices.len()).min(64);
    let mut tile = [0u64; 64];
    for w in 0..lanes.div_ceil(64) {
        let base = w * 64;
        for (bit, row) in tile.iter_mut().enumerate() {
            *row = if bit < width {
                slices[bit].as_ref().get(w).copied().unwrap_or(0)
            } else {
                0
            };
        }
        let transposed = transpose_64x64(&tile);
        let n = (lanes - base).min(64);
        values[base..base + n].copy_from_slice(&transposed[..n]);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_dram::DramConfig;

    #[test]
    fn transpose_is_an_involution() {
        let mut matrix = [0u64; 64];
        for (i, row) in matrix.iter_mut().enumerate() {
            *row = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 17;
        }
        let once = transpose_64x64(&matrix);
        let twice = transpose_64x64(&once);
        assert_eq!(twice, matrix);
    }

    #[test]
    fn transpose_moves_single_bits_correctly() {
        for (row, col) in [(0usize, 0usize), (5, 63), (63, 5), (17, 42)] {
            let mut matrix = [0u64; 64];
            matrix[row] = 1 << col;
            let t = transpose_64x64(&matrix);
            for (i, &word) in t.iter().enumerate() {
                let expected = if i == col { 1u64 << row } else { 0 };
                assert_eq!(word, expected, "row {row} col {col} output word {i}");
            }
        }
    }

    #[test]
    fn horizontal_vertical_roundtrip() {
        let values: Vec<u64> = (0..100u64)
            .map(|i| i.wrapping_mul(2654435761) & 0xFFFF)
            .collect();
        let slices = horizontal_to_vertical(&values, 16, 128);
        assert_eq!(slices.len(), 16);
        let back = vertical_to_horizontal(&slices, 16, 128);
        assert_eq!(&back[..100], &values[..]);
        assert!(back[100..].iter().all(|&v| v == 0));
    }

    #[test]
    fn vertical_slices_contain_expected_bits() {
        let values = vec![0b01u64, 0b10, 0b11];
        let slices = horizontal_to_vertical(&values, 2, 3);
        assert_eq!(slices[0][0], 0b101); // bit 0 of elements 0 and 2
        assert_eq!(slices[1][0], 0b110); // bit 1 of elements 1 and 2
    }

    #[test]
    fn cost_model_scales_with_object_size() {
        let cfg = DramConfig::default();
        let unit = TranspositionUnit::new(cfg.timing.clone(), cfg.energy.clone());
        let small_lat = unit.latency_ns(64, 8);
        let big_lat = unit.latency_ns(65_536, 32);
        assert!(big_lat > small_lat * 10.0);
        assert!(unit.energy_nj(65_536, 32) > unit.energy_nj(64, 8));
        assert_eq!(unit.tiles(64, 8), 1);
        assert_eq!(unit.tiles(128, 8), 2);
    }
}
