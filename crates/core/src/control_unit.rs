//! The memory-controller control unit (Step 3).
//!
//! The control unit receives bbop instructions, looks the corresponding μProgram up in its
//! μProgram library, binds the μProgram's symbolic rows to the physical rows of the named
//! objects, and issues the resulting AAP/AP sequence to the participating subarrays — all
//! transparently to the program, which only ever executes bbop instructions.

use std::sync::Arc;

use simdram_dram::CommandCosts;
use simdram_logic::Operation;
use simdram_uprog::{
    CodegenOptions, CompiledProgram, DispatchEntry, DispatchWindow, MicroProgram,
    MicroProgramLibrary, RowBinding, Target,
};

use crate::error::{CoreError, Result};
use crate::layout::SimdVector;

/// The control unit: μProgram library plus bbop expansion logic.
#[derive(Debug)]
pub struct ControlUnit {
    target: Target,
    library: MicroProgramLibrary,
    /// MIMD dispatch windows issued through [`ControlUnit::describe_window`].
    windows_issued: u64,
    /// How many of those windows were heterogeneous (≥ 2 distinct program streams).
    mimd_windows_issued: u64,
}

impl ControlUnit {
    /// Creates a control unit for the given μProgram target and code generator options.
    pub fn new(target: Target, codegen: CodegenOptions) -> Self {
        ControlUnit {
            target,
            library: MicroProgramLibrary::with_options(codegen),
            windows_issued: 0,
            mimd_windows_issued: 0,
        }
    }

    /// Assembles and validates one MIMD dispatch window from its `(μProgram stream,
    /// subarray set)` entries, recording it in the unit's window counters. Every fused
    /// machine dispatch passes through here before the broadcast issues, so the
    /// disjointness contract is enforced at the control unit — exactly where the
    /// hardware would arbitrate the shared command bus.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Uprog`]-wrapped [`simdram_uprog::UprogError`] variants when
    /// the entries overlap on a subarray or the window is empty.
    pub fn describe_window(&mut self, entries: Vec<DispatchEntry>) -> Result<DispatchWindow> {
        let window = DispatchWindow::new(entries).map_err(CoreError::from)?;
        self.windows_issued += 1;
        if window.is_heterogeneous() {
            self.mimd_windows_issued += 1;
        }
        Ok(window)
    }

    /// Total dispatch windows issued through this control unit.
    pub fn windows_issued(&self) -> u64 {
        self.windows_issued
    }

    /// Dispatch windows that carried ≥ 2 distinct μProgram streams (true MIMD).
    pub fn mimd_windows_issued(&self) -> u64 {
        self.mimd_windows_issued
    }

    /// The μProgram target this control unit drives.
    pub fn target(&self) -> Target {
        self.target
    }

    /// Number of μPrograms resident in the control unit's program memory.
    pub fn resident_programs(&self) -> usize {
        self.library.len()
    }

    /// Number of compiled word-level kernels resident alongside the μPrograms.
    pub fn resident_compiled(&self) -> usize {
        self.library.compiled_len()
    }

    /// Looks up (or generates and caches) the μProgram for `op` at `width` bits.
    pub fn microprogram(&mut self, op: Operation, width: usize) -> &MicroProgram {
        self.library.get_or_build(self.target, op, width)
    }

    /// Looks up (or lowers and caches) the compiled kernel for `op` at `width` bits —
    /// the fast-functional counterpart of [`ControlUnit::microprogram`]. The returned
    /// `Arc` is shared with the cache, so every broadcast chunk runs the same artifact.
    ///
    /// `costs` must come from the machine's one DRAM config (see
    /// [`simdram_uprog::MicroProgramLibrary::get_or_compile`]).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures (malformed μOps; never produced by the generator).
    pub fn compiled_microprogram(
        &mut self,
        op: Operation,
        width: usize,
        costs: &CommandCosts,
    ) -> Result<Arc<CompiledProgram>> {
        Ok(self.library.get_or_compile(self.target, op, width, costs)?)
    }

    /// Ensures every `(op, width)` pair of a compiled plan has a resident μProgram,
    /// generating the missing ones in one pass (the plan-compile entry point of
    /// [`simdram_uprog::MicroProgramLibrary::preload`]). Returns how many programs were
    /// newly built.
    pub fn preload(&mut self, ops: impl IntoIterator<Item = (Operation, usize)>) -> usize {
        self.library.preload(self.target, ops)
    }

    /// Compiled counterpart of [`ControlUnit::preload`]: ensures every `(op, width)` pair
    /// has a resident compiled kernel, returning how many were newly lowered.
    ///
    /// # Errors
    ///
    /// Propagates the first compilation failure.
    pub fn preload_compiled(
        &mut self,
        ops: impl IntoIterator<Item = (Operation, usize)>,
        costs: &CommandCosts,
    ) -> Result<usize> {
        Ok(self.library.preload_compiled(self.target, ops, costs)?)
    }

    /// Validates operand shapes and produces the row binding for one bbop operation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if widths, lengths or the predicate shape do not match
    /// what the operation requires.
    pub fn bind(
        &self,
        op: Operation,
        dst: &SimdVector,
        src_a: &SimdVector,
        src_b: Option<&SimdVector>,
        pred: Option<&SimdVector>,
        reserved_base: usize,
    ) -> Result<RowBinding> {
        let width = src_a.width();
        if op.uses_second_operand() {
            let b = src_b.ok_or_else(|| {
                CoreError::Shape(format!("{op} requires a second source operand"))
            })?;
            if b.width() != width {
                return Err(CoreError::Shape(format!(
                    "operand widths differ: A is {width} bits, B is {} bits",
                    b.width()
                )));
            }
            if b.len() != src_a.len() {
                return Err(CoreError::Shape(format!(
                    "operand lengths differ: A has {} elements, B has {}",
                    src_a.len(),
                    b.len()
                )));
            }
        } else if src_b.is_some() {
            return Err(CoreError::Shape(format!(
                "{op} takes a single source operand but two were supplied"
            )));
        }
        if op.uses_predicate() {
            let p = pred.ok_or_else(|| {
                CoreError::Shape(format!("{op} requires a 1-bit predicate vector"))
            })?;
            if p.width() != 1 {
                return Err(CoreError::Shape(format!(
                    "predicate must be 1 bit wide, got {} bits",
                    p.width()
                )));
            }
            if p.len() != src_a.len() {
                return Err(CoreError::Shape(format!(
                    "predicate length {} does not match operand length {}",
                    p.len(),
                    src_a.len()
                )));
            }
        } else if pred.is_some() {
            return Err(CoreError::Shape(format!(
                "{op} is not a predicated operation"
            )));
        }
        if dst.width() != op.output_width(width) {
            return Err(CoreError::Shape(format!(
                "destination width {} does not match {op}'s output width {}",
                dst.width(),
                op.output_width(width)
            )));
        }
        if dst.len() < src_a.len() {
            return Err(CoreError::Shape(format!(
                "destination holds {} elements but {} are being produced",
                dst.len(),
                src_a.len()
            )));
        }

        Ok(RowBinding {
            a_base: src_a.base_row(),
            b_base: src_b.map(|v| v.base_row()).unwrap_or(src_a.base_row()),
            pred_row: pred.map(|v| v.base_row()).unwrap_or(src_a.base_row()),
            out_base: dst.base_row(),
            temp_base: reserved_base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(id: u64, base: usize, width: usize, len: usize) -> SimdVector {
        SimdVector::new(id, base, width, len)
    }

    #[test]
    fn microprograms_are_cached_per_operation() {
        let mut cu = ControlUnit::new(Target::Simdram, CodegenOptions::optimized());
        assert_eq!(cu.resident_programs(), 0);
        let commands = cu.microprogram(Operation::Add, 8).command_count();
        assert!(commands > 0);
        cu.microprogram(Operation::Add, 8);
        cu.microprogram(Operation::Sub, 8);
        assert_eq!(cu.resident_programs(), 2);
        assert_eq!(cu.target(), Target::Simdram);
    }

    #[test]
    fn bind_produces_expected_row_bases() {
        let cu = ControlUnit::new(Target::Simdram, CodegenOptions::optimized());
        let a = vector(1, 0, 8, 100);
        let b = vector(2, 8, 8, 100);
        let dst = vector(3, 16, 8, 100);
        let binding = cu
            .bind(Operation::Add, &dst, &a, Some(&b), None, 96)
            .unwrap();
        assert_eq!(binding.a_base, 0);
        assert_eq!(binding.b_base, 8);
        assert_eq!(binding.out_base, 16);
        assert_eq!(binding.temp_base, 96);
    }

    #[test]
    fn mismatched_widths_are_rejected() {
        let cu = ControlUnit::new(Target::Simdram, CodegenOptions::optimized());
        let a = vector(1, 0, 8, 100);
        let b = vector(2, 8, 16, 100);
        let dst = vector(3, 24, 8, 100);
        assert!(matches!(
            cu.bind(Operation::Add, &dst, &a, Some(&b), None, 96),
            Err(CoreError::Shape(_))
        ));
    }

    #[test]
    fn missing_operands_and_predicates_are_rejected() {
        let cu = ControlUnit::new(Target::Simdram, CodegenOptions::optimized());
        let a = vector(1, 0, 8, 10);
        let dst = vector(3, 16, 8, 10);
        assert!(cu.bind(Operation::Add, &dst, &a, None, None, 96).is_err());
        assert!(cu
            .bind(Operation::IfElse, &dst, &a, Some(&a), None, 96)
            .is_err());
        let wrong_pred = vector(4, 30, 8, 10);
        assert!(cu
            .bind(Operation::IfElse, &dst, &a, Some(&a), Some(&wrong_pred), 96)
            .is_err());
    }

    #[test]
    fn destination_width_must_match_output_width() {
        let cu = ControlUnit::new(Target::Simdram, CodegenOptions::optimized());
        let a = vector(1, 0, 8, 10);
        let b = vector(2, 8, 8, 10);
        let wrong_dst = vector(3, 16, 8, 10); // equality produces a 1-bit result
        assert!(cu
            .bind(Operation::Equal, &wrong_dst, &a, Some(&b), None, 96)
            .is_err());
        let dst = vector(4, 16, 1, 10);
        assert!(cu
            .bind(Operation::Equal, &dst, &a, Some(&b), None, 96)
            .is_ok());
    }

    #[test]
    fn unary_operations_reject_spurious_second_operand() {
        let cu = ControlUnit::new(Target::Simdram, CodegenOptions::optimized());
        let a = vector(1, 0, 8, 10);
        let dst = vector(3, 16, 8, 10);
        assert!(cu
            .bind(Operation::Relu, &dst, &a, Some(&a), None, 96)
            .is_err());
        assert!(cu.bind(Operation::Relu, &dst, &a, None, None, 96).is_ok());
    }
}
