//! BitWeaving-style column scan (the paper's in-memory database scan kernel).
//!
//! BitWeaving (SIGMOD 2013) evaluates a predicate such as `value < constant` over a packed
//! column of small fixed-width codes. In SIMDRAM every code is one SIMD lane and the whole
//! scan is a single relational operation producing a bit vector of matches.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_core::{Result, SimdramMachine};
use simdram_logic::{word_mask, Operation};

use crate::kernel::{finish_run, snapshot, Kernel, KernelRun, OpCount};

/// The scan predicate supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPredicate {
    /// `value < constant`
    LessThan(u64),
    /// `value == constant`
    Equal(u64),
    /// `low <= value <= high`
    Between(u64, u64),
}

/// BitWeaving column-scan kernel over a synthetic column of `code_bits`-bit codes.
#[derive(Debug, Clone)]
pub struct BitWeavingScan {
    column: Vec<u64>,
    code_bits: usize,
    predicate: ScanPredicate,
}

impl BitWeavingScan {
    /// Creates a scan over `rows` codes of `code_bits` bits with the given predicate.
    ///
    /// # Panics
    ///
    /// Panics if `code_bits` is zero or greater than 64.
    pub fn new(rows: usize, code_bits: usize, predicate: ScanPredicate, seed: u64) -> Self {
        assert!((1..=64).contains(&code_bits));
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = word_mask(code_bits);
        let column = (0..rows).map(|_| rng.random::<u64>() & mask).collect();
        BitWeavingScan {
            column,
            code_bits,
            predicate,
        }
    }

    /// Number of codes scanned.
    pub fn rows(&self) -> usize {
        self.column.len()
    }

    /// Host reference: the match bit vector.
    pub fn reference(&self) -> Vec<u64> {
        self.column
            .iter()
            .map(|&v| {
                let matched = match self.predicate {
                    ScanPredicate::LessThan(c) => v < c,
                    ScanPredicate::Equal(c) => v == c,
                    ScanPredicate::Between(lo, hi) => v >= lo && v <= hi,
                };
                u64::from(matched)
            })
            .collect()
    }
}

impl Kernel for BitWeavingScan {
    fn name(&self) -> &'static str {
        "bitweaving"
    }

    fn op_mix(&self) -> Vec<OpCount> {
        let n = self.column.len() as u64;
        let w = self.code_bits;
        match self.predicate {
            ScanPredicate::LessThan(_) | ScanPredicate::Equal(_) => vec![OpCount {
                op: if matches!(self.predicate, ScanPredicate::Equal(_)) {
                    Operation::Equal
                } else {
                    Operation::Greater
                },
                width: w,
                elements: n,
            }],
            ScanPredicate::Between(_, _) => vec![
                OpCount {
                    op: Operation::GreaterEqual,
                    width: w,
                    elements: n,
                },
                OpCount {
                    op: Operation::GreaterEqual,
                    width: w,
                    elements: n,
                },
                OpCount {
                    op: Operation::Min,
                    width: 1,
                    elements: n,
                },
            ],
        }
    }

    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun> {
        let before = snapshot(machine);
        let w = self.code_bits;
        let n = self.column.len();
        let column = machine.alloc_and_write(w, &self.column)?;

        let matches = match self.predicate {
            ScanPredicate::LessThan(c) => {
                let constant = machine.alloc(w, n)?;
                machine.init(&constant, c)?;
                // value < c  ⇔  c > value
                let (m, _) = machine.binary(Operation::Greater, &constant, &column)?;
                machine.free(constant);
                m
            }
            ScanPredicate::Equal(c) => {
                let constant = machine.alloc(w, n)?;
                machine.init(&constant, c)?;
                let (m, _) = machine.binary(Operation::Equal, &column, &constant)?;
                machine.free(constant);
                m
            }
            ScanPredicate::Between(lo, hi) => {
                let low = machine.alloc(w, n)?;
                machine.init(&low, lo)?;
                let high = machine.alloc(w, n)?;
                machine.init(&high, hi)?;
                let (ge_lo, _) = machine.binary(Operation::GreaterEqual, &column, &low)?;
                let (le_hi, _) = machine.binary(Operation::GreaterEqual, &high, &column)?;
                // AND of two 1-bit flags = their minimum.
                let (both, _) = machine.binary(Operation::Min, &ge_lo, &le_hi)?;
                for v in [low, high, ge_lo, le_hi] {
                    machine.free(v);
                }
                both
            }
        };

        let produced = machine.read(&matches)?;
        let verified = produced == self.reference();
        machine.free(matches);
        machine.free(column);

        Ok(finish_run(self.name(), machine, before, n, verified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_core::SimdramConfig;

    fn machine() -> SimdramMachine {
        SimdramMachine::new(SimdramConfig::functional_test()).unwrap()
    }

    #[test]
    fn less_than_scan_matches_reference() {
        let kernel = BitWeavingScan::new(200, 12, ScanPredicate::LessThan(1 << 11), 3);
        let run = kernel.run(&mut machine()).unwrap();
        assert!(run.verified);
        assert_eq!(run.output_elements, 200);
    }

    #[test]
    fn equality_scan_matches_reference() {
        let kernel = BitWeavingScan::new(100, 4, ScanPredicate::Equal(7), 4);
        let run = kernel.run(&mut machine()).unwrap();
        assert!(run.verified);
    }

    #[test]
    fn between_scan_matches_reference() {
        let kernel = BitWeavingScan::new(150, 8, ScanPredicate::Between(50, 180), 5);
        let run = kernel.run(&mut machine()).unwrap();
        assert!(run.verified);
        assert_eq!(kernel.op_mix().len(), 3);
    }

    #[test]
    fn reference_counts_match_predicate() {
        let kernel = BitWeavingScan::new(1000, 10, ScanPredicate::LessThan(512), 6);
        let matches: u64 = kernel.reference().iter().sum();
        // Roughly half the uniformly distributed codes are below the midpoint.
        assert!(matches > 300 && matches < 700, "got {matches}");
    }
}
