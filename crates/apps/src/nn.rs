//! Quantized neural-network machinery shared by the LeNet and VGG kernels.
//!
//! The paper accelerates the dominant bulk work of quantized CNN inference — the
//! multiply-accumulate (MAC) operations of convolutional and fully-connected layers plus the
//! ReLU activations — with SIMDRAM's multiplication, addition and ReLU operations. This
//! module provides:
//!
//! * [`LayerShape`]/[`NetworkModel`] — layer shape tables used to derive each network's
//!   in-DRAM operation mix (the analytic side of the application study);
//! * [`QuantizedLinear`] — a small fully-connected layer that is *functionally* executed on
//!   the machine (each SIMD lane computes one output neuron), verifying that the operation
//!   composition used for the networks produces bit-exact results;
//! * [`NeuralNetworkKernel`] — the [`Kernel`] implementation combining both.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_core::{Result, SimdramMachine};
use simdram_logic::Operation;

use crate::kernel::{finish_run, snapshot, Kernel, KernelRun, OpCount};

/// Shape of one neural-network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerShape {
    /// A 2-D convolution with square kernels and unit stride ("same" padding).
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel height/width.
        kernel: usize,
        /// Output feature-map height/width.
        output_hw: usize,
    },
    /// A fully-connected layer.
    FullyConnected {
        /// Input features.
        inputs: usize,
        /// Output features.
        outputs: usize,
    },
}

impl LayerShape {
    /// Multiply-accumulate operations performed by the layer.
    pub fn macs(&self) -> u64 {
        match *self {
            LayerShape::Conv {
                in_channels,
                out_channels,
                kernel,
                output_hw,
            } => (in_channels * out_channels * kernel * kernel * output_hw * output_hw) as u64,
            LayerShape::FullyConnected { inputs, outputs } => (inputs * outputs) as u64,
        }
    }

    /// Output activations produced by the layer (the number of ReLU evaluations).
    pub fn activations(&self) -> u64 {
        match *self {
            LayerShape::Conv {
                out_channels,
                output_hw,
                ..
            } => (out_channels * output_hw * output_hw) as u64,
            LayerShape::FullyConnected { outputs, .. } => outputs as u64,
        }
    }
}

/// A named network: an ordered list of layer shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkModel {
    /// Network name (matches the paper's figure labels).
    pub name: &'static str,
    /// The layers, in order.
    pub layers: Vec<LayerShape>,
}

impl NetworkModel {
    /// Total MACs of one inference pass.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Total activations (ReLU evaluations) of one inference pass.
    pub fn total_activations(&self) -> u64 {
        self.layers.iter().map(LayerShape::activations).sum()
    }

    /// The in-DRAM operation mix of one inference pass: one 8-bit multiply and one 16-bit
    /// accumulate per MAC, plus one 16-bit ReLU per activation.
    pub fn op_mix(&self) -> Vec<OpCount> {
        vec![
            OpCount {
                op: Operation::Mul,
                width: 8,
                elements: self.total_macs(),
            },
            OpCount {
                op: Operation::Add,
                width: 16,
                elements: self.total_macs(),
            },
            OpCount {
                op: Operation::Relu,
                width: 16,
                elements: self.total_activations(),
            },
        ]
    }
}

/// A small quantized fully-connected layer executed functionally on the machine.
///
/// Weights and inputs are unsigned 7-bit values so that products fit comfortably in the
/// 16-bit accumulator without wrap-around, keeping verification exact.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// `weights[i][o]`: weight connecting input `i` to output `o`.
    weights: Vec<Vec<u64>>,
    inputs: Vec<u64>,
    outputs: usize,
}

impl QuantizedLinear {
    /// Creates a random `inputs × outputs` layer.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        QuantizedLinear {
            weights: (0..inputs)
                .map(|_| (0..outputs).map(|_| rng.random_range(0..16u64)).collect())
                .collect(),
            inputs: (0..inputs).map(|_| rng.random_range(0..16u64)).collect(),
            outputs,
        }
    }

    /// Number of output neurons.
    pub fn output_count(&self) -> usize {
        self.outputs
    }

    /// Host reference: `ReLU(Σ_i w[i][o] · x[i])` per output neuron.
    pub fn reference(&self) -> Vec<u64> {
        (0..self.outputs)
            .map(|o| {
                let acc: u64 = self
                    .weights
                    .iter()
                    .zip(&self.inputs)
                    .map(|(row, &x)| row[o] * x)
                    .sum();
                acc & 0xFFFF
            })
            .collect()
    }

    /// Executes the layer on the machine: each SIMD lane computes one output neuron.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn run_on(&self, machine: &mut SimdramMachine) -> Result<Vec<u64>> {
        let n = self.outputs;
        let mut acc = machine.alloc(16, n)?;
        machine.init(&acc, 0)?;

        for (weight_row, &input_value) in self.weights.iter().zip(&self.inputs) {
            let weights = machine.alloc_and_write(16, weight_row)?;
            let activation = machine.alloc(16, n)?;
            machine.init(&activation, input_value)?;

            let (product, _) = machine.binary(Operation::Mul, &weights, &activation)?;
            let (new_acc, _) = machine.binary(Operation::Add, &acc, &product)?;

            for v in [weights, activation, product] {
                machine.free(v);
            }
            machine.free(acc);
            acc = new_acc;
        }

        let (activated, _) = machine.unary(Operation::Relu, &acc)?;
        let result = machine.read(&activated)?;
        machine.free(acc);
        machine.free(activated);
        Ok(result)
    }
}

/// A neural-network kernel: analytic op mix from the full network, functional verification
/// on a representative fully-connected slice.
#[derive(Debug, Clone)]
pub struct NeuralNetworkKernel {
    model: NetworkModel,
    proxy: QuantizedLinear,
}

impl NeuralNetworkKernel {
    /// Wraps a network model, with a `proxy_inputs × proxy_outputs` fully-connected slice
    /// used for functional verification.
    pub fn new(model: NetworkModel, proxy_inputs: usize, proxy_outputs: usize, seed: u64) -> Self {
        NeuralNetworkKernel {
            model,
            proxy: QuantizedLinear::new(proxy_inputs, proxy_outputs, seed),
        }
    }

    /// The underlying network model.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }
}

impl Kernel for NeuralNetworkKernel {
    fn name(&self) -> &'static str {
        self.model.name
    }

    fn op_mix(&self) -> Vec<OpCount> {
        self.model.op_mix()
    }

    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun> {
        let before = snapshot(machine);
        let produced = self.proxy.run_on(machine)?;
        let verified = produced == self.proxy.reference();
        Ok(finish_run(
            self.name(),
            machine,
            before,
            produced.len(),
            verified,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_core::SimdramConfig;

    #[test]
    fn layer_shape_counts() {
        let conv = LayerShape::Conv {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            output_hw: 32,
        };
        assert_eq!(conv.macs(), 3 * 64 * 9 * 32 * 32);
        assert_eq!(conv.activations(), 64 * 32 * 32);
        let fc = LayerShape::FullyConnected {
            inputs: 512,
            outputs: 10,
        };
        assert_eq!(fc.macs(), 5120);
        assert_eq!(fc.activations(), 10);
    }

    #[test]
    fn quantized_linear_matches_reference_on_simdram() {
        let layer = QuantizedLinear::new(12, 40, 77);
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let out = layer.run_on(&mut machine).unwrap();
        assert_eq!(out, layer.reference());
    }

    #[test]
    fn network_op_mix_has_mul_add_relu() {
        let model = NetworkModel {
            name: "toy",
            layers: vec![
                LayerShape::Conv {
                    in_channels: 1,
                    out_channels: 4,
                    kernel: 3,
                    output_hw: 8,
                },
                LayerShape::FullyConnected {
                    inputs: 256,
                    outputs: 10,
                },
            ],
        };
        let mix = model.op_mix();
        assert_eq!(mix.len(), 3);
        assert_eq!(mix[0].elements, model.total_macs());
        assert_eq!(mix[2].elements, model.total_activations());
    }

    #[test]
    fn neural_network_kernel_verifies_its_proxy_layer() {
        let model = NetworkModel {
            name: "toy",
            layers: vec![LayerShape::FullyConnected {
                inputs: 8,
                outputs: 16,
            }],
        };
        let kernel = NeuralNetworkKernel::new(model, 8, 16, 5);
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let run = kernel.run(&mut machine).unwrap();
        assert!(run.verified);
        assert_eq!(run.output_elements, 16);
    }
}
