//! TPC-H-style predicated aggregation (the paper's analytical-database kernel).
//!
//! Modeled on TPC-H query 6: select line items whose quantity is below a threshold and whose
//! discount falls in a range, and aggregate `extended_price × discount` over the selected
//! rows. The selection and the per-row product are computed in DRAM (comparisons, 1-bit
//! conjunctions, predicated multiply); the final scalar reduction happens on the host, as in
//! the paper where only bulk element-wise work is offloaded.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_core::{PlanBuilder, Result, SimdramMachine};
use simdram_logic::Operation;

use crate::kernel::{finish_run, snapshot, Kernel, KernelRun, OpCount};

/// Synthetic line-item table columns (quantized to small integers as in column stores).
#[derive(Debug, Clone)]
pub struct TpchQuery6 {
    quantity: Vec<u64>,
    discount: Vec<u64>,
    price: Vec<u64>,
    quantity_limit: u64,
    discount_low: u64,
    discount_high: u64,
}

impl TpchQuery6 {
    /// Generates `rows` synthetic line items.
    pub fn new(rows: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        TpchQuery6 {
            quantity: (0..rows).map(|_| rng.random_range(1..50u64)).collect(),
            discount: (0..rows).map(|_| rng.random_range(0..11u64)).collect(),
            price: (0..rows).map(|_| rng.random_range(1..200u64)).collect(),
            quantity_limit: 24,
            discount_low: 5,
            discount_high: 7,
        }
    }

    /// Number of line items.
    pub fn rows(&self) -> usize {
        self.quantity.len()
    }

    /// Host reference: the per-row revenue contribution (0 for unselected rows) and its sum.
    pub fn reference(&self) -> (Vec<u64>, u64) {
        let per_row: Vec<u64> = (0..self.rows())
            .map(|i| {
                let selected = self.quantity[i] < self.quantity_limit
                    && self.discount[i] >= self.discount_low
                    && self.discount[i] <= self.discount_high;
                if selected {
                    (self.price[i] * self.discount[i]) & 0xFFFF
                } else {
                    0
                }
            })
            .collect();
        let total = per_row.iter().sum();
        (per_row, total)
    }
}

impl Kernel for TpchQuery6 {
    fn name(&self) -> &'static str {
        "tpch"
    }

    fn op_mix(&self) -> Vec<OpCount> {
        let n = self.rows() as u64;
        vec![
            OpCount {
                op: Operation::Greater,
                width: 8,
                elements: n,
            },
            OpCount {
                op: Operation::GreaterEqual,
                width: 8,
                elements: n,
            },
            OpCount {
                op: Operation::GreaterEqual,
                width: 8,
                elements: n,
            },
            OpCount {
                op: Operation::Min,
                width: 1,
                elements: n,
            },
            OpCount {
                op: Operation::Min,
                width: 1,
                elements: n,
            },
            OpCount {
                op: Operation::Mul,
                width: 16,
                elements: n,
            },
            OpCount {
                op: Operation::IfElse,
                width: 16,
                elements: n,
            },
        ]
    }

    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun> {
        let before = snapshot(machine);
        let n = self.rows();

        let quantity = machine.alloc_and_write(8, &self.quantity)?;
        let discount8 = machine.alloc_and_write(8, &self.discount)?;
        let discount16 = machine.alloc_and_write(16, &self.discount)?;
        let price = machine.alloc_and_write(16, &self.price)?;

        // The whole query is one plan: the three comparisons and the multiply are
        // independent (they fuse into the first op batch), the threshold constants
        // broadcast together, and the intermediates recycle pooled temp rows.
        let mut plan = PlanBuilder::new();
        let qty = plan.input(&quantity);
        let disc8 = plan.input(&discount8);
        let disc16 = plan.input(&discount16);
        let price_e = plan.input(&price);
        let qty_limit = plan.constant(8, n, self.quantity_limit)?;
        let disc_low = plan.constant(8, n, self.discount_low)?;
        let disc_high = plan.constant(8, n, self.discount_high)?;
        let zero16 = plan.constant(16, n, 0)?;

        // Selection predicate.
        let qty_ok = plan.greater(qty_limit, qty)?;
        let disc_ge = plan.greater_equal(disc8, disc_low)?;
        let disc_le = plan.greater_equal(disc_high, disc8)?;
        let disc_ok = plan.min(disc_ge, disc_le)?;
        let selected = plan.min(qty_ok, disc_ok)?;

        // Revenue contribution, predicated on selection.
        let revenue = plan.mul(price_e, disc16)?;
        let masked = plan.select(selected, revenue, zero16)?;
        let out = plan.materialize(masked)?;
        let compiled = plan.compile()?;

        let exec = machine.run_plan(&compiled)?;
        let masked = *exec.output(out);
        let per_row = machine.read(&masked)?;
        let total: u64 = per_row.iter().sum();
        let (expected_rows, expected_total) = self.reference();
        let verified = per_row == expected_rows && total == expected_total;

        for v in [quantity, discount8, discount16, price, masked] {
            machine.free(v);
        }
        Ok(finish_run(self.name(), machine, before, n, verified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_core::SimdramConfig;

    #[test]
    fn query6_matches_reference() {
        let kernel = TpchQuery6::new(300, 11);
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let run = kernel.run(&mut machine).unwrap();
        assert!(
            run.verified,
            "in-DRAM TPC-H aggregation diverged from reference"
        );
        assert_eq!(run.output_elements, 300);
        assert!(run.bbops >= 7);
        // Fused batches: constants, then {comparisons + multiply}, disc_ok, selected,
        // select — versus 11 eager broadcasts (4 inits + 7 ops).
        assert_eq!(run.broadcasts, 5);
        assert!(run.broadcasts < run.bbops + 4);
    }

    #[test]
    fn reference_selects_a_plausible_fraction() {
        let kernel = TpchQuery6::new(5_000, 12);
        let (rows, total) = kernel.reference();
        let selected = rows.iter().filter(|&&r| r > 0).count();
        // quantity < 24 (~47%) and discount in {5, 6, 7} (~27%) → roughly 13% of rows.
        assert!(selected > 300 && selected < 1_000, "selected {selected}");
        assert!(total > 0);
    }

    #[test]
    fn op_mix_names_seven_bulk_operations() {
        assert_eq!(TpchQuery6::new(10, 0).op_mix().len(), 7);
    }
}
