//! # simdram-apps — the seven real-world application kernels of the SIMDRAM evaluation
//!
//! The paper demonstrates SIMDRAM on seven kernels from machine learning, databases and
//! image processing. Each kernel in this crate provides:
//!
//! * a **functional** implementation on [`simdram_core::SimdramMachine`] (which also runs on
//!   the Ambit baseline machine), verified element-for-element against a host reference;
//! * an **operation mix** ([`OpCount`]) describing the bulk work it offloads to DRAM, which
//!   the [`analysis`] module costs on every platform to reproduce the paper's application
//!   speedup figure.
//!
//! | Kernel | Domain | Bulk operations |
//! |---|---|---|
//! | [`vgg::vgg13_kernel`], [`vgg::vgg16_kernel`] | ML inference | 8-bit multiply, 16-bit add, ReLU |
//! | [`lenet::lenet_kernel`] | ML inference | 8-bit multiply, 16-bit add, ReLU |
//! | [`knn::KnnDistances`] | ML classification | subtract, abs, add |
//! | [`tpch::TpchQuery6`] | Databases | comparisons, 1-bit AND, multiply, predication |
//! | [`bitweaving::BitWeavingScan`] | Databases | comparisons |
//! | [`brightness::Brightness`] | Image processing | add, compare, predication |
//!
//! ## Example
//!
//! ```
//! use simdram_apps::{brightness::Brightness, Kernel};
//! use simdram_core::{SimdramConfig, SimdramMachine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;
//! let kernel = Brightness::new(64, 4, 60, 7);
//! let run = kernel.run(&mut machine)?;
//! // Every kernel run is checked element-for-element against its host reference.
//! assert!(run.verified);
//! assert_eq!(run.output_elements, kernel.pixel_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bitweaving;
pub mod brightness;
pub mod kernel;
pub mod knn;
pub mod lenet;
pub mod nn;
pub mod tpch;
pub mod vgg;

pub use analysis::{
    cost_on_platform, kernel_comparison, paper_kernels, speedup, KernelPlatformCost,
};
pub use kernel::{Kernel, KernelRun, OpCount};
