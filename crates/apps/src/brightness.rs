//! Image brightness adjustment (the paper's image-processing kernel).
//!
//! Every pixel of an 8-bit greyscale image is brightened by a constant delta with saturation
//! at 255. In SIMDRAM each pixel is one SIMD lane: a single 8-bit addition followed by a
//! saturating clamp built from a comparison and a predicated select.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_core::{PlanBuilder, Result, SimdramMachine};
use simdram_logic::Operation;

use crate::kernel::{finish_run, snapshot, Kernel, KernelRun, OpCount};

/// Brightness-adjustment kernel over a synthetic greyscale image.
#[derive(Debug, Clone)]
pub struct Brightness {
    pixels: Vec<u64>,
    delta: u64,
}

impl Brightness {
    /// Creates the kernel with a deterministic synthetic image of `width × height` pixels
    /// and a brightness increase of `delta` grey levels.
    pub fn new(width: usize, height: usize, delta: u8, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pixels = (0..width * height)
            .map(|_| rng.random_range(0..256u64))
            .collect();
        Brightness {
            pixels,
            delta: u64::from(delta),
        }
    }

    /// Number of pixels in the image.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// Host reference: saturating brightness adjustment.
    pub fn reference(&self) -> Vec<u64> {
        self.pixels
            .iter()
            .map(|&p| (p + self.delta).min(255))
            .collect()
    }
}

impl Kernel for Brightness {
    fn name(&self) -> &'static str {
        "brightness"
    }

    fn op_mix(&self) -> Vec<OpCount> {
        let n = self.pixels.len() as u64;
        vec![
            OpCount {
                op: Operation::Add,
                width: 8,
                elements: n,
            },
            // Saturation: compare against the pre-add value to detect wrap-around, then select.
            OpCount {
                op: Operation::GreaterEqual,
                width: 8,
                elements: n,
            },
            OpCount {
                op: Operation::IfElse,
                width: 8,
                elements: n,
            },
        ]
    }

    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun> {
        let before = snapshot(machine);
        let n = self.pixels.len();
        let pixels = machine.alloc_and_write(8, &self.pixels)?;

        // The whole saturating add is one compiled plan: the two constants broadcast in
        // one fused batch, the temporaries (sum, overflow flag) recycle pooled rows, and
        // only the selected result is materialized.
        let mut plan = PlanBuilder::new();
        let px = plan.input(&pixels);
        let delta = plan.constant(8, n, self.delta)?;
        let saturated = plan.constant(8, n, 0xFF)?;
        // sum = pixels + delta (wraps modulo 256 on overflow).
        let sum = plan.add(px, delta)?;
        // no_overflow = sum >= pixels  (false exactly when the 8-bit addition wrapped).
        let no_overflow = plan.greater_equal(sum, px)?;
        // result = no_overflow ? sum : 255.
        let result = plan.select(no_overflow, sum, saturated)?;
        let out = plan.materialize(result)?;
        let compiled = plan.compile()?;

        let exec = machine.run_plan(&compiled)?;
        let result = *exec.output(out);
        let produced = machine.read(&result)?;
        let verified = produced == self.reference();

        machine.free(pixels);
        machine.free(result);
        Ok(finish_run(
            self.name(),
            machine,
            before,
            produced.len(),
            verified,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_core::SimdramConfig;

    #[test]
    fn brightness_matches_reference_on_simdram() {
        let kernel = Brightness::new(16, 12, 60, 7);
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let run = kernel.run(&mut machine).unwrap();
        assert!(
            run.verified,
            "in-DRAM brightness result diverged from reference"
        );
        assert_eq!(run.output_elements, 16 * 12);
        assert!(run.bbops >= 3);
        assert!(run.compute_latency_ns > 0.0);
        // The fused plan issues fewer broadcasts than the former eager sequence
        // (2 constant inits + 3 ops): one constants batch + one batch per op level.
        assert_eq!(run.broadcasts, 4);
    }

    #[test]
    fn reference_saturates_at_255() {
        let kernel = Brightness::new(4, 1, 200, 1);
        for (out, src) in kernel.reference().iter().zip(&kernel.pixels) {
            assert_eq!(*out, (src + 200).min(255));
        }
    }

    #[test]
    fn op_mix_covers_every_pixel() {
        let kernel = Brightness::new(8, 8, 10, 2);
        let mix = kernel.op_mix();
        assert_eq!(mix.len(), 3);
        assert!(mix.iter().all(|c| c.elements == 64));
    }
}
