//! Common kernel infrastructure: the [`Kernel`] trait, operation mixes and run reports.

use simdram_core::{Result, SimdramMachine};
use simdram_logic::Operation;

/// How many elements of a given operation/width a kernel executes in DRAM.
///
/// Operation mixes drive the analytic platform comparison (`simdram-apps::analysis`): the
/// same mix is costed on the CPU, GPU, Ambit and SIMDRAM models to obtain the kernel
/// speedups of the paper's application figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCount {
    /// The SIMDRAM operation.
    pub op: Operation,
    /// Element width in bits.
    pub width: usize,
    /// Number of elements processed with this operation.
    pub elements: u64,
}

/// Result of functionally running a kernel on a [`SimdramMachine`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Kernel name.
    pub name: &'static str,
    /// Number of output elements the kernel produced.
    pub output_elements: usize,
    /// Whether every output matched the host-side reference implementation.
    pub verified: bool,
    /// Number of bbop operations executed in DRAM.
    pub bbops: usize,
    /// Number of broadcasts issued: with the plan frontend, batches of fused steps; one
    /// per operation/initialization under eager issue.
    pub broadcasts: usize,
    /// Total in-DRAM compute latency in nanoseconds.
    pub compute_latency_ns: f64,
    /// Total in-DRAM energy in nanojoules.
    pub compute_energy_nj: f64,
}

/// A workload kernel that can run on SIMDRAM (or, via configuration, on the Ambit baseline)
/// and report the operation mix used for analytic platform comparison.
pub trait Kernel {
    /// Human-readable kernel name (matches the paper's figure labels).
    fn name(&self) -> &'static str;

    /// The in-DRAM operation mix of one kernel invocation.
    fn op_mix(&self) -> Vec<OpCount>;

    /// Functionally executes the kernel on `machine`, verifying results against a host
    /// reference implementation.
    ///
    /// # Errors
    ///
    /// Propagates machine errors (allocation, shape, substrate).
    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun>;
}

/// Snapshot of the machine counters a kernel run is measured against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StatsSnapshot {
    operations: usize,
    broadcasts: usize,
    compute_latency_ns: f64,
    compute_energy_nj: f64,
}

/// Captures the counters used by [`finish_run`] before the kernel body executes.
pub(crate) fn snapshot(machine: &SimdramMachine) -> StatsSnapshot {
    let stats = machine.stats();
    StatsSnapshot {
        operations: stats.operations,
        broadcasts: machine.estimate().broadcasts,
        compute_latency_ns: stats.compute_latency_ns,
        compute_energy_nj: stats.compute_energy_nj,
    }
}

/// Helper used by kernel implementations to build a [`KernelRun`] from machine statistics
/// recorded before and after the kernel body.
pub(crate) fn finish_run(
    name: &'static str,
    machine: &SimdramMachine,
    before: StatsSnapshot,
    output_elements: usize,
    verified: bool,
) -> KernelRun {
    let stats = machine.stats();
    KernelRun {
        name,
        output_elements,
        verified,
        bbops: stats.operations - before.operations,
        broadcasts: machine.estimate().broadcasts - before.broadcasts,
        compute_latency_ns: stats.compute_latency_ns - before.compute_latency_ns,
        compute_energy_nj: stats.compute_energy_nj - before.compute_energy_nj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_holds_shape_information() {
        let c = OpCount {
            op: Operation::Mul,
            width: 8,
            elements: 1_000_000,
        };
        assert_eq!(c.op, Operation::Mul);
        assert_eq!(c.width, 8);
        assert_eq!(c.elements, 1_000_000);
    }
}
