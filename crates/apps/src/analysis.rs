//! Analytic cross-platform comparison of the application kernels.
//!
//! Each kernel declares the bulk in-DRAM operation mix it executes ([`crate::OpCount`]);
//! this module costs that mix on every platform of the paper's comparison (CPU, GPU, Ambit,
//! SIMDRAM 1/4/16 banks) to produce the end-to-end kernel execution times and energies
//! behind the paper's real-world application figure.

use simdram_baselines::{platform_performance, Platform};

use crate::kernel::{Kernel, OpCount};

/// One platform's execution time and energy for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlatformCost {
    /// The platform.
    pub platform: Platform,
    /// Execution time in milliseconds.
    pub time_ms: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
}

/// Costs an operation mix on one platform.
pub fn cost_on_platform(platform: Platform, mix: &[OpCount]) -> KernelPlatformCost {
    let mut time_ns = 0.0;
    let mut energy_nj = 0.0;
    for count in mix {
        let perf = platform_performance(platform, count.op, count.width);
        // throughput is in elements per nanosecond (GOPS).
        time_ns += count.elements as f64 / perf.throughput_gops;
        energy_nj += count.elements as f64 * perf.energy_per_element_nj;
    }
    KernelPlatformCost {
        platform,
        time_ms: time_ns * 1e-6,
        energy_mj: energy_nj * 1e-6,
    }
}

/// Costs a kernel's operation mix on every platform of the paper's comparison.
pub fn kernel_comparison(kernel: &dyn Kernel) -> Vec<KernelPlatformCost> {
    Platform::paper_set()
        .into_iter()
        .map(|p| cost_on_platform(p, &kernel.op_mix()))
        .collect()
}

/// Speedup of `target` over `baseline` within a comparison table.
///
/// # Panics
///
/// Panics if either platform is missing from the table.
pub fn speedup(costs: &[KernelPlatformCost], baseline: Platform, target: Platform) -> f64 {
    let base = costs
        .iter()
        .find(|c| c.platform == baseline)
        .expect("baseline platform present");
    let tgt = costs
        .iter()
        .find(|c| c.platform == target)
        .expect("target platform present");
    base.time_ms / tgt.time_ms
}

/// The seven application kernels of the paper, at sizes small enough to also run
/// functionally in tests yet large enough that their operation mixes are representative.
pub fn paper_kernels(seed: u64) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::vgg::vgg13_kernel(seed)),
        Box::new(crate::vgg::vgg16_kernel(seed.wrapping_add(1))),
        Box::new(crate::lenet::lenet_kernel(seed.wrapping_add(2))),
        Box::new(crate::knn::KnnDistances::new(
            256,
            16,
            5,
            seed.wrapping_add(3),
        )),
        Box::new(crate::tpch::TpchQuery6::new(512, seed.wrapping_add(4))),
        Box::new(crate::bitweaving::BitWeavingScan::new(
            512,
            12,
            crate::bitweaving::ScanPredicate::LessThan(2048),
            seed.wrapping_add(5),
        )),
        Box::new(crate::brightness::Brightness::new(
            32,
            16,
            70,
            seed.wrapping_add(6),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_kernel_set_has_seven_members() {
        let kernels = paper_kernels(0);
        assert_eq!(kernels.len(), 7);
        let names: Vec<&str> = kernels.iter().map(|k| k.name()).collect();
        assert!(names.contains(&"vgg-13"));
        assert!(names.contains(&"brightness"));
    }

    #[test]
    fn simdram_beats_ambit_on_every_kernel() {
        for kernel in paper_kernels(1) {
            let costs = kernel_comparison(kernel.as_ref());
            let s = speedup(&costs, Platform::Ambit, Platform::Simdram { banks: 16 });
            assert!(
                s > 1.0,
                "{} should be faster on SIMDRAM than on Ambit (speedup {s})",
                kernel.name()
            );
        }
    }

    #[test]
    fn simdram_beats_the_cpu_on_every_kernel() {
        for kernel in paper_kernels(2) {
            let costs = kernel_comparison(kernel.as_ref());
            let s = speedup(&costs, Platform::Cpu, Platform::Simdram { banks: 16 });
            assert!(s > 1.0, "{} CPU speedup was {s}", kernel.name());
        }
    }

    #[test]
    fn kernel_energy_is_lowest_on_simdram() {
        for kernel in paper_kernels(3) {
            let costs = kernel_comparison(kernel.as_ref());
            let simdram = costs
                .iter()
                .find(|c| c.platform == Platform::Simdram { banks: 16 })
                .unwrap();
            let cpu = costs.iter().find(|c| c.platform == Platform::Cpu).unwrap();
            assert!(simdram.energy_mj < cpu.energy_mj);
        }
    }

    #[test]
    fn more_banks_reduce_kernel_time_proportionally() {
        let kernel = crate::lenet::lenet_kernel(9);
        let mix = kernel.op_mix();
        let one = cost_on_platform(Platform::Simdram { banks: 1 }, &mix);
        let sixteen = cost_on_platform(Platform::Simdram { banks: 16 }, &mix);
        assert!((one.time_ms / sixteen.time_ms - 16.0).abs() < 0.1);
    }
}
