//! VGG-13 and VGG-16: the large convolutional networks of the paper's ML kernels.

use crate::nn::{LayerShape, NetworkModel, NeuralNetworkKernel};

fn vgg_block(in_channels: usize, out_channels: usize, convs: usize, hw: usize) -> Vec<LayerShape> {
    (0..convs)
        .map(|i| LayerShape::Conv {
            in_channels: if i == 0 { in_channels } else { out_channels },
            out_channels,
            kernel: 3,
            output_hw: hw,
        })
        .collect()
}

fn vgg_classifier() -> Vec<LayerShape> {
    vec![
        LayerShape::FullyConnected {
            inputs: 512 * 7 * 7,
            outputs: 4096,
        },
        LayerShape::FullyConnected {
            inputs: 4096,
            outputs: 4096,
        },
        LayerShape::FullyConnected {
            inputs: 4096,
            outputs: 1000,
        },
    ]
}

/// The VGG-13 layer shapes (224×224 ImageNet-class input).
pub fn vgg13_model() -> NetworkModel {
    let mut layers = Vec::new();
    layers.extend(vgg_block(3, 64, 2, 224));
    layers.extend(vgg_block(64, 128, 2, 112));
    layers.extend(vgg_block(128, 256, 2, 56));
    layers.extend(vgg_block(256, 512, 2, 28));
    layers.extend(vgg_block(512, 512, 2, 14));
    layers.extend(vgg_classifier());
    NetworkModel {
        name: "vgg-13",
        layers,
    }
}

/// The VGG-16 layer shapes (224×224 ImageNet-class input).
pub fn vgg16_model() -> NetworkModel {
    let mut layers = Vec::new();
    layers.extend(vgg_block(3, 64, 2, 224));
    layers.extend(vgg_block(64, 128, 2, 112));
    layers.extend(vgg_block(128, 256, 3, 56));
    layers.extend(vgg_block(256, 512, 3, 28));
    layers.extend(vgg_block(512, 512, 3, 14));
    layers.extend(vgg_classifier());
    NetworkModel {
        name: "vgg-16",
        layers,
    }
}

/// The VGG-13 kernel (functional verification on a 32 × 64 fully-connected slice).
pub fn vgg13_kernel(seed: u64) -> NeuralNetworkKernel {
    NeuralNetworkKernel::new(vgg13_model(), 32, 64, seed)
}

/// The VGG-16 kernel (functional verification on a 32 × 64 fully-connected slice).
pub fn vgg16_kernel(seed: u64) -> NeuralNetworkKernel {
    NeuralNetworkKernel::new(vgg16_model(), 32, 64, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use simdram_core::{SimdramConfig, SimdramMachine};

    #[test]
    fn vgg16_is_larger_than_vgg13() {
        let v13 = vgg13_model();
        let v16 = vgg16_model();
        assert_eq!(v13.layers.len(), 13);
        assert_eq!(v16.layers.len(), 16);
        assert!(v16.total_macs() > v13.total_macs());
        // VGG-16 performs on the order of 15 billion MACs per inference.
        assert!(v16.total_macs() > 10_000_000_000);
    }

    #[test]
    fn vgg_kernels_run_and_verify() {
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        for kernel in [vgg13_kernel(1), vgg16_kernel(2)] {
            let run = kernel.run(&mut machine).unwrap();
            assert!(run.verified, "{} proxy layer diverged", kernel.name());
        }
    }
}
