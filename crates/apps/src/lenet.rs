//! LeNet-5: the small convolutional network of the paper's ML kernels.

use crate::nn::{LayerShape, NetworkModel, NeuralNetworkKernel};

/// The LeNet-5 layer shapes (as used for MNIST-class 32×32 inputs).
pub fn lenet5_model() -> NetworkModel {
    NetworkModel {
        name: "lenet",
        layers: vec![
            LayerShape::Conv {
                in_channels: 1,
                out_channels: 6,
                kernel: 5,
                output_hw: 28,
            },
            LayerShape::Conv {
                in_channels: 6,
                out_channels: 16,
                kernel: 5,
                output_hw: 10,
            },
            LayerShape::FullyConnected {
                inputs: 400,
                outputs: 120,
            },
            LayerShape::FullyConnected {
                inputs: 120,
                outputs: 84,
            },
            LayerShape::FullyConnected {
                inputs: 84,
                outputs: 10,
            },
        ],
    }
}

/// The LeNet-5 kernel: analytic op mix from the full network, functional verification on its
/// second fully-connected layer (120 → 84).
pub fn lenet_kernel(seed: u64) -> NeuralNetworkKernel {
    NeuralNetworkKernel::new(lenet5_model(), 24, 84, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use simdram_core::{SimdramConfig, SimdramMachine};

    #[test]
    fn lenet_has_the_expected_compute_volume() {
        let model = lenet5_model();
        // LeNet-5 performs a few hundred thousand MACs per inference.
        let macs = model.total_macs();
        assert!(macs > 300_000 && macs < 700_000, "got {macs}");
        assert_eq!(model.layers.len(), 5);
    }

    #[test]
    fn lenet_kernel_runs_and_verifies() {
        let kernel = lenet_kernel(3);
        assert_eq!(kernel.name(), "lenet");
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let run = kernel.run(&mut machine).unwrap();
        assert!(run.verified);
    }
}
