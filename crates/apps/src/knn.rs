//! k-nearest-neighbour classification (the paper's machine-learning kernel besides the
//! neural networks).
//!
//! The kernel computes the Manhattan (L1) distance between one query vector and a database
//! of reference points whose features are quantized to small integers (as in the
//! handwritten-digit task the paper cites). Each reference point is one SIMD lane; the
//! per-feature |difference| computations and the distance accumulation run in DRAM, and the
//! final top-k selection (a tiny, serial step) runs on the host.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_core::{Result, SimdramMachine};
use simdram_logic::Operation;

use crate::kernel::{finish_run, snapshot, Kernel, KernelRun, OpCount};

/// kNN distance kernel over a synthetic quantized dataset.
#[derive(Debug, Clone)]
pub struct KnnDistances {
    /// `points[f][p]` is feature `f` of reference point `p`.
    points: Vec<Vec<u64>>,
    query: Vec<u64>,
    k: usize,
}

impl KnnDistances {
    /// Creates a dataset of `points` reference points with `features` 8-bit features and a
    /// random query, classified with `k` neighbours.
    pub fn new(points: usize, features: usize, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let points_by_feature = (0..features)
            .map(|_| (0..points).map(|_| rng.random_range(0..256u64)).collect())
            .collect();
        let query = (0..features).map(|_| rng.random_range(0..256u64)).collect();
        KnnDistances {
            points: points_by_feature,
            query,
            k,
        }
    }

    /// Number of reference points.
    pub fn point_count(&self) -> usize {
        self.points.first().map_or(0, Vec::len)
    }

    /// Number of features per point.
    pub fn feature_count(&self) -> usize {
        self.points.len()
    }

    /// Host reference: the Manhattan distance of every reference point to the query.
    pub fn reference_distances(&self) -> Vec<u64> {
        (0..self.point_count())
            .map(|p| {
                self.points
                    .iter()
                    .zip(&self.query)
                    .map(|(feature, &q)| feature[p].abs_diff(q))
                    .sum()
            })
            .collect()
    }

    /// Host reference: indices of the `k` nearest reference points (ties broken by index).
    pub fn reference_top_k(&self) -> Vec<usize> {
        let distances = self.reference_distances();
        let mut order: Vec<usize> = (0..distances.len()).collect();
        order.sort_by_key(|&i| (distances[i], i));
        order.truncate(self.k);
        order
    }
}

impl Kernel for KnnDistances {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn op_mix(&self) -> Vec<OpCount> {
        let n = self.point_count() as u64;
        let f = self.feature_count() as u64;
        vec![
            // Per feature: one 16-bit subtraction, one absolute value and one accumulation.
            OpCount {
                op: Operation::Sub,
                width: 16,
                elements: n * f,
            },
            OpCount {
                op: Operation::Abs,
                width: 16,
                elements: n * f,
            },
            OpCount {
                op: Operation::Add,
                width: 16,
                elements: n * f,
            },
        ]
    }

    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun> {
        let (ops0, lat0, en0) = snapshot(machine);
        let n = self.point_count();

        let mut distance = machine.alloc(16, n)?;
        machine.init(&distance, 0)?;

        for (feature_values, &query_value) in self.points.iter().zip(&self.query) {
            let feature = machine.alloc_and_write(16, feature_values)?;
            let query = machine.alloc(16, n)?;
            machine.init(&query, query_value)?;

            let (diff, _) = machine.binary(Operation::Sub, &feature, &query)?;
            let (abs_diff, _) = machine.unary(Operation::Abs, &diff)?;
            let (new_distance, _) = machine.binary(Operation::Add, &distance, &abs_diff)?;

            for v in [feature, query, diff, abs_diff] {
                machine.free(v);
            }
            machine.free(distance);
            distance = new_distance;
        }

        let produced = machine.read(&distance)?;
        machine.free(distance);
        let verified = produced == self.reference_distances();

        Ok(finish_run(
            self.name(),
            machine,
            ops0,
            lat0,
            en0,
            n,
            verified,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_core::SimdramConfig;

    #[test]
    fn distances_match_reference() {
        let kernel = KnnDistances::new(120, 6, 3, 21);
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let run = kernel.run(&mut machine).unwrap();
        assert!(run.verified);
        assert_eq!(run.output_elements, 120);
        assert_eq!(run.bbops, 6 * 3);
    }

    #[test]
    fn top_k_is_sorted_by_distance() {
        let kernel = KnnDistances::new(50, 4, 5, 9);
        let distances = kernel.reference_distances();
        let top = kernel.reference_top_k();
        assert_eq!(top.len(), 5);
        for pair in top.windows(2) {
            assert!(distances[pair[0]] <= distances[pair[1]]);
        }
    }

    #[test]
    fn op_mix_scales_with_features_and_points() {
        let kernel = KnnDistances::new(100, 8, 1, 2);
        let mix = kernel.op_mix();
        assert_eq!(mix.len(), 3);
        assert!(mix.iter().all(|c| c.elements == 800));
    }
}
