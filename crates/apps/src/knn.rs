//! k-nearest-neighbour classification (the paper's machine-learning kernel besides the
//! neural networks).
//!
//! The kernel computes the Manhattan (L1) distance between one query vector and a database
//! of reference points whose features are quantized to small integers (as in the
//! handwritten-digit task the paper cites). Each reference point is one SIMD lane; the
//! per-feature |difference| computations and the distance accumulation run in DRAM, and the
//! final top-k selection (a tiny, serial step) runs on the host.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simdram_core::{PlanBuilder, Result, SimdVector, SimdramMachine};
use simdram_logic::Operation;

use crate::kernel::{finish_run, snapshot, Kernel, KernelRun, OpCount};

/// kNN distance kernel over a synthetic quantized dataset.
#[derive(Debug, Clone)]
pub struct KnnDistances {
    /// `points[f][p]` is feature `f` of reference point `p`.
    points: Vec<Vec<u64>>,
    query: Vec<u64>,
    k: usize,
}

impl KnnDistances {
    /// Creates a dataset of `points` reference points with `features` 8-bit features and a
    /// random query, classified with `k` neighbours.
    pub fn new(points: usize, features: usize, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let points_by_feature = (0..features)
            .map(|_| (0..points).map(|_| rng.random_range(0..256u64)).collect())
            .collect();
        let query = (0..features).map(|_| rng.random_range(0..256u64)).collect();
        KnnDistances {
            points: points_by_feature,
            query,
            k,
        }
    }

    /// Number of reference points.
    pub fn point_count(&self) -> usize {
        self.points.first().map_or(0, Vec::len)
    }

    /// Number of features per point.
    pub fn feature_count(&self) -> usize {
        self.points.len()
    }

    /// Host reference: the Manhattan distance of every reference point to the query.
    pub fn reference_distances(&self) -> Vec<u64> {
        (0..self.point_count())
            .map(|p| {
                self.points
                    .iter()
                    .zip(&self.query)
                    .map(|(feature, &q)| feature[p].abs_diff(q))
                    .sum()
            })
            .collect()
    }

    /// Host reference: indices of the `k` nearest reference points (ties broken by index).
    pub fn reference_top_k(&self) -> Vec<usize> {
        let distances = self.reference_distances();
        let mut order: Vec<usize> = (0..distances.len()).collect();
        order.sort_by_key(|&i| (distances[i], i));
        order.truncate(self.k);
        order
    }
}

impl Kernel for KnnDistances {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn op_mix(&self) -> Vec<OpCount> {
        let n = self.point_count() as u64;
        let f = self.feature_count() as u64;
        vec![
            // Per feature: one 16-bit subtraction, one absolute value and one accumulation.
            OpCount {
                op: Operation::Sub,
                width: 16,
                elements: n * f,
            },
            OpCount {
                op: Operation::Abs,
                width: 16,
                elements: n * f,
            },
            OpCount {
                op: Operation::Add,
                width: 16,
                elements: n * f,
            },
        ]
    }

    fn run(&self, machine: &mut SimdramMachine) -> Result<KernelRun> {
        let before = snapshot(machine);
        let n = self.point_count();

        // Features are processed in pairs, one compiled plan per pair: the pair's query
        // constants broadcast together, the two independent |difference| chains fuse
        // level by level, and the temporaries recycle pooled rows. The running distance
        // is carried between plans as an input. Pairing keeps the fused working set
        // within small machines' row budget while still cutting the broadcast count
        // well below one per step.
        let mut distance: Option<SimdVector> = None;
        for (feature_group, query_group) in self.points.chunks(2).zip(self.query.chunks(2)) {
            let mut features = Vec::with_capacity(feature_group.len());
            for feature_values in feature_group {
                features.push(machine.alloc_and_write(16, feature_values)?);
            }

            let mut plan = PlanBuilder::new();
            let carried = distance.as_ref().map(|d| plan.input(d));
            let mut group_sum = None;
            for (feature, &query_value) in features.iter().zip(query_group) {
                let feature = plan.input(feature);
                let query = plan.constant(16, n, query_value)?;
                let diff = plan.sub(feature, query)?;
                let abs_diff = plan.abs(diff)?;
                group_sum = Some(match group_sum {
                    None => abs_diff,
                    Some(sum) => plan.add(sum, abs_diff)?,
                });
            }
            let group_sum = group_sum.expect("kNN kernels have at least one feature");
            let total = match carried {
                Some(partial) => plan.add(partial, group_sum)?,
                None => group_sum,
            };
            let out = plan.materialize(total)?;
            let compiled = plan.compile()?;

            let exec = machine.run_plan(&compiled)?;
            let new_distance = *exec.output(out);
            if let Some(old) = distance.take() {
                machine.free(old);
            }
            for feature in features {
                machine.free(feature);
            }
            distance = Some(new_distance);
        }

        let distance = distance.expect("kNN kernels have at least one feature");
        let produced = machine.read(&distance)?;
        machine.free(distance);
        let verified = produced == self.reference_distances();

        Ok(finish_run(self.name(), machine, before, n, verified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_core::SimdramConfig;

    #[test]
    fn distances_match_reference() {
        let kernel = KnnDistances::new(120, 6, 3, 21);
        let mut machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
        let run = kernel.run(&mut machine).unwrap();
        assert!(run.verified);
        assert_eq!(run.output_elements, 120);
        // 6 subs + 6 abs + 5 accumulation adds (the plan frontend folds away the old
        // explicit zero-init and first add).
        assert_eq!(run.bbops, 6 + 6 + 5);
        // Fused broadcasts: each feature pair compiles to {constants, subs, abs,
        // pair-add} batches plus an accumulate for the later pairs — 14 versus the 25
        // (7 inits + 18 ops) the eager sequence used to issue.
        assert_eq!(run.broadcasts, 14);
        assert!(run.broadcasts < run.bbops + 6);
    }

    #[test]
    fn top_k_is_sorted_by_distance() {
        let kernel = KnnDistances::new(50, 4, 5, 9);
        let distances = kernel.reference_distances();
        let top = kernel.reference_top_k();
        assert_eq!(top.len(), 5);
        for pair in top.windows(2) {
            assert!(distances[pair[0]] <= distances[pair[1]]);
        }
    }

    #[test]
    fn op_mix_scales_with_features_and_points() {
        let kernel = KnnDistances::new(100, 8, 1, 2);
        let mix = kernel.op_mix();
        assert_eq!(mix.len(), 3);
        assert!(mix.iter().all(|c| c.elements == 800));
    }
}
