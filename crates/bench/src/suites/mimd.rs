//! MIMD suite (new): heterogeneous dispatch windows and multi-device sharding.
//!
//! Three checked scenarios on the functional-test machine:
//!
//! - `mixed_window/dispatch_savings`: a plan whose levels mix lane widths (8-bit ops
//!   over many lanes next to 16-bit ops over few) must complete in **fewer dispatch
//!   windows** than its batch count — the PR 9 baseline serialized every batch — with
//!   bit-identical results and functional accounting between the two schedules.
//! - `sharded_scaling/1_to_4_devices`: the same oversized elementwise workload on
//!   fleets of 1, 2 and 4 devices. One device serializes its capacity waves; four run
//!   them concurrently, so modeled throughput must scale **≥ 2×** at 4 devices while
//!   results stay bit-identical to the single device.
//! - `movement/overhead_share`: misaligned operand placements force a cross-device
//!   reshard; the link bill must be visible (a nonzero share of the makespan) but not
//!   pathological — the quantitative footing under the paper's "avoid data movement"
//!   argument.

use simdram_core::{
    LinkModel, PlanBuilder, ShardPolicy, ShardedMachine, SimdramConfig, SimdramMachine,
};
use simdram_logic::Operation;

use crate::report::{Datapoint, Expected};

const SUITE: &str = "mimd";

fn fleet(devices: usize, policy: ShardPolicy) -> ShardedMachine {
    ShardedMachine::new(
        SimdramConfig::functional_test(),
        devices,
        policy,
        LinkModel::default(),
    )
    .expect("functional fleet")
}

/// Mixed-lane-width plan executed with MIMD windows on vs off (the PR 9 serialized
/// baseline): fewer dispatch windows, identical everything else.
fn mixed_window() -> Vec<Datapoint> {
    let wide_vals: Vec<u64> = (0..1_024u64).map(|i| (i * 37 + 11) & 0xFF).collect();
    let narrow_vals: Vec<u64> = (0..96u64).map(|i| (i * 91 + 3) & 0xFFFF).collect();

    let mut runs = Vec::new();
    for mimd in [true, false] {
        let mut config = SimdramConfig::functional_test();
        config.mimd_windows = mimd;
        let mut m = SimdramMachine::new(config).expect("functional config");
        let wide = m.alloc_and_write(8, &wide_vals).expect("write wide");
        let narrow = m.alloc_and_write(16, &narrow_vals).expect("write narrow");
        // Two independent chains of differing lane widths; their same-level steps land
        // in separate batches that share a dispatch window.
        let mut s = PlanBuilder::new();
        let we = s.input(&wide);
        let ne = s.input(&narrow);
        let cw = s.constant(8, wide_vals.len(), 60).expect("const");
        let cn = s.constant(16, narrow_vals.len(), 1_000).expect("const");
        let sum_w = s.add(we, cw).expect("add");
        let min_n = s.min(ne, cn).expect("min");
        let abs_w = s.abs(sum_w).expect("abs");
        let max_n = s.max(min_n, ne).expect("max");
        let out_w = s.materialize(abs_w).expect("materialize");
        let out_n = s.materialize(max_n).expect("materialize");
        let plan = s.compile().expect("compile");

        let exec = m.run_plan(&plan).expect("run");
        let rw = m.read(exec.output(out_w)).expect("read");
        let rn = m.read(exec.output(out_n)).expect("read");
        runs.push((
            rw,
            rn,
            exec.report().clone(),
            m.estimate().broadcasts,
            m.device_stats().clone(),
            plan.batch_count(),
            plan.window_count(),
        ));
    }
    let serial = runs.pop().expect("serialized run");
    let mimd = runs.pop().expect("mimd run");

    let identical = mimd.0 == serial.0
        && mimd.1 == serial.1
        && mimd.4 == serial.4
        && mimd.2.commands == serial.2.commands
        && mimd.2.step_reports == serial.2.step_reports;
    assert!(
        identical,
        "MIMD window results diverged from serialized dispatch"
    );

    let windows_saved = (serial.3 - mimd.3) as f64;
    vec![
        Datapoint::checked(
            SUITE,
            "mixed_window/dispatch_savings".into(),
            vec![
                ("batches", mimd.5 as f64),
                ("windows", mimd.6 as f64),
                ("mimd_dispatches", mimd.3 as f64),
                ("serialized_dispatches", serial.3 as f64),
                ("windows_saved", windows_saved),
                ("report_windows", mimd.2.windows as f64),
                ("report_broadcasts", mimd.2.broadcasts as f64),
            ],
            // The PR 9 baseline issued one dispatch per batch; MIMD windows must save
            // at least one dispatch on this mixed-width plan.
            Expected {
                metric: "windows_saved",
                min: 1.0,
                max: 16.0,
            },
        ),
        Datapoint::checked(
            SUITE,
            "mixed_window/bit_identity".into(),
            vec![("identical", if identical { 1.0 } else { 0.0 })],
            Expected {
                metric: "identical",
                min: 1.0,
                max: 1.0,
            },
        ),
    ]
}

/// One oversized workload on 1, 2 and 4 devices: wave-parallel throughput scaling
/// with bit-identical results.
fn sharded_scaling() -> Vec<Datapoint> {
    let probe = fleet(1, ShardPolicy::Contiguous);
    // 4× one device's wave capacity: the single device must run 4 sequential waves.
    let len = probe.wave_capacity() * 4;
    let a_vals: Vec<u64> = (0..len as u64).map(|i| (i * 37 + 11) & 0xFF).collect();
    let b_vals: Vec<u64> = (0..len as u64).map(|i| (i * 91 + 3) & 0xFF).collect();

    let mut reference: Option<Vec<u64>> = None;
    let mut makespans = Vec::new();
    let mut identical = true;
    for devices in [1usize, 2, 4] {
        let mut m = fleet(devices, ShardPolicy::Contiguous);
        let a = m.alloc_and_write(8, &a_vals).expect("write a");
        let b = m.alloc_and_write(8, &b_vals).expect("write b");
        let sum = m.binary(Operation::Add, &a, &b).expect("add");
        let result = m.read(&sum).expect("read");
        match &reference {
            None => reference = Some(result),
            Some(want) => identical &= &result == want,
        }
        assert_eq!(m.movement().elements, 0, "aligned shards moved data");
        makespans.push(m.estimate().makespan_ns());
    }
    assert!(identical, "sharded results diverged across fleet sizes");

    let scaling_2 = makespans[0] / makespans[1];
    let scaling_4 = makespans[0] / makespans[2];
    vec![
        Datapoint::checked(
            SUITE,
            "sharded_scaling/1_to_4_devices".into(),
            vec![
                ("elements", len as f64),
                ("makespan_1dev_ns", makespans[0]),
                ("makespan_2dev_ns", makespans[1]),
                ("makespan_4dev_ns", makespans[2]),
                ("throughput_scaling_2dev", scaling_2),
                ("throughput_scaling_4dev", scaling_4),
            ],
            // Four concurrent devices vs four serialized waves: ≥ 2× modeled
            // throughput (ideal is 4×; headroom above for float accumulation order).
            Expected {
                metric: "throughput_scaling_4dev",
                min: 2.0,
                max: 4.25,
            },
        ),
        Datapoint::checked(
            SUITE,
            "sharded_scaling/bit_identity".into(),
            vec![("identical", if identical { 1.0 } else { 0.0 })],
            Expected {
                metric: "identical",
                min: 1.0,
                max: 1.0,
            },
        ),
    ]
}

/// Misaligned operands on a 4-device fleet: the cross-device movement bill as a share
/// of the fleet makespan.
fn movement_overhead() -> Vec<Datapoint> {
    let mut m = fleet(4, ShardPolicy::Contiguous);
    let len = m.wave_capacity();
    let a_vals: Vec<u64> = (0..len as u64).map(|i| (i * 37 + 11) & 0xFF).collect();
    let b_vals: Vec<u64> = (0..len as u64).map(|i| (i * 91 + 3) & 0xFF).collect();
    let a = m
        .alloc_and_write_with(8, &a_vals, ShardPolicy::Contiguous)
        .expect("write a");
    let b = m
        .alloc_and_write_with(8, &b_vals, ShardPolicy::Interleaved)
        .expect("write b");
    let sum = m.binary(Operation::Add, &a, &b).expect("add");
    let result = m.read(&sum).expect("read");
    let expected: Vec<u64> = a_vals
        .iter()
        .zip(&b_vals)
        .map(|(&x, &y)| (x + y) & 0xFF)
        .collect();
    assert_eq!(result, expected, "misaligned add diverged from host");

    let movement = m.movement();
    let estimate = m.estimate();
    let makespan = estimate.makespan_ns();
    let share = movement.latency_ns / makespan;
    vec![Datapoint::checked(
        SUITE,
        "movement/overhead_share".into(),
        vec![
            ("moved_elements", movement.elements as f64),
            ("moved_bytes", movement.bytes as f64),
            ("movement_ns", movement.latency_ns),
            ("movement_nj", movement.energy_nj),
            ("makespan_ns", makespan),
            ("movement_share", share),
            (
                "movement_pseudo_broadcasts",
                estimate.movement_estimate.broadcasts as f64,
            ),
        ],
        // The link must be visibly charged for misaligned operands, but in-DRAM
        // compute still dominates a single elementwise op's makespan at this size.
        Expected {
            metric: "movement_share",
            min: 0.01,
            max: 0.95,
        },
    )]
}

/// Runs the suite.
pub fn run() -> Vec<Datapoint> {
    let mut datapoints = mixed_window();
    datapoints.extend(sharded_scaling());
    datapoints.extend(movement_overhead());
    datapoints
}
