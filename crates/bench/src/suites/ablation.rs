//! Ablation suite (formerly `tab_ablation`): μProgram command counts with the
//! code-generator optimizations individually disabled.

use crate::ablation_table;
use crate::report::{Datapoint, Expected};

const SUITE: &str = "ablation";

/// Operand width of the ablation table.
pub const WIDTH: usize = 16;

pub fn run() -> Vec<Datapoint> {
    ablation_table(WIDTH)
        .into_iter()
        .map(|row| {
            Datapoint::checked(
                SUITE,
                format!("{}/{WIDTH}b", row.op.name()),
                vec![
                    ("naive", row.naive as f64),
                    ("reuse_only", row.reuse_only as f64),
                    ("direct_out_only", row.direct_out_only as f64),
                    ("optimized", row.optimized as f64),
                    ("optimized_ratio", row.optimized as f64 / row.naive as f64),
                ],
                // Optimizations must never add commands.
                Expected {
                    metric: "optimized_ratio",
                    min: 0.0,
                    max: 1.0,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn sixteen_rows_all_passing() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 16);
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
        }
    }
}
