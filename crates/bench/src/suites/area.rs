//! Area suite (paper Table 2, formerly `tab_area`): DRAM-chip and CPU-die overhead of
//! the SIMDRAM hardware additions.

use simdram_core::AreaModel;

use crate::report::{Datapoint, Expected};

const SUITE: &str = "area";

pub fn run() -> Vec<Datapoint> {
    let model = AreaModel::new();
    vec![
        // The paper's headline claim: < 1% DRAM chip area.
        Datapoint::checked(
            SUITE,
            "dram_chip_overhead".to_string(),
            vec![("overhead_percent", model.dram_overhead_percent())],
            Expected {
                metric: "overhead_percent",
                min: 0.0,
                max: 1.0,
            },
        ),
        Datapoint::info(
            SUITE,
            "cpu_die_overhead".to_string(),
            vec![("overhead_percent", model.cpu_overhead_percent())],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn dram_overhead_stays_below_one_percent() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 2);
        assert_eq!(datapoints[0].verdict, Verdict::Pass);
    }
}
