//! Commands suite (paper Table 1, formerly `tab_commands`): DRAM command counts of the
//! SIMDRAM (MAJ/NOT) μPrograms vs the Ambit-style (AND/OR/NOT) baseline.

use crate::command_table;
use crate::report::{Datapoint, Expected};

const SUITE: &str = "commands";

/// Operand width of the command-count table.
pub const WIDTH: usize = 32;

pub fn run() -> Vec<Datapoint> {
    command_table(WIDTH)
        .into_iter()
        .map(|row| {
            Datapoint::checked(
                SUITE,
                format!("{}/{WIDTH}b", row.op.name()),
                vec![
                    ("simdram_commands", row.simdram_commands as f64),
                    ("ambit_commands", row.ambit_commands as f64),
                    ("reduction", row.reduction()),
                ],
                // SIMDRAM must never need more commands than Ambit (the whole point of
                // the MAJ/NOT synthesis), and the reduction stays a small factor.
                Expected {
                    metric: "reduction",
                    min: 1.0,
                    max: 100.0,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn sixteen_rows_all_passing() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 16);
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
            assert!(dp.metric("simdram_commands").unwrap() >= 1.0);
        }
    }
}
