//! Plans suite (new): the deferred dataflow frontend vs eager op-by-op execution.
//!
//! Each scenario runs one expression twice on fresh functional machines — once through
//! the eager `SimdramMachine` calls (one broadcast per operation/initialization) and
//! once as a compiled `Plan` (fused broadcast batches, pooled temporaries) — asserts the
//! results are bit-identical, and emits a datapoint comparing the two schedules. The
//! fused schedule must issue **strictly fewer broadcasts**; its busy latency must match
//! the eager schedule (the same commands issue in lock-step either way, so fusion
//! removes synchronization points without changing the modeled DRAM time).

use simdram_core::{PlanBuilder, SimdramConfig, SimdramMachine};
use simdram_logic::Operation;

use crate::report::{Datapoint, Expected};

const SUITE: &str = "plans";

/// Elements per scenario: spans two of the functional-test machine's subarrays so the
/// broadcasts genuinely fan out.
pub const ELEMENTS: usize = 300;

/// One fused-vs-eager comparison.
struct Comparison {
    name: &'static str,
    eager_broadcasts: usize,
    fused_broadcasts: usize,
    eager_busy_ns: f64,
    fused_busy_ns: f64,
    fused_energy_pj: f64,
    commands: usize,
    /// Rows the eager schedule held for constants and intermediates.
    eager_temp_rows: usize,
    /// Pooled slot rows of the compiled plan.
    plan_temp_rows: usize,
}

fn machine() -> SimdramMachine {
    SimdramMachine::new(SimdramConfig::functional_test()).expect("functional config")
}

fn inputs() -> (Vec<u64>, Vec<u64>) {
    let a = (0..ELEMENTS as u64).map(|i| (i * 37 + 11) & 0xFF).collect();
    let b = (0..ELEMENTS as u64).map(|i| (i * 91 + 3) & 0xFF).collect();
    (a, b)
}

/// `saturated = (pixels + delta >= pixels) ? pixels + delta : 255` — the brightness
/// kernel's saturating add.
fn brightness_saturate() -> Comparison {
    let (pixels, _) = inputs();

    let mut eager = machine();
    let px = eager.alloc_and_write(8, &pixels).expect("write pixels");
    let delta = eager.alloc(8, ELEMENTS).expect("alloc delta");
    eager.init(&delta, 60).expect("init delta");
    let sat = eager.alloc(8, ELEMENTS).expect("alloc saturated");
    eager.init(&sat, 0xFF).expect("init saturated");
    let (sum, _) = eager.binary(Operation::Add, &px, &delta).expect("add");
    let (ok, _) = eager
        .binary(Operation::GreaterEqual, &sum, &px)
        .expect("compare");
    let (result, _) = eager.select(&ok, &sum, &sat).expect("select");
    let eager_result = eager.read(&result).expect("read");

    let mut fused = machine();
    let px = fused.alloc_and_write(8, &pixels).expect("write pixels");
    let mut s = PlanBuilder::new();
    let xp = s.input(&px);
    let delta = s.constant(8, ELEMENTS, 60).expect("const");
    let sat = s.constant(8, ELEMENTS, 0xFF).expect("const");
    let sum = s.add(xp, delta).expect("add");
    let ok = s.greater_equal(sum, xp).expect("compare");
    let result = s.select(ok, sum, sat).expect("select");
    let out = s.materialize(result).expect("materialize");
    let plan = s.compile().expect("compile");
    let exec = fused.run_plan(&plan).expect("run plan");
    let fused_result = fused.read(exec.output(out)).expect("read");
    assert_eq!(eager_result, fused_result, "brightness results diverged");

    Comparison {
        name: "brightness_saturate",
        eager_broadcasts: eager.estimate().broadcasts,
        fused_broadcasts: exec.report().broadcasts,
        eager_busy_ns: eager.estimate().busy_latency_ns,
        fused_busy_ns: exec.report().measured_latency_ns,
        fused_energy_pj: exec.report().measured_energy_nj * 1e3,
        commands: exec.report().commands,
        // delta + saturated + sum (8 rows each) + the 1-bit flag.
        eager_temp_rows: 8 + 8 + 8 + 1,
        plan_temp_rows: plan.temp_rows(),
    }
}

/// `d = |x − q1| + |x − q2|` — a two-feature kNN Manhattan distance.
fn knn_pair() -> Comparison {
    let (x_vals, _) = inputs();

    let mut eager = machine();
    let x = eager.alloc_and_write(8, &x_vals).expect("write x");
    let q1 = eager.alloc(8, ELEMENTS).expect("alloc q1");
    eager.init(&q1, 90).expect("init q1");
    let q2 = eager.alloc(8, ELEMENTS).expect("alloc q2");
    eager.init(&q2, 200).expect("init q2");
    let (d1, _) = eager.binary(Operation::Sub, &x, &q1).expect("sub");
    let (d2, _) = eager.binary(Operation::Sub, &x, &q2).expect("sub");
    let (a1, _) = eager.unary(Operation::Abs, &d1).expect("abs");
    let (a2, _) = eager.unary(Operation::Abs, &d2).expect("abs");
    let (sum, _) = eager.binary(Operation::Add, &a1, &a2).expect("add");
    let eager_result = eager.read(&sum).expect("read");

    let mut fused = machine();
    let x = fused.alloc_and_write(8, &x_vals).expect("write x");
    let mut s = PlanBuilder::new();
    let xe = s.input(&x);
    let q1 = s.constant(8, ELEMENTS, 90).expect("const");
    let q2 = s.constant(8, ELEMENTS, 200).expect("const");
    let d1 = s.sub(xe, q1).expect("sub");
    let d2 = s.sub(xe, q2).expect("sub");
    let a1 = s.abs(d1).expect("abs");
    let a2 = s.abs(d2).expect("abs");
    let sum = s.add(a1, a2).expect("add");
    let out = s.materialize(sum).expect("materialize");
    let plan = s.compile().expect("compile");
    let exec = fused.run_plan(&plan).expect("run plan");
    let fused_result = fused.read(exec.output(out)).expect("read");
    assert_eq!(eager_result, fused_result, "knn results diverged");

    Comparison {
        name: "knn_pair",
        eager_broadcasts: eager.estimate().broadcasts,
        fused_broadcasts: exec.report().broadcasts,
        eager_busy_ns: eager.estimate().busy_latency_ns,
        fused_busy_ns: exec.report().measured_latency_ns,
        fused_energy_pj: exec.report().measured_energy_nj * 1e3,
        commands: exec.report().commands,
        // q1, q2, d1, d2, a1, a2 at 8 rows each.
        eager_temp_rows: 6 * 8,
        plan_temp_rows: plan.temp_rows(),
    }
}

/// The TPC-H query-6 expression of the application kernel (comparisons, 1-bit AND as
/// min, predicated multiply).
fn tpch_q6() -> Comparison {
    let (price, discount) = inputs();
    let discount: Vec<u64> = discount.iter().map(|d| d % 11).collect();

    let mut eager = machine();
    let p = eager.alloc_and_write(16, &price).expect("write price");
    let d8 = eager.alloc_and_write(8, &discount).expect("write discount");
    let d16 = eager
        .alloc_and_write(16, &discount)
        .expect("write discount16");
    let low = eager.alloc(8, ELEMENTS).expect("alloc");
    eager.init(&low, 3).expect("init");
    let high = eager.alloc(8, ELEMENTS).expect("alloc");
    eager.init(&high, 7).expect("init");
    let zero = eager.alloc(16, ELEMENTS).expect("alloc");
    eager.init(&zero, 0).expect("init");
    let (ge, _) = eager
        .binary(Operation::GreaterEqual, &d8, &low)
        .expect("ge");
    let (le, _) = eager
        .binary(Operation::GreaterEqual, &high, &d8)
        .expect("le");
    let (sel, _) = eager.binary(Operation::Min, &ge, &le).expect("min");
    let (rev, _) = eager.binary(Operation::Mul, &p, &d16).expect("mul");
    let (masked, _) = eager.select(&sel, &rev, &zero).expect("select");
    let eager_result = eager.read(&masked).expect("read");

    let mut fused = machine();
    let p = fused.alloc_and_write(16, &price).expect("write price");
    let d8 = fused.alloc_and_write(8, &discount).expect("write discount");
    let d16 = fused
        .alloc_and_write(16, &discount)
        .expect("write discount16");
    let mut s = PlanBuilder::new();
    let (pe, d8e, d16e) = (s.input(&p), s.input(&d8), s.input(&d16));
    let low = s.constant(8, ELEMENTS, 3).expect("const");
    let high = s.constant(8, ELEMENTS, 7).expect("const");
    let zero = s.constant(16, ELEMENTS, 0).expect("const");
    let ge = s.greater_equal(d8e, low).expect("ge");
    let le = s.greater_equal(high, d8e).expect("le");
    let sel = s.min(ge, le).expect("min");
    let rev = s.mul(pe, d16e).expect("mul");
    let masked = s.select(sel, rev, zero).expect("select");
    let out = s.materialize(masked).expect("materialize");
    let plan = s.compile().expect("compile");
    let exec = fused.run_plan(&plan).expect("run plan");
    let fused_result = fused.read(exec.output(out)).expect("read");
    assert_eq!(eager_result, fused_result, "tpch results diverged");

    Comparison {
        name: "tpch_q6",
        eager_broadcasts: eager.estimate().broadcasts,
        fused_broadcasts: exec.report().broadcasts,
        eager_busy_ns: eager.estimate().busy_latency_ns,
        fused_busy_ns: exec.report().measured_latency_ns,
        fused_energy_pj: exec.report().measured_energy_nj * 1e3,
        commands: exec.report().commands,
        // low + high (8 each), zero (16), three 1-bit flags, revenue (16).
        eager_temp_rows: 8 + 8 + 16 + 3 + 16,
        plan_temp_rows: plan.temp_rows(),
    }
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = Vec::new();
    for cmp in [brightness_saturate(), knn_pair(), tpch_q6()] {
        let reduction = cmp.eager_broadcasts as f64 / cmp.fused_broadcasts as f64;
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/fused_vs_eager", cmp.name),
            vec![
                ("eager_broadcasts", cmp.eager_broadcasts as f64),
                ("fused_broadcasts", cmp.fused_broadcasts as f64),
                ("broadcast_reduction", reduction),
                ("busy_latency_ns", cmp.fused_busy_ns),
                ("energy_pj", cmp.fused_energy_pj),
                ("commands", cmp.commands as f64),
            ],
            // Strictly fewer broadcasts than op-by-op: the fused schedule must cut at
            // least the constant-initialization barrier, typically much more.
            Expected {
                metric: "broadcast_reduction",
                min: 1.05,
                max: 8.0,
            },
        ));
        // Fusion removes synchronization points, not DRAM work: the same commands
        // issue in lock-step either way, so the fused busy window must equal the eager
        // one to floating-point accuracy.
        let parity = cmp.fused_busy_ns / cmp.eager_busy_ns;
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/latency_parity", cmp.name),
            vec![
                ("fused_busy_ns", cmp.fused_busy_ns),
                ("eager_busy_ns", cmp.eager_busy_ns),
                ("parity", parity),
            ],
            Expected {
                metric: "parity",
                min: 1.0 - 1e-9,
                max: 1.0 + 1e-9,
            },
        ));
        // Liveness-driven slot pooling can only shrink the temporary footprint.
        let temp_reduction = cmp.eager_temp_rows as f64 / cmp.plan_temp_rows as f64;
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/temp_rows", cmp.name),
            vec![
                ("eager_temp_rows", cmp.eager_temp_rows as f64),
                ("plan_temp_rows", cmp.plan_temp_rows as f64),
                ("temp_row_reduction", temp_reduction),
            ],
            Expected {
                metric: "temp_row_reduction",
                min: 1.0,
                max: 8.0,
            },
        ));
    }
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn every_scenario_fuses_and_stays_latency_neutral() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 3 * 3);
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}/{}", dp.suite, dp.name);
        }
        // The kNN scenario demonstrates genuine slot reuse, not just parity.
        let knn_temp = datapoints
            .iter()
            .find(|d| d.name == "knn_pair/temp_rows")
            .expect("knn temp datapoint");
        assert!(knn_temp.metric("temp_row_reduction").unwrap() > 1.2);
    }
}
