//! Energy suite (paper Fig. 10, formerly `fig_energy`): per-bbop energy per element in
//! picojoules and energy efficiency, SIMDRAM:16 vs the CPU/GPU baselines.

use simdram_baselines::{platform_performance, Platform};
use simdram_logic::Operation;

use crate::report::{Datapoint, Expected};

const SUITE: &str = "energy";

/// Operand width of the energy figure.
pub const WIDTH: usize = 32;

/// Paper-expected DRAM energy per element (pJ) at 32 bits: the shape of Fig. 10 with a
/// generous ±2× margin around the reproduced values. Energy per element is independent
/// of the bank count (every active subarray does the same work).
fn expected_pj(op: Operation) -> (f64, f64) {
    match op {
        Operation::Abs => (25.0, 120.0),
        Operation::Add => (12.0, 60.0),
        Operation::AndRed => (3.0, 15.0),
        Operation::BitCount => (80.0, 400.0),
        Operation::Div => (700.0, 3_200.0),
        Operation::Equal => (15.0, 70.0),
        Operation::Greater => (4.0, 18.0),
        Operation::GreaterEqual => (4.0, 18.0),
        Operation::IfElse => (11.0, 55.0),
        Operation::Max => (15.0, 70.0),
        Operation::Min => (15.0, 70.0),
        Operation::Mul => (230.0, 1_100.0),
        Operation::OrRed => (3.0, 15.0),
        Operation::Relu => (4.5, 22.0),
        Operation::Sub => (13.0, 62.0),
        Operation::XorRed => (11.0, 52.0),
    }
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = Vec::new();
    let simdram16 = Platform::Simdram { banks: 16 };

    for op in Operation::ALL {
        let perf = platform_performance(simdram16, op, WIDTH);
        let (lo, hi) = expected_pj(op);
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/{WIDTH}b/{simdram16}", op.name()),
            vec![
                ("energy_pj", perf.energy_per_element_nj * 1e3),
                ("gops_per_watt", perf.gops_per_watt),
            ],
            Expected {
                metric: "energy_pj",
                min: lo,
                max: hi,
            },
        ));
    }

    for platform in [Platform::Cpu, Platform::Gpu] {
        for op in Operation::ALL {
            let perf = platform_performance(platform, op, WIDTH);
            datapoints.push(Datapoint::info(
                SUITE,
                format!("{}/{WIDTH}b/{platform}", op.name()),
                vec![
                    ("energy_pj", perf.energy_per_element_nj * 1e3),
                    ("gops_per_watt", perf.gops_per_watt),
                ],
            ));
        }
    }

    // Headline efficiency ratios (average GOPS/W over the 16 operations).
    let avg_efficiency = |platform: Platform| -> f64 {
        Operation::ALL
            .iter()
            .map(|&op| platform_performance(platform, op, WIDTH).gops_per_watt)
            .sum::<f64>()
            / Operation::ALL.len() as f64
    };
    let simdram_eff = avg_efficiency(simdram16);
    for (baseline, lo, hi) in [
        (Platform::Cpu, 100.0, 5_000.0),
        (Platform::Gpu, 20.0, 1_000.0),
    ] {
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("avg_efficiency_ratio/{WIDTH}b/SIMDRAM:16_vs_{baseline}"),
            vec![("efficiency_ratio", simdram_eff / avg_efficiency(baseline))],
            Expected {
                metric: "efficiency_ratio",
                min: lo,
                max: hi,
            },
        ));
    }

    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn covers_all_ops_with_passing_verdicts() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 16 + 16 * 2 + 2);
        let checked = datapoints.iter().filter(|d| d.expected.is_some());
        for dp in checked {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
        }
    }
}
