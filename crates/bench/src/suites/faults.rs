//! Faults suite (new): quantifies the fault-injection + fault-tolerance subsystem.
//!
//! Three families of datapoints, all deterministic (every fault stream is seeded):
//!
//! - **guard_overhead** — modeled-latency ratio of a guarded (redundant
//!   re-execution) run over the unguarded run of the same kernel, with injection
//!   off. Redundant detection executes every dispatch twice, so the ratio sits
//!   near 2× compute (shifted by the per-op transposition and I/O that is not
//!   re-executed).
//! - **retry_convergence** — under seeded transient injection at a rate verified to
//!   force retries, the guarded result must be bit-identical to the fault-free
//!   reference: `converged` is exactly 1.
//! - **per-node injected_vs_model** — accelerated-stress cross-check of the
//!   injection substrate against the process-variation model. At production
//!   variation every node's Monte-Carlo TRA failure probability is ~0 (the paper's
//!   margin argument), so the suite amplifies each node's cell variation by a
//!   fixed stress factor, derives the model probability at that stress, injects
//!   with it, and compares the observed flip rate per (TRA × column) against the
//!   model rate. Only marginal (2-vs-1) columns can physically flip, so the ratio
//!   lands in a band strictly below 1 but well above 0.

use simdram_core::{
    ExecutionPolicy, FaultModel, FunctionalMode, GuardMode, SimdramConfig, SimdramMachine,
};
use simdram_dram::variation::{TechnologyNode, VariationModel};
use simdram_logic::{word_mask, Operation};
use simdram_uprog::{build_program, CodegenOptions, Target};

use crate::report::{Datapoint, Expected};

const SUITE: &str = "faults";

/// Elements per kernel: exactly one fully driven subarray chunk of the
/// functional-test machine, so every column participates in the marginal-split
/// statistics.
pub const ELEMENTS: usize = 256;

/// Inclusive bounds on `guard_overhead` (guarded over unguarded modeled latency,
/// injection off). Redundant re-execution doubles the compute trace but not the
/// operand transposition, so the ratio sits a little under 2× end to end.
pub const GUARD_OVERHEAD_MIN: f64 = 1.8;
/// See [`GUARD_OVERHEAD_MIN`].
pub const GUARD_OVERHEAD_MAX: f64 = 2.6;

/// Inclusive bounds on `injected_vs_model`: the observed flips per (TRA × column)
/// over the model's per-TRA flip probability. The injector only flips *marginal*
/// columns — those whose three source cells split 2-vs-1 — and on real operand data
/// the marginal fraction sits between a third and all of the columns.
pub const INJECTED_VS_MODEL_MIN: f64 = 0.3;
/// See [`INJECTED_VS_MODEL_MIN`].
pub const INJECTED_VS_MODEL_MAX: f64 = 1.0;

/// Cell-variation amplification for the per-node stress calibration: large enough
/// that every node's Monte-Carlo failure probability becomes measurable, small
/// enough that the ordering between nodes is preserved.
const STRESS: f64 = 6.0;

/// Monte-Carlo trials for the stressed model probabilities (more than the runtime
/// calibration uses, so even the 22 nm stressed rate resolves).
const MODEL_TRIALS: usize = 200_000;

/// Seed for every fault stream and the stressed Monte-Carlo calibration.
const SEED: u64 = 0x51AD_BE9C;

fn machine_with(faults: FaultModel, guard: GuardMode) -> SimdramMachine {
    // Modes are pinned in code (not via the env overrides) so the suite measures
    // identical numbers under every CI matrix leg.
    let mut config = SimdramConfig::functional_test();
    config.execution = ExecutionPolicy::Sequential;
    config.functional = FunctionalMode::Interpreted;
    config.faults = faults;
    config.guard = guard;
    SimdramMachine::new(config).expect("functional config")
}

/// Runs `op` over one chunk and returns (results, measured modeled latency,
/// subarrays used).
fn run_kernel(m: &mut SimdramMachine, op: Operation, width: usize) -> (Vec<u64>, f64, usize) {
    let mask = word_mask(width);
    let a_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 37 + 11) & mask).collect();
    let b_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 91 + 3) & mask).collect();
    let a = m.alloc_and_write(width, &a_vals).expect("alloc a");
    let b = m.alloc_and_write(width, &b_vals).expect("alloc b");
    let dst = m
        .alloc(op.output_width(width), ELEMENTS)
        .expect("alloc dst");
    let report = m
        .execute(op, &dst, &a, Some(&b), None)
        .expect("kernel executes (faults recovered or off)");
    let results = m.read(&dst).expect("read back");
    (results, report.measured_latency_ns, report.subarrays_used)
}

/// The guarded-over-unguarded latency ratio with injection off.
fn guard_overhead() -> Datapoint {
    let (baseline, unguarded_ns, _) = run_kernel(
        &mut machine_with(FaultModel::Off, GuardMode::Off),
        Operation::Add,
        16,
    );
    let (guarded_results, guarded_ns, _) = run_kernel(
        &mut machine_with(FaultModel::Off, GuardMode::redundant()),
        Operation::Add,
        16,
    );
    assert_eq!(
        baseline, guarded_results,
        "guard with faults off is bit-identical"
    );
    Datapoint::checked(
        SUITE,
        "guard_overhead/add/16b".to_string(),
        vec![
            ("unguarded_latency_ns", unguarded_ns),
            ("guarded_latency_ns", guarded_ns),
            ("guard_overhead", guarded_ns / unguarded_ns),
        ],
        Expected {
            metric: "guard_overhead",
            min: GUARD_OVERHEAD_MIN,
            max: GUARD_OVERHEAD_MAX,
        },
    )
}

/// Guarded execution under forced transient faults converges bit-identically.
fn retry_convergence() -> Datapoint {
    let (expected, _, _) = run_kernel(
        &mut machine_with(FaultModel::Off, GuardMode::Off),
        Operation::Add,
        8,
    );
    // This probability/seed pair is verified (fault_properties test suite) to
    // inject, detect and recover within the default retry budget.
    let mut m = machine_with(
        FaultModel::tra_with_probability(5e-5, 6),
        GuardMode::Redundant { max_retries: 9 },
    );
    let (got, _, _) = run_kernel(&mut m, Operation::Add, 8);
    let log = m.fault_log();
    Datapoint::checked(
        SUITE,
        "retry_convergence/add/8b".to_string(),
        vec![
            ("converged", f64::from(got == expected)),
            ("injected", log.injected as f64),
            ("detected", log.detected() as f64),
            ("recovered", log.recovered as f64),
            ("retries", log.retries as f64),
            ("backoff_ns", log.backoff_ns),
        ],
        Expected {
            metric: "converged",
            min: 1.0,
            max: 1.0,
        },
    )
}

/// One node's accelerated-stress injection-vs-model datapoint.
fn node_datapoint(node: TechnologyNode) -> Datapoint {
    let model_probability = VariationModel::with_cell_sigma(node.cell_sigma() * STRESS)
        .tra_failure_probability(MODEL_TRIALS, SEED);
    let mut m = machine_with(
        FaultModel::tra_with_probability(model_probability, SEED),
        GuardMode::Off,
    );
    // Mul has the longest μProgram of the bbops — hundreds of TRAs — so the flip
    // statistics are stable even at the 22 nm stressed rate.
    let (_, _, subarrays_used) = run_kernel(&mut m, Operation::Mul, 8);
    let tra_per_chunk = build_program(
        Target::Simdram,
        Operation::Mul,
        8,
        CodegenOptions::optimized(),
    )
    .tra_count();
    let columns = m.config().dram.columns_per_row;
    let opportunities = (tra_per_chunk * columns * subarrays_used) as f64;
    let observed_rate = m.injected_faults() as f64 / opportunities;
    Datapoint::checked(
        SUITE,
        format!("injected_vs_model/{}", node.name()),
        vec![
            ("model_probability", model_probability),
            ("injected", m.injected_faults() as f64),
            ("tra_column_opportunities", opportunities),
            ("observed_rate", observed_rate),
            ("injected_vs_model", observed_rate / model_probability),
        ],
        Expected {
            metric: "injected_vs_model",
            min: INJECTED_VS_MODEL_MIN,
            max: INJECTED_VS_MODEL_MAX,
        },
    )
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = vec![guard_overhead(), retry_convergence()];
    datapoints.extend(TechnologyNode::ALL.into_iter().map(node_datapoint));
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn every_datapoint_passes_and_faults_actually_fire() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 2 + TechnologyNode::ALL.len());
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}: {:?}", dp.name, dp.metrics);
        }
        // The convergence datapoint must have exercised the retry path, not merely
        // sailed through fault-free.
        let convergence = &datapoints[1];
        assert!(convergence.metric("retries").unwrap() >= 1.0);
        assert!(convergence.metric("recovered").unwrap() >= 1.0);
        assert_eq!(convergence.metric("converged").unwrap(), 1.0);
        // Stressed rates grow monotonically toward smaller nodes, and every node
        // injected something.
        let mut last = 0.0;
        for dp in &datapoints[2..] {
            let p = dp.metric("model_probability").unwrap();
            assert!(p > last, "{}: stressed probability must grow", dp.name);
            last = p;
            assert!(dp.metric("injected").unwrap() > 0.0, "{}", dp.name);
        }
    }
}
