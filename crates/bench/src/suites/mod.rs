//! The evaluation suites of the unified `simdram-bench` pipeline.
//!
//! Each suite subsumes one of the former standalone `fig_*`/`tab_*` binaries (plus the
//! new trace-driven `estimate` suite) and produces [`crate::report::Datapoint`]s with
//! paper-expected ranges embedded, so the JSON report carries its own pass/fail
//! verdicts:
//!
//! | Suite | Former binary | Paper artifact |
//! |---|---|---|
//! | [`Suite::Throughput`] | `fig_throughput` | Fig. 9 — throughput of the 16 bbops |
//! | [`Suite::Energy`] | `fig_energy` | Fig. 10 — energy of the 16 bbops |
//! | [`Suite::Kernels`] | `fig_kernels` | Figs. 11–12 — real-world kernels |
//! | [`Suite::Commands`] | `tab_commands` | Table 1 — command counts vs Ambit |
//! | [`Suite::Ablation`] | `tab_ablation` | μProgram optimization ablation |
//! | [`Suite::Reliability`] | `fig_reliability` | Fig. 13 — process variation |
//! | [`Suite::Area`] | `tab_area` | Table 2 — area overhead |
//! | [`Suite::Estimate`] | — (new) | trace-driven vs analytic cross-check |
//! | [`Suite::Plans`] | — (new) | fused plan execution vs eager op-by-op |
//! | [`Suite::Serving`] | — (new) | multi-tenant serving vs per-tenant sequential |
//! | [`Suite::Fidelity`] | — (new) | bank-state timing backend vs the analytic model |
//! | [`Suite::Faults`] | — (new) | fault injection vs the variation model, guard overhead |
//! | [`Suite::Mimd`] | — (new) | MIMD dispatch windows + multi-device sharding |

mod ablation;
mod area;
mod commands;
mod energy;
mod estimate;
mod faults;
mod fidelity;
mod kernels;
mod mimd;
mod plans;
mod reliability;
mod serving;
mod throughput;

use crate::report::{BenchReport, Datapoint};

/// One runnable evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Throughput of the 16 bbops across platforms and bank counts (Fig. 9).
    Throughput,
    /// Energy per element of the 16 bbops (Fig. 10).
    Energy,
    /// Real-world application kernels across platforms (Figs. 11–12).
    Kernels,
    /// DRAM command counts, SIMDRAM vs Ambit (Table 1).
    Commands,
    /// μProgram optimization ablation.
    Ablation,
    /// Reliability under process variation (Fig. 13).
    Reliability,
    /// Area overhead (Table 2).
    Area,
    /// Trace-driven estimation engine vs the analytic model (functional execution).
    Estimate,
    /// Deferred dataflow plans: fused expression execution vs eager op-by-op.
    Plans,
    /// Multi-tenant serving: cross-tenant batch fusion, fairness and tail latency.
    Serving,
    /// Timing-backend fidelity: bank-state replay divergence from the analytic model.
    Fidelity,
    /// Fault tolerance: guard overhead, retry convergence, injection vs the variation model.
    Faults,
    /// MIMD dispatch windows and multi-device sharding: dispatch savings, throughput
    /// scaling and cross-device movement overhead.
    Mimd,
}

impl Suite {
    /// All suites, in the order `--suite all` runs them.
    pub const ALL: [Suite; 13] = [
        Suite::Throughput,
        Suite::Energy,
        Suite::Kernels,
        Suite::Commands,
        Suite::Ablation,
        Suite::Reliability,
        Suite::Area,
        Suite::Estimate,
        Suite::Plans,
        Suite::Serving,
        Suite::Fidelity,
        Suite::Faults,
        Suite::Mimd,
    ];

    /// The suite's CLI / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Throughput => "throughput",
            Suite::Energy => "energy",
            Suite::Kernels => "kernels",
            Suite::Commands => "commands",
            Suite::Ablation => "ablation",
            Suite::Reliability => "reliability",
            Suite::Area => "area",
            Suite::Estimate => "estimate",
            Suite::Plans => "plans",
            Suite::Serving => "serving",
            Suite::Fidelity => "fidelity",
            Suite::Faults => "faults",
            Suite::Mimd => "mimd",
        }
    }

    /// Parses a CLI suite name (`all` is handled by the caller).
    pub fn from_name(name: &str) -> Option<Suite> {
        Suite::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Runs the suite, producing its datapoints.
    pub fn run(self) -> Vec<Datapoint> {
        match self {
            Suite::Throughput => throughput::run(),
            Suite::Energy => energy::run(),
            Suite::Kernels => kernels::run(),
            Suite::Commands => commands::run(),
            Suite::Ablation => ablation::run(),
            Suite::Reliability => reliability::run(),
            Suite::Area => area::run(),
            Suite::Estimate => estimate::run(),
            Suite::Plans => plans::run(),
            Suite::Serving => serving::run(),
            Suite::Fidelity => fidelity::run(),
            Suite::Faults => faults::run(),
            Suite::Mimd => mimd::run(),
        }
    }
}

/// Runs the given suites in order and assembles the report.
pub fn run_suites(suites: &[Suite]) -> BenchReport {
    let mut report = BenchReport::default();
    for &suite in suites {
        report.suites.push(suite.name());
        report.datapoints.extend(suite.run());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_round_trip() {
        for suite in Suite::ALL {
            assert_eq!(Suite::from_name(suite.name()), Some(suite));
        }
        assert_eq!(Suite::from_name("nope"), None);
    }

    #[test]
    fn every_suite_produces_passing_datapoints() {
        // The full pipeline (what CI runs as `--suite all`) must be verdict-clean, and
        // every checked range must reference a metric the datapoint actually carries.
        let report = run_suites(&Suite::ALL);
        assert_eq!(report.suites.len(), Suite::ALL.len());
        for dp in &report.datapoints {
            if let Some(expected) = &dp.expected {
                assert!(
                    dp.metric(expected.metric).is_some(),
                    "{}/{} checks a missing metric {}",
                    dp.suite,
                    dp.name,
                    expected.metric
                );
            }
        }
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|d| format!("{}/{}", d.suite, d.name))
            .collect();
        assert!(failures.is_empty(), "failing datapoints: {failures:?}");
    }
}
