//! Serving suite (new): the multi-tenant `simdram-serve` layer vs per-tenant
//! sequential execution.
//!
//! Three scenarios on the functional-test machine:
//!
//! - `mixed_tenants`: eight tenants submitting brightness/knn/tpch-style plans
//!   through one [`PlanServer`]. Cross-tenant batch fusion must issue **strictly
//!   fewer** broadcast dispatches than running every tenant back-to-back, with
//!   bit-identical results (asserted element-for-element against dedicated solo
//!   machines).
//! - `fairness`: weighted tenants under a shared backlog for a fixed number of
//!   windows; the weight-normalized busy-time shares must be near-uniform (Jain
//!   index ≈ 1).
//! - `tail_latency`: one tenant floods its queue; queueing must show up as p99 ≫ p50
//!   modeled turnaround.

use simdram_core::{Plan, PlanBuilder, PlanOutput, SimdVector, SimdramConfig, SimdramMachine};
use simdram_serve::{PlanServer, ServeConfig, TenantSpec};

use crate::report::{Datapoint, Expected};

const SUITE: &str = "serving";

/// Per-tenant elements: one subarray chunk on the functional machine, so several
/// tenants pack into one dispatch window.
const ELEMENTS: usize = 256;

/// The three plan shapes tenants mix (the same expressions the `plans` suite
/// compares against eager execution).
#[derive(Clone, Copy)]
enum Shape {
    Brightness,
    Knn,
    Tpch,
}

fn machine() -> SimdramMachine {
    SimdramMachine::new(SimdramConfig::functional_test()).expect("functional config")
}

fn tenant_values(tenant: usize) -> Vec<u64> {
    (0..ELEMENTS as u64)
        .map(|i| (i * 37 + 11 * tenant as u64 + 13) & 0xFF)
        .collect()
}

/// Builds one tenant's plan over its machine-resident input.
fn build_plan(shape: Shape, input: &SimdVector) -> (Plan, PlanOutput) {
    let mut s = PlanBuilder::new();
    let x = s.input(input);
    let out = match shape {
        Shape::Brightness => {
            let delta = s.constant(8, ELEMENTS, 60).expect("const");
            let sat = s.constant(8, ELEMENTS, 0xFF).expect("const");
            let sum = s.add(x, delta).expect("add");
            let ok = s.greater_equal(sum, x).expect("compare");
            let result = s.select(ok, sum, sat).expect("select");
            s.materialize(result).expect("materialize")
        }
        Shape::Knn => {
            let q1 = s.constant(8, ELEMENTS, 90).expect("const");
            let q2 = s.constant(8, ELEMENTS, 200).expect("const");
            let d1 = s.sub(x, q1).expect("sub");
            let d2 = s.sub(x, q2).expect("sub");
            let a1 = s.abs(d1).expect("abs");
            let a2 = s.abs(d2).expect("abs");
            let sum = s.add(a1, a2).expect("add");
            s.materialize(sum).expect("materialize")
        }
        Shape::Tpch => {
            let low = s.constant(8, ELEMENTS, 3).expect("const");
            let high = s.constant(8, ELEMENTS, 7).expect("const");
            let zero = s.constant(8, ELEMENTS, 0).expect("const");
            let ge = s.greater_equal(x, low).expect("ge");
            let le = s.greater_equal(high, x).expect("le");
            let sel = s.min(ge, le).expect("min");
            let masked = s.select(sel, x, zero).expect("select");
            s.materialize(masked).expect("materialize")
        }
    };
    (s.compile().expect("compile"), out)
}

/// Eight tenants, mixed plan shapes, one shared server: fused dispatches vs solo
/// sequential execution, with bit-identity asserted.
fn mixed_tenants() -> Vec<Datapoint> {
    const SHAPES: [Shape; 3] = [Shape::Brightness, Shape::Knn, Shape::Tpch];
    let tenants = 8;

    // Served: all tenants through one PlanServer. Two jobs per window keeps the
    // functional machine's 160 data rows sufficient for the eight staged inputs plus
    // the in-flight jobs' outputs and pooled temporaries — rows, not subarrays, are
    // the binding resource at this config size.
    let config = ServeConfig {
        max_jobs_per_window: 2,
        ..ServeConfig::new()
    };
    let mut server = PlanServer::new(machine(), config);
    let mut jobs = Vec::new();
    for t in 0..tenants {
        let id = server.register_tenant(TenantSpec::new(format!("tenant-{t}")));
        let values = tenant_values(t);
        let input = server.write_input(id, 8, &values).expect("stage input");
        let shape = SHAPES[t % SHAPES.len()];
        let (plan, out) = build_plan(shape, &input);
        let job = server.submit(id, plan).expect("submit");
        jobs.push((t, shape, job, out));
    }
    let report = server.serve().expect("serve");

    // Sequential reference: every tenant's plan alone on a dedicated machine.
    let mut sequential_dispatches = 0;
    let mut identical = true;
    for (t, shape, job, out) in &jobs {
        let mut m = machine();
        let input = m
            .alloc_and_write(8, &tenant_values(*t))
            .expect("write input");
        let (plan, solo_out) = build_plan(*shape, &input);
        let exec = m.run_plan(&plan).expect("solo run");
        let solo = m.read(exec.output(solo_out)).expect("read");
        sequential_dispatches += exec.report().broadcasts;
        let served = server.take_result(*job).expect("result");
        identical &= served.output(*out) == solo.as_slice();
    }
    assert!(identical, "served results diverged from solo execution");
    assert_eq!(report.sequential_dispatches, sequential_dispatches);

    let reduction = sequential_dispatches as f64 / report.fused_dispatches as f64;
    vec![
        Datapoint::checked(
            SUITE,
            "mixed_tenants/fused_vs_sequential".into(),
            vec![
                ("tenants", tenants as f64),
                ("jobs", report.jobs_completed as f64),
                ("windows", report.windows as f64),
                ("fused_dispatches", report.fused_dispatches as f64),
                ("sequential_dispatches", sequential_dispatches as f64),
                ("dispatch_reduction", reduction),
                ("busy_us", report.busy_ns / 1e3),
                ("energy_nj", report.energy_nj),
            ],
            // Cross-tenant fusion must strictly beat back-to-back execution.
            Expected {
                metric: "dispatch_reduction",
                min: 1.05,
                max: 16.0,
            },
        ),
        Datapoint::checked(
            SUITE,
            "mixed_tenants/bit_identity".into(),
            vec![("identical", if identical { 1.0 } else { 0.0 })],
            Expected {
                metric: "identical",
                min: 1.0,
                max: 1.0,
            },
        ),
    ]
}

/// A deliberately tiny unit-cost plan (`x + 7`), so four of them fit one window's
/// row budget and every fairness job costs the same.
fn unit_plan(input: &SimdVector) -> Plan {
    let mut s = PlanBuilder::new();
    let x = s.input(input);
    let c = s.constant(8, ELEMENTS, 7).expect("const");
    let sum = s.add(x, c).expect("add");
    s.materialize(sum).expect("materialize");
    s.compile().expect("compile")
}

/// Weighted tenants under a shared backlog: Jain fairness over weight-normalized
/// busy time after a fixed number of contended windows.
fn fairness() -> Vec<Datapoint> {
    let weights = [1u64, 1, 2, 4];
    let mut server = PlanServer::new(machine(), ServeConfig::new());
    let ids: Vec<_> = weights
        .iter()
        .enumerate()
        .map(|(t, &w)| {
            server.register_tenant(TenantSpec::new(format!("tenant-{t}")).with_weight(w))
        })
        .collect();
    for (t, &id) in ids.iter().enumerate() {
        let values = tenant_values(t);
        let input = server.write_input(id, 8, &values).expect("stage input");
        for _ in 0..16 {
            server.submit(id, unit_plan(&input)).expect("submit");
        }
    }
    // A fixed contended horizon — the backlog outlasts it, so admission share is
    // purely the scheduler's choice.
    for _ in 0..8 {
        server.run_window().expect("window");
    }
    let report = server.report();
    let jain = report.jain_fairness();
    let heavy = &report.tenants[3];
    let light = &report.tenants[0];
    let weighted_ratio = if light.jobs_completed > 0 {
        heavy.jobs_completed as f64 / light.jobs_completed as f64
    } else {
        f64::INFINITY
    };
    vec![Datapoint::checked(
        SUITE,
        "fairness/weighted_backlog".into(),
        vec![
            ("jain_index", jain),
            ("windows", report.windows as f64),
            ("jobs_completed", report.jobs_completed as f64),
            ("heavy_over_light_jobs", weighted_ratio),
            ("heavy_share", heavy.share),
            ("light_share", light.share),
        ],
        // Weight-normalized shares must be near-uniform.
        Expected {
            metric: "jain_index",
            min: 0.95,
            max: 1.0,
        },
    )]
}

/// One tenant floods its queue: queueing shows up as tail amplification in the
/// modeled turnaround percentiles.
fn tail_latency() -> Vec<Datapoint> {
    let mut server = PlanServer::new(machine(), ServeConfig::new());
    let id = server.register_tenant(TenantSpec::new("flood"));
    let values = tenant_values(0);
    let input = server.write_input(id, 8, &values).expect("stage input");
    for _ in 0..12 {
        let (plan, _) = build_plan(Shape::Brightness, &input);
        server.submit(id, plan).expect("submit");
    }
    let report = server.serve().expect("serve");
    let tenant = &report.tenants[0];
    let amplification = tenant.p99_turnaround_ns / tenant.p50_turnaround_ns;
    vec![Datapoint::checked(
        SUITE,
        "tail_latency/flooded_queue".into(),
        vec![
            ("jobs", tenant.jobs_completed as f64),
            ("windows", report.windows as f64),
            ("max_queue_depth", tenant.max_queue_depth as f64),
            ("p50_turnaround_us", tenant.p50_turnaround_ns / 1e3),
            ("p95_turnaround_us", tenant.p95_turnaround_ns / 1e3),
            ("p99_turnaround_us", tenant.p99_turnaround_ns / 1e3),
            ("tail_amplification", amplification),
        ],
        // Later jobs wait for earlier windows: the p99 job has queued through nearly
        // the whole backlog while the median job waited for about half of it.
        Expected {
            metric: "tail_amplification",
            min: 1.2,
            max: 10.0,
        },
    )]
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = Vec::new();
    datapoints.extend(mixed_tenants());
    datapoints.extend(fairness());
    datapoints.extend(tail_latency());
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn every_scenario_passes() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 4);
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}/{}", dp.suite, dp.name);
        }
        // The headline acceptance number: strictly fewer dispatches than sequential.
        let fused = datapoints
            .iter()
            .find(|d| d.name == "mixed_tenants/fused_vs_sequential")
            .expect("fusion datapoint");
        assert!(
            fused.metric("fused_dispatches").unwrap()
                < fused.metric("sequential_dispatches").unwrap()
        );
    }
}
