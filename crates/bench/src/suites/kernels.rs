//! Kernels suite (paper Figs. 11–12, formerly `fig_kernels`): the seven real-world
//! application kernels costed on every platform, with checked SIMDRAM:16 speedups.

use crate::kernel_table;
use crate::report::{Datapoint, Expected};

const SUITE: &str = "kernels";

/// Paper-expected SIMDRAM:16-over-CPU speedup range per kernel (reproduced values with
/// a ±2× margin; the paper reports large CPU speedups on all seven kernels).
fn expected_cpu_speedup(kernel: &str) -> (f64, f64) {
    match kernel {
        "vgg-13" | "vgg-16" | "lenet" => (18.0, 80.0),
        "knn" => (25.0, 110.0),
        "tpch" => (14.0, 60.0),
        "bitweaving" => (90.0, 380.0),
        "brightness" => (48.0, 200.0),
        other => panic!("unknown kernel {other}"),
    }
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = Vec::new();
    for row in kernel_table() {
        for cost in &row.costs {
            datapoints.push(Datapoint::info(
                SUITE,
                format!("{}/{}", row.name, cost.platform),
                vec![("time_ms", cost.time_ms), ("energy_mj", cost.energy_mj)],
            ));
        }
        let (lo, hi) = expected_cpu_speedup(row.name);
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/speedup_vs_cpu", row.name),
            vec![("speedup_vs_cpu", row.speedup_vs_cpu)],
            Expected {
                metric: "speedup_vs_cpu",
                min: lo,
                max: hi,
            },
        ));
        // The paper's GPU comparison: SIMDRAM:16 wins on every kernel, from a few x on
        // the MAC-heavy ML kernels to ~20x on the scan-style ones.
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/speedup_vs_gpu", row.name),
            vec![("speedup_vs_gpu", row.speedup_vs_gpu)],
            Expected {
                metric: "speedup_vs_gpu",
                min: 1.5,
                max: 45.0,
            },
        ));
        // The paper's Ambit comparison: SIMDRAM wins on every kernel, by a low
        // single-digit factor.
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/speedup_vs_ambit", row.name),
            vec![("speedup_vs_ambit", row.speedup_vs_ambit)],
            Expected {
                metric: "speedup_vs_ambit",
                min: 1.1,
                max: 10.0,
            },
        ));
    }
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn seven_kernels_six_platforms_all_passing() {
        let datapoints = run();
        // 7 kernels x (6 platform costs + 3 checked speedups).
        assert_eq!(datapoints.len(), 7 * 9);
        for dp in datapoints.iter().filter(|d| d.expected.is_some()) {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
        }
        assert!(datapoints.iter().any(|d| d.name == "vgg-13/CPU"));
    }
}
