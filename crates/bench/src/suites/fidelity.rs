//! Fidelity suite (new): quantifies how far the idealized analytic timing model
//! diverges from the bank-state replay backend
//! ([`simdram_core::TimingBackendKind::BankState`]).
//!
//! Each kernel executes functionally on a machine configured with the bank-state
//! backend, which replays the executed command traces against per-bank state:
//! row-buffer hits/misses/conflicts, rank-wide ACTIVATE serialization (tRRD/tFAW)
//! and tREFI/tRFC refresh interference. The per-kernel datapoints report the
//! divergence — `bankstate_latency_ns / analytic_latency_ns`, the refresh-stall
//! share of the busy window, and the row-buffer hit rate — with checked expected
//! ranges: the ratio must stay ≥ 1 (the replay only *adds* penalties the analytic
//! model idealizes away) and bounded (the analytic model is a faithful lower bound,
//! not off by integer factors).
//!
//! The backend is pinned in code (not via `SIMDRAM_TIMING`), so the suite measures
//! the same divergence under every CI matrix leg.

use simdram_core::{SimdramConfig, SimdramMachine, TimingBackendKind};
use simdram_logic::{word_mask, Operation};
use simdram_uprog::Target;

use crate::report::{Datapoint, Expected};

const SUITE: &str = "fidelity";

/// Elements per kernel: spans two of the functional-test machine's subarrays, so the
/// replay sees simultaneously-active banks contending for the rank-wide ACTIVATE
/// window.
pub const ELEMENTS: usize = 300;

/// Inclusive bounds on the per-kernel `latency_ratio` (bank-state over analytic).
/// The lower bound is structural — every bank-state penalty is non-negative — and the
/// upper bound pins the divergence the DDR4 parameters actually produce on these
/// kernels (dominated by tRRD serialization of the two lock-step chunks' ACTIVATEs,
/// plus a periodic tRFC refresh stall): measured divergence is 0.5–5% across the
/// sweep, and the replay is a pure function of the command traces and DDR4 constants,
/// so the band is host-independent.
pub const RATIO_MIN: f64 = 1.0;
/// See [`RATIO_MIN`].
pub const RATIO_MAX: f64 = 1.2;

/// The kernels the suite sweeps: a representative slice of the 16 bbops (logic,
/// arithmetic, predication) at two operand widths on the SIMDRAM target, plus two
/// Ambit-target kernels (4–5× longer μPrograms, so a different refresh profile).
///
/// Both targets lower to pure AAP streams — every in-DRAM command ends in a
/// PRECHARGE, closing its rows — so the row-buffer hit rate of these workloads is
/// *structurally zero*: SIMDRAM operation is row-buffer-adversarial by design. The
/// suite still reports the metric because zero is the checkable prediction; the
/// hit/conflict classifier branches themselves are pinned by the `simdram-dram`
/// bank-state unit tests on hand-built TRA/read/write sequences.
const KERNELS: [(Operation, usize, Target); 10] = [
    (Operation::Add, 8, Target::Simdram),
    (Operation::Add, 16, Target::Simdram),
    (Operation::Sub, 8, Target::Simdram),
    (Operation::Sub, 16, Target::Simdram),
    (Operation::Mul, 8, Target::Simdram),
    (Operation::Mul, 16, Target::Simdram),
    (Operation::IfElse, 8, Target::Simdram),
    (Operation::IfElse, 16, Target::Simdram),
    (Operation::Add, 8, Target::Ambit),
    (Operation::Mul, 8, Target::Ambit),
];

/// Runs one kernel on a fresh bank-state machine and returns its divergence datapoint
/// plus the raw (analytic, bank-state) machine totals for the aggregate datapoint.
fn run_kernel(
    op: Operation,
    width: usize,
    target: Target,
) -> (Datapoint, f64, simdram_core::BankStateTotals) {
    let config = SimdramConfig {
        timing_backend: TimingBackendKind::BankState,
        target,
        ..SimdramConfig::functional_test()
    };
    let mut machine = SimdramMachine::new(config).expect("functional config");
    let mask = word_mask(width);
    let a_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 37 + 11) & mask).collect();
    let b_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 91 + 3) & mask).collect();
    let preds: Vec<bool> = (0..ELEMENTS).map(|i| i % 3 == 0).collect();

    let a = machine.alloc_and_write(width, &a_vals).expect("alloc a");
    let b = machine.alloc_and_write(width, &b_vals).expect("alloc b");
    let pred = machine.alloc(1, ELEMENTS).expect("alloc pred");
    machine.write_bools(&pred, &preds).expect("write pred");
    let dst = machine
        .alloc(op.output_width(width), ELEMENTS)
        .expect("alloc dst");
    let report = machine
        .execute(
            op,
            &dst,
            &a,
            op.uses_second_operand().then_some(&b),
            op.uses_predicate().then_some(&pred),
        )
        .expect("functional execution");

    let bankstate_latency_ns = report
        .bank_state_latency_ns
        .expect("bank-state backend attaches a replay");
    let ratio = bankstate_latency_ns / report.measured_latency_ns;
    let estimate = machine.estimate();
    let totals = estimate
        .bank_state
        .clone()
        .expect("bank-state backend accumulates totals");
    let target_name = match target {
        Target::Simdram => "simdram",
        Target::Ambit => "ambit",
    };
    let datapoint = Datapoint::checked(
        SUITE,
        format!("{}/{width}b/{target_name}/divergence", op.name()),
        vec![
            ("analytic_latency_ns", report.measured_latency_ns),
            ("bankstate_latency_ns", bankstate_latency_ns),
            ("latency_ratio", ratio),
            ("row_buffer_hit_rate", totals.row_buffer_hit_rate()),
            ("refresh_share", totals.refresh_share()),
            ("act_stall_ns", totals.act_stall_ns),
        ],
        Expected {
            metric: "latency_ratio",
            min: RATIO_MIN,
            max: RATIO_MAX,
        },
    );
    (datapoint, estimate.busy_latency_ns, totals)
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = Vec::new();
    let mut analytic_busy_ns = 0.0;
    let mut aggregate = simdram_core::BankStateTotals::default();
    for (op, width, target) in KERNELS {
        let (datapoint, machine_busy_ns, totals) = run_kernel(op, width, target);
        datapoints.push(datapoint);
        // Whole-machine totals (the kernel's broadcasts plus its operand I/O), so the
        // aggregate reflects everything the replay walked.
        analytic_busy_ns += machine_busy_ns;
        aggregate.broadcasts += totals.broadcasts;
        aggregate.latency_ns += totals.latency_ns;
        aggregate.act_stall_ns += totals.act_stall_ns;
        aggregate.refresh_stall_ns += totals.refresh_stall_ns;
        aggregate.refreshes += totals.refreshes;
        aggregate.row_hits += totals.row_hits;
        aggregate.row_misses += totals.row_misses;
        aggregate.row_conflicts += totals.row_conflicts;
    }
    datapoints.push(Datapoint::checked(
        SUITE,
        "aggregate".to_string(),
        vec![
            ("broadcasts", aggregate.broadcasts as f64),
            ("analytic_latency_ns", analytic_busy_ns),
            ("bankstate_latency_ns", aggregate.latency_ns),
            ("latency_ratio", aggregate.latency_ratio(analytic_busy_ns)),
            ("row_buffer_hit_rate", aggregate.row_buffer_hit_rate()),
            ("refresh_share", aggregate.refresh_share()),
            ("act_stall_ns", aggregate.act_stall_ns),
            ("refresh_stall_ns", aggregate.refresh_stall_ns),
            ("refreshes", aggregate.refreshes as f64),
        ],
        Expected {
            metric: "latency_ratio",
            min: RATIO_MIN,
            max: RATIO_MAX,
        },
    ));
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn divergence_stays_in_the_expected_band_for_every_kernel() {
        let datapoints = run();
        assert_eq!(datapoints.len(), KERNELS.len() + 1);
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
            let ratio = dp.metric("latency_ratio").unwrap();
            assert!(
                (RATIO_MIN..=RATIO_MAX).contains(&ratio),
                "{}: latency_ratio {ratio} outside [{RATIO_MIN}, {RATIO_MAX}]",
                dp.name
            );
            // The replay only adds penalties, so bank-state latency dominates analytic.
            assert!(
                dp.metric("bankstate_latency_ns").unwrap()
                    >= dp.metric("analytic_latency_ns").unwrap()
            );
            let hit_rate = dp.metric("row_buffer_hit_rate").unwrap();
            assert!((0.0..=1.0).contains(&hit_rate), "{}", dp.name);
            let refresh_share = dp.metric("refresh_share").unwrap();
            assert!((0.0..1.0).contains(&refresh_share), "{}", dp.name);
        }
        // The aggregate walks every kernel's broadcasts (one compute broadcast each).
        let aggregate = datapoints.last().unwrap();
        assert!(aggregate.metric("broadcasts").unwrap() >= KERNELS.len() as f64);
        // Every kernel lowers to a pure AAP stream (each command precharges its rows),
        // so the replay must classify zero row-buffer hits: a nonzero rate here means
        // the classifier or the executor's command mix changed.
        for dp in &datapoints {
            assert_eq!(
                dp.metric("row_buffer_hit_rate").unwrap(),
                0.0,
                "{}",
                dp.name
            );
        }
    }
}
