//! Estimate suite (new): functionally executes every bbop on a small machine and
//! cross-checks the **trace-driven** estimation engine (`simdram_core::estimate`)
//! against the analytic performance model.
//!
//! The functional simulator issues exactly the μProgram's command sequence, so the
//! per-operation latency/energy measured from the executed [`simdram_dram::CommandTrace`]s
//! must agree with the analytic `latency_ns`/`energy_nj` to floating-point accuracy.
//! A drift here means either the executor issued commands the model does not account
//! for, or the model charges costs the hardware would not pay — both bugs the paper's
//! figures would silently inherit.

use simdram_core::{SimdramConfig, SimdramMachine};
use simdram_logic::{word_mask, Operation};

use crate::report::{Datapoint, Expected};

const SUITE: &str = "estimate";

/// Operand width of the functional cross-check (kept narrow so all 16 μPrograms execute
/// in milliseconds).
pub const WIDTH: usize = 8;

/// Elements per operation: spans two of the functional-test machine's subarrays, so the
/// broadcast genuinely fans out and the max-over-chunks latency semantics are exercised.
pub const ELEMENTS: usize = 300;

/// Tolerated relative difference between trace-measured and analytic values. The two
/// sides sum identical per-command costs, only in different groupings, so anything above
/// a few ULPs is a real modelling bug.
pub const REL_TOLERANCE: f64 = 1e-12;

fn relative_error(measured: f64, analytic: f64) -> f64 {
    if analytic == 0.0 {
        measured.abs()
    } else {
        ((measured - analytic) / analytic).abs()
    }
}

pub fn run() -> Vec<Datapoint> {
    let mut machine =
        SimdramMachine::new(SimdramConfig::functional_test()).expect("functional config");
    let mask = word_mask(WIDTH);
    let a_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 37 + 11) & mask).collect();
    let b_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 91 + 3) & mask).collect();
    let preds: Vec<bool> = (0..ELEMENTS).map(|i| i % 3 == 0).collect();

    let mut datapoints = Vec::new();
    let host_start = std::time::Instant::now();
    for op in Operation::ALL {
        let a = machine.alloc_and_write(WIDTH, &a_vals).expect("alloc a");
        let b = machine.alloc_and_write(WIDTH, &b_vals).expect("alloc b");
        let pred = machine.alloc(1, ELEMENTS).expect("alloc pred");
        machine.write_bools(&pred, &preds).expect("write pred");
        let dst = machine
            .alloc(op.output_width(WIDTH), ELEMENTS)
            .expect("alloc dst");
        let report = machine
            .execute(
                op,
                &dst,
                &a,
                op.uses_second_operand().then_some(&b),
                op.uses_predicate().then_some(&pred),
            )
            .expect("functional execution");
        let rel_latency = relative_error(report.measured_latency_ns, report.latency_ns);
        let rel_energy = relative_error(report.measured_energy_nj, report.energy_nj);
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/{WIDTH}b/trace_vs_analytic", op.name()),
            vec![
                ("measured_latency_ns", report.measured_latency_ns),
                ("analytic_latency_ns", report.latency_ns),
                ("measured_energy_nj", report.measured_energy_nj),
                ("analytic_energy_nj", report.energy_nj),
                ("commands", report.commands as f64),
                ("rel_err_max", rel_latency.max(rel_energy)),
            ],
            Expected {
                metric: "rel_err_max",
                min: 0.0,
                max: REL_TOLERANCE,
            },
        ));
        // Free everything so the 16 ops fit in the small machine's rows.
        machine.free(dst);
        machine.free(pred);
        machine.free(b);
        machine.free(a);
    }

    // Informational simulator-speed metric: simulated lane-bit-ops (every command
    // operates on all bitlines of each participating subarray) per host-second across
    // the functional executions above. Host-dependent by construction, so the datapoint
    // is informational (`verdict: info`, which `bench_diff` skips if a later report
    // drops it) and its metric names (`*_per_host_s`, `host_ms`) deliberately stay off
    // `bench_diff`'s gated-metric lists so host speed can never fail the perf gate.
    let host_s = host_start.elapsed().as_secs_f64();
    let lane_bit_ops = machine.estimate().commands as f64 * machine.lanes_per_subarray() as f64;
    datapoints.push(Datapoint::info(
        SUITE,
        "simspeed".to_string(),
        vec![
            ("lane_bit_ops_per_host_s", lane_bit_ops / host_s),
            (
                "commands_per_host_s",
                machine.estimate().commands as f64 / host_s,
            ),
            ("host_ms", host_s * 1e3),
        ],
    ));

    // Machine-level totals from the cumulative estimation engine: the busy window must
    // reflect bank-parallel overlap — strictly shorter than the sequential-issue sum in
    // DeviceStats (every broadcast above spans 2 subarrays).
    let estimate = machine.estimate();
    let stats = machine.device_stats();
    let parallel_speedup = stats.total_latency_ns() / estimate.busy_latency_ns;
    datapoints.push(Datapoint::checked(
        SUITE,
        "machine_totals".to_string(),
        vec![
            ("broadcasts", estimate.broadcasts as f64),
            ("commands", estimate.commands as f64),
            ("busy_latency_ns", estimate.busy_latency_ns),
            ("cycles", estimate.cycles as f64),
            ("energy_pj", estimate.energy_pj()),
            ("background_nj", estimate.background_nj),
            ("parallel_speedup", parallel_speedup),
        ],
        // 300 elements over 256-column subarrays -> exactly 2 lock-step chunks, so the
        // sequential-issue sum is exactly twice the busy window.
        Expected {
            metric: "parallel_speedup",
            min: 1.5,
            max: 2.5,
        },
    ));
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn trace_engine_matches_analytic_model_for_every_op() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 16 + 2);
        for dp in &datapoints {
            if dp.name == "simspeed" {
                assert_eq!(dp.verdict, Verdict::Info, "{}", dp.name);
                assert!(dp.metric("lane_bit_ops_per_host_s").unwrap() > 0.0);
            } else {
                assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
            }
        }
        let totals = datapoints.last().unwrap();
        assert!(totals.metric("busy_latency_ns").unwrap() > 0.0);
        assert!(totals.metric("cycles").unwrap() > 0.0);
    }
}
