//! Estimate suite (new): functionally executes every bbop on a small machine and
//! cross-checks the **trace-driven** estimation engine (`simdram_core::estimate`)
//! against the analytic performance model.
//!
//! The functional simulator issues exactly the μProgram's command sequence, so the
//! per-operation latency/energy measured from the executed [`simdram_dram::CommandTrace`]s
//! must agree with the analytic `latency_ns`/`energy_nj` to floating-point accuracy.
//! A drift here means either the executor issued commands the model does not account
//! for, or the model charges costs the hardware would not pay — both bugs the paper's
//! figures would silently inherit.

use simdram_core::{SimdramConfig, SimdramMachine};
use simdram_dram::{CommandCosts, DramConfig, Subarray};
use simdram_logic::{word_mask, Operation};
use simdram_uprog::{execute, CompiledProgram, MicroProgramLibrary, RowBinding};

use crate::report::{Datapoint, Expected};

const SUITE: &str = "estimate";

/// Operand width of the functional cross-check (kept narrow so all 16 μPrograms execute
/// in milliseconds).
pub const WIDTH: usize = 8;

/// Elements per operation: spans two of the functional-test machine's subarrays, so the
/// broadcast genuinely fans out and the max-over-chunks latency semantics are exercised.
pub const ELEMENTS: usize = 300;

/// Tolerated relative difference between trace-measured and analytic values. The two
/// sides sum identical per-command costs, only in different groupings, so anything above
/// a few ULPs is a real modelling bug.
pub const REL_TOLERANCE: f64 = 1e-12;

/// Minimum compiled-over-interpreted simulator speedup the report requires (the PR's
/// headline ≥5× target; the measured ratio is recorded in `simspeed_compiled`).
pub const MIN_COMPILED_SPEEDUP: f64 = 5.0;

/// Timed sweeps per mode; the fastest one is reported (best-of-N rejects scheduler
/// noise without averaging it in).
const SIMSPEED_ATTEMPTS: usize = 3;

/// Back-to-back sweeps inside each timed attempt. One sweep is only tens of
/// microseconds — comparable to a single scheduler preemption — so timing it alone
/// makes the ratio noisy under a loaded host (e.g. `cargo test`'s parallel binaries).
/// Repeating the sweep amortizes that noise; the reported time stays per-sweep.
const SIMSPEED_ROUNDS: usize = 8;

fn relative_error(measured: f64, analytic: f64) -> f64 {
    if analytic == 0.0 {
        measured.abs()
    } else {
        ((measured - analytic) / analytic).abs()
    }
}

/// The row binding the simulator-speed sweep executes every μProgram under (same layout
/// as the substrate equivalence tests: operands at the bottom, temporaries clear of the
/// 16-bit multiply output).
const SIMSPEED_BINDING: RowBinding = RowBinding {
    a_base: 0,
    b_base: 8,
    pred_row: 16,
    out_base: 17,
    temp_base: 64,
};

/// Best-of-[`SIMSPEED_ATTEMPTS`] host seconds for one sweep of `run_all` — one
/// invocation executes all 16 [`WIDTH`]-bit μPrograms on the substrate.
fn timed_engine_sweep(mut run_all: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..SIMSPEED_ATTEMPTS {
        let start = std::time::Instant::now();
        for _ in 0..SIMSPEED_ROUNDS {
            run_all();
        }
        best = best.min(start.elapsed().as_secs_f64() / SIMSPEED_ROUNDS as f64);
    }
    best
}

pub fn run() -> Vec<Datapoint> {
    let mut machine =
        SimdramMachine::new(SimdramConfig::functional_test()).expect("functional config");
    let mask = word_mask(WIDTH);
    let a_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 37 + 11) & mask).collect();
    let b_vals: Vec<u64> = (0..ELEMENTS as u64).map(|i| (i * 91 + 3) & mask).collect();
    let preds: Vec<bool> = (0..ELEMENTS).map(|i| i % 3 == 0).collect();

    let mut datapoints = Vec::new();
    for op in Operation::ALL {
        let a = machine.alloc_and_write(WIDTH, &a_vals).expect("alloc a");
        let b = machine.alloc_and_write(WIDTH, &b_vals).expect("alloc b");
        let pred = machine.alloc(1, ELEMENTS).expect("alloc pred");
        machine.write_bools(&pred, &preds).expect("write pred");
        let dst = machine
            .alloc(op.output_width(WIDTH), ELEMENTS)
            .expect("alloc dst");
        let report = machine
            .execute(
                op,
                &dst,
                &a,
                op.uses_second_operand().then_some(&b),
                op.uses_predicate().then_some(&pred),
            )
            .expect("functional execution");
        let rel_latency = relative_error(report.measured_latency_ns, report.latency_ns);
        let rel_energy = relative_error(report.measured_energy_nj, report.energy_nj);
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("{}/{WIDTH}b/trace_vs_analytic", op.name()),
            vec![
                ("measured_latency_ns", report.measured_latency_ns),
                ("analytic_latency_ns", report.latency_ns),
                ("measured_energy_nj", report.measured_energy_nj),
                ("analytic_energy_nj", report.energy_nj),
                ("commands", report.commands as f64),
                ("rel_err_max", rel_latency.max(rel_energy)),
            ],
            Expected {
                metric: "rel_err_max",
                min: 0.0,
                max: REL_TOLERANCE,
            },
        ));
        // Free everything so the 16 ops fit in the small machine's rows.
        machine.free(dst);
        machine.free(pred);
        machine.free(b);
        machine.free(a);
    }

    // Simulator-speed measurement, one datapoint per functional-execution mode. The
    // sweep drives the execution engine directly on one substrate subarray — the per-μOp
    // interpreter against the compiled word-level row-op kernels — executing all 16
    // cached [`WIDTH`]-bit μPrograms back to back under [`SIMSPEED_BINDING`]. Program
    // generation and kernel compilation happen once up front, and the machine layers
    // above the engine (planning, allocation, transposed I/O, estimation) are identical
    // in both modes by construction (see the mode-equivalence suite), so timing them
    // would only dilute the ratio with mode-independent work.
    //
    // Both datapoints are **checked** now (PR 4 left simspeed info-only): `bench_diff`
    // fails if either disappears from a fresh report, and the report itself gates the
    // compiled mode on `simspeed_ratio` ≥ [`MIN_COMPILED_SPEEDUP`]. Host-dependent
    // metrics keep the `*_per_host_s`/`host_ms` naming convention so raw host speed
    // stays off `bench_diff`'s regression-gated metric lists; the ratio is
    // host-independent (both sides run on the same host and build) and is what the
    // acceptance criterion pins.
    let speed_config = DramConfig::tiny();
    let costs = CommandCosts::new(&speed_config);
    let mut library = MicroProgramLibrary::new();
    let programs: Vec<_> = Operation::ALL
        .iter()
        .map(|&op| {
            library
                .get_or_build(simdram_uprog::Target::Simdram, op, WIDTH)
                .clone()
        })
        .collect();
    let kernels: Vec<_> = programs
        .iter()
        .map(|p| CompiledProgram::compile(p, &costs).expect("compile kernel"))
        .collect();
    let commands_per_sweep: f64 = programs.iter().map(|p| p.command_count() as f64).sum();
    let lane_bit_ops_per_sweep = commands_per_sweep * speed_config.columns_per_row as f64;
    let mut sa = Subarray::new(&speed_config);
    for (row, val) in a_vals.iter().enumerate().take(17) {
        sa.write_row(
            row,
            &simdram_dram::BitRow::splat_word(*val, speed_config.columns_per_row),
        );
    }
    let mut interp_sa = sa.clone();
    let interpreted_s = timed_engine_sweep(|| {
        for program in &programs {
            execute(program, &mut interp_sa, &SIMSPEED_BINDING).expect("interpreted sweep");
        }
        interp_sa.drain_trace();
    });
    let mut compiled_sa = sa.clone();
    let compiled_s = timed_engine_sweep(|| {
        for kernel in &kernels {
            kernel
                .execute_in(&mut compiled_sa, &SIMSPEED_BINDING, false)
                .expect("compiled sweep");
        }
    });
    let ratio = interpreted_s / compiled_s;
    datapoints.push(Datapoint::checked(
        SUITE,
        "simspeed".to_string(),
        vec![
            (
                "lane_bit_ops_per_host_s",
                lane_bit_ops_per_sweep / interpreted_s,
            ),
            ("commands_per_host_s", commands_per_sweep / interpreted_s),
            ("host_ms", interpreted_s * 1e3),
            ("commands_per_sweep", commands_per_sweep),
        ],
        // Deterministic floor: the sweep issues the same command count on every host,
        // so gate on work performed, not host speed. (The per-host rates above remain
        // informational context.)
        Expected {
            metric: "commands_per_sweep",
            min: 1.0,
            max: 1e12,
        },
    ));
    datapoints.push(Datapoint::checked(
        SUITE,
        "simspeed_compiled".to_string(),
        vec![
            (
                "lane_bit_ops_per_host_s",
                lane_bit_ops_per_sweep / compiled_s,
            ),
            ("commands_per_host_s", commands_per_sweep / compiled_s),
            ("host_ms", compiled_s * 1e3),
            ("simspeed_ratio", ratio),
        ],
        Expected {
            metric: "simspeed_ratio",
            min: MIN_COMPILED_SPEEDUP,
            max: 1e4,
        },
    ));

    // Machine-level totals from the cumulative estimation engine: the busy window must
    // reflect bank-parallel overlap — strictly shorter than the sequential-issue sum in
    // DeviceStats (every broadcast above spans 2 subarrays).
    let estimate = machine.estimate();
    let stats = machine.device_stats();
    let parallel_speedup = stats.total_latency_ns() / estimate.busy_latency_ns;
    datapoints.push(Datapoint::checked(
        SUITE,
        "machine_totals".to_string(),
        vec![
            ("broadcasts", estimate.broadcasts as f64),
            ("commands", estimate.commands as f64),
            ("busy_latency_ns", estimate.busy_latency_ns),
            ("cycles", estimate.cycles as f64),
            ("energy_pj", estimate.energy_pj()),
            ("background_nj", estimate.background_nj),
            ("parallel_speedup", parallel_speedup),
        ],
        // 300 elements over 256-column subarrays -> exactly 2 lock-step chunks, so the
        // sequential-issue sum is exactly twice the busy window.
        Expected {
            metric: "parallel_speedup",
            min: 1.5,
            max: 2.5,
        },
    ));
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn trace_engine_matches_analytic_model_for_every_op() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 16 + 3);
        for dp in &datapoints {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
        }
        let simspeed = datapoints.iter().find(|d| d.name == "simspeed").unwrap();
        assert!(simspeed.metric("lane_bit_ops_per_host_s").unwrap() > 0.0);
        let compiled = datapoints
            .iter()
            .find(|d| d.name == "simspeed_compiled")
            .unwrap();
        assert!(
            compiled.metric("simspeed_ratio").unwrap() >= MIN_COMPILED_SPEEDUP,
            "compiled mode must simulate at least {MIN_COMPILED_SPEEDUP}x faster, got {}",
            compiled.metric("simspeed_ratio").unwrap()
        );
        let totals = datapoints.last().unwrap();
        assert!(totals.metric("busy_latency_ns").unwrap() > 0.0);
        assert!(totals.metric("cycles").unwrap() > 0.0);
    }
}
