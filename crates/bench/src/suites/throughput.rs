//! Throughput suite (paper Fig. 9, formerly `fig_throughput`): all 16 bbops at 1, 4 and
//! 16 compute banks, plus the CPU/GPU/Ambit baselines and the headline average-speedup
//! datapoints.

use simdram_baselines::{platform_performance, Platform};
use simdram_core::{pud_performance, SimdramConfig};
use simdram_logic::Operation;
use simdram_uprog::Target;

use crate::report::{Datapoint, Expected};

const SUITE: &str = "throughput";

/// Operand width of the bank sweep (the paper's headline configuration).
pub const WIDTH: usize = 32;

/// Bank counts of the paper's three SIMDRAM design points.
pub const BANKS: [usize; 3] = [1, 4, 16];

/// Paper-expected throughput range (GOPS) per operation at **16 banks, 32-bit**:
/// the shape of Fig. 9 with a generous ±2× margin around the reproduced values.
/// Scaled by `banks / 16` for the smaller design points (throughput is linear in the
/// bank count).
fn expected_gops_16banks(op: Operation) -> (f64, f64) {
    match op {
        Operation::Abs => (120.0, 500.0),
        Operation::Add => (260.0, 1_100.0),
        Operation::AndRed => (1_100.0, 4_700.0),
        Operation::BitCount => (39.0, 160.0),
        Operation::Div => (4.5, 19.0),
        Operation::Equal => (210.0, 900.0),
        Operation::Greater => (850.0, 3_400.0),
        Operation::GreaterEqual => (830.0, 3_350.0),
        Operation::IfElse => (280.0, 1_150.0),
        Operation::Max => (210.0, 880.0),
        Operation::Min => (210.0, 880.0),
        Operation::Mul => (13.0, 55.0),
        Operation::OrRed => (1_100.0, 4_700.0),
        Operation::Relu => (700.0, 2_900.0),
        Operation::Sub => (240.0, 1_000.0),
        Operation::XorRed => (290.0, 1_200.0),
    }
}

pub fn run() -> Vec<Datapoint> {
    let mut datapoints = Vec::new();

    // SIMDRAM design points: checked against the scaled paper range.
    for banks in BANKS {
        let config = SimdramConfig::paper_banks(banks);
        for op in Operation::ALL {
            let perf = pud_performance(Target::Simdram, op, WIDTH, &config);
            let (lo, hi) = expected_gops_16banks(op);
            let scale = banks as f64 / 16.0;
            datapoints.push(Datapoint::checked(
                SUITE,
                format!("{}/{WIDTH}b/SIMDRAM:{banks}", op.name()),
                vec![
                    ("latency_ns", perf.latency_ns),
                    ("energy_pj", perf.energy_per_element_nj * 1e3),
                    ("throughput_gops", perf.throughput_gops),
                    ("gops_per_watt", perf.gops_per_watt),
                ],
                Expected {
                    metric: "throughput_gops",
                    min: lo * scale,
                    max: hi * scale,
                },
            ));
        }
    }

    // Baselines: context datapoints (no paper range of their own; they feed the
    // speedup summaries below and the bench_diff gate).
    for platform in [Platform::Cpu, Platform::Gpu, Platform::Ambit] {
        for op in Operation::ALL {
            let perf = platform_performance(platform, op, WIDTH);
            datapoints.push(Datapoint::info(
                SUITE,
                format!("{}/{WIDTH}b/{platform}", op.name()),
                vec![
                    ("energy_pj", perf.energy_per_element_nj * 1e3),
                    ("throughput_gops", perf.throughput_gops),
                    ("gops_per_watt", perf.gops_per_watt),
                ],
            ));
        }
    }

    // Headline averages over the 16 operations (the paper reports 88x/5.8x average
    // speedup over CPU/GPU; the reproduced model lands at ~84x/~10x).
    let avg = |platform: Platform| -> f64 {
        Operation::ALL
            .iter()
            .map(|&op| platform_performance(platform, op, WIDTH).throughput_gops)
            .sum::<f64>()
            / Operation::ALL.len() as f64
    };
    let simdram16 = avg(Platform::Simdram { banks: 16 });
    for (baseline, lo, hi) in [
        (Platform::Cpu, 40.0, 170.0),
        (Platform::Gpu, 4.0, 20.0),
        (Platform::Ambit, 1.1, 3.5),
    ] {
        datapoints.push(Datapoint::checked(
            SUITE,
            format!("avg_speedup/{WIDTH}b/SIMDRAM:16_vs_{baseline}"),
            vec![("speedup", simdram16 / avg(baseline))],
            Expected {
                metric: "speedup",
                min: lo,
                max: hi,
            },
        ));
    }

    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn covers_all_ops_and_bank_counts_with_passing_verdicts() {
        let datapoints = run();
        // 16 ops x 3 bank counts checked + 16 x 3 baselines info + 3 summaries.
        assert_eq!(datapoints.len(), 16 * 3 + 16 * 3 + 3);
        for banks in BANKS {
            for op in Operation::ALL {
                let name = format!("{}/{WIDTH}b/SIMDRAM:{banks}", op.name());
                let dp = datapoints
                    .iter()
                    .find(|d| d.name == name)
                    .unwrap_or_else(|| panic!("missing {name}"));
                assert_eq!(dp.verdict, Verdict::Pass, "{name}");
                for metric in ["latency_ns", "energy_pj", "throughput_gops"] {
                    assert!(dp.metric(metric).unwrap() > 0.0, "{name}/{metric}");
                }
            }
        }
    }
}
