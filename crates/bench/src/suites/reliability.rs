//! Reliability suite (paper Fig. 13, formerly `fig_reliability`): per-TRA and
//! per-operation failure behaviour as cell-charge variation grows.

use crate::reliability_table;
use crate::report::{Datapoint, Expected};

const SUITE: &str = "reliability";

/// Monte-Carlo trials per sweep point (seeded; deterministic across runs).
pub const TRIALS: usize = 2_000;

pub fn run() -> Vec<Datapoint> {
    let table = reliability_table(TRIALS);
    let mut datapoints = Vec::new();
    for (i, point) in table.iter().enumerate() {
        let metrics = vec![
            ("cell_sigma", point.cell_sigma),
            ("tra_failure_probability", point.tra_failure_probability),
            ("add32_success_probability", point.add32_success_probability),
        ];
        let name = format!("sigma_{:.3}", point.cell_sigma);
        if i == 0 {
            // At zero variation the substrate must be essentially perfect — the paper's
            // operating points all sit in this regime.
            datapoints.push(Datapoint::checked(
                SUITE,
                name,
                metrics,
                Expected {
                    metric: "add32_success_probability",
                    min: 0.999,
                    max: 1.0,
                },
            ));
        } else {
            datapoints.push(Datapoint::info(SUITE, name, metrics));
        }
    }
    // Failure probability must grow (weakly) across the sweep.
    let increase = table.last().unwrap().tra_failure_probability
        - table.first().unwrap().tra_failure_probability;
    datapoints.push(Datapoint::checked(
        SUITE,
        "tra_failure_increase".to_string(),
        vec![("failure_increase", increase)],
        Expected {
            metric: "failure_increase",
            min: 0.0,
            max: 1.0,
        },
    ));
    datapoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    #[test]
    fn sweep_is_covered_and_checks_pass() {
        let datapoints = run();
        assert_eq!(datapoints.len(), 17 + 1);
        for dp in datapoints.iter().filter(|d| d.expected.is_some()) {
            assert_eq!(dp.verdict, Verdict::Pass, "{}", dp.name);
        }
    }
}
