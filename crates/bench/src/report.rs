//! The versioned `BENCH_*.json` report model: datapoints, paper-expected ranges and
//! pass/fail verdicts.
//!
//! Every suite produces a list of [`Datapoint`]s; each datapoint carries its measured
//! metrics plus, where the paper pins down an expected magnitude, an [`Expected`] range
//! on one of those metrics. The verdict is computed at construction time, so a report is
//! self-describing: CI fails when any datapoint's verdict is `"fail"`, and the
//! `bench_diff` gate compares metric values across two reports.

use crate::json::Json;

/// Version of the JSON schema emitted by [`BenchReport::to_json`]. Bump only with a
/// matching update to the golden-file test and `bench_diff`.
pub const SCHEMA_VERSION: u64 = 1;

/// How a datapoint compares to its paper-expected range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The checked metric lies inside the expected range.
    Pass,
    /// The checked metric lies outside the expected range.
    Fail,
    /// No expected range is attached (context/baseline datapoint).
    Info,
}

impl Verdict {
    /// The schema's string encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Info => "info",
        }
    }
}

/// A paper-expected inclusive range on one metric of a datapoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Expected {
    /// Which metric the range constrains.
    pub metric: &'static str,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
}

/// One measured datapoint of a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Datapoint {
    /// The suite that produced the datapoint.
    pub suite: &'static str,
    /// Unique name within the suite (e.g. `addition/32b/SIMDRAM:16`).
    pub name: String,
    /// Ordered metric name → value pairs.
    pub metrics: Vec<(&'static str, f64)>,
    /// Optional paper-expected range on one of the metrics.
    pub expected: Option<Expected>,
    /// Verdict of the datapoint against its expected range.
    pub verdict: Verdict,
}

impl Datapoint {
    /// Builds a context datapoint with no expected range (verdict `info`).
    pub fn info(suite: &'static str, name: String, metrics: Vec<(&'static str, f64)>) -> Self {
        Datapoint {
            suite,
            name,
            metrics,
            expected: None,
            verdict: Verdict::Info,
        }
    }

    /// Builds a checked datapoint: the verdict is `pass` iff `expected.metric` is
    /// present in `metrics` and its value lies inside the inclusive range.
    pub fn checked(
        suite: &'static str,
        name: String,
        metrics: Vec<(&'static str, f64)>,
        expected: Expected,
    ) -> Self {
        let verdict = match metrics.iter().find(|(k, _)| *k == expected.metric) {
            Some(&(_, value)) if value >= expected.min && value <= expected.max => Verdict::Pass,
            _ => Verdict::Fail,
        };
        Datapoint {
            suite,
            name,
            metrics,
            expected: Some(expected),
            verdict,
        }
    }

    /// The value of a metric, if present.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    fn to_json(&self) -> Json {
        let mut metrics = Json::obj();
        for &(name, value) in &self.metrics {
            metrics.set(name, Json::Num(value));
        }
        let mut dp = Json::obj();
        dp.set("suite", Json::Str(self.suite.to_string()));
        dp.set("name", Json::Str(self.name.clone()));
        dp.set("metrics", metrics);
        match &self.expected {
            Some(expected) => {
                let mut e = Json::obj();
                e.set("metric", Json::Str(expected.metric.to_string()));
                e.set("min", Json::Num(expected.min));
                e.set("max", Json::Num(expected.max));
                dp.set("expected", e);
            }
            None => dp.set("expected", Json::Null),
        }
        dp.set("verdict", Json::Str(self.verdict.as_str().to_string()));
        dp
    }
}

/// A complete evaluation report: the datapoints of every suite that ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Names of the suites that ran, in execution order.
    pub suites: Vec<&'static str>,
    /// All datapoints, grouped by suite in execution order.
    pub datapoints: Vec<Datapoint>,
}

impl BenchReport {
    /// Datapoints whose verdict is [`Verdict::Fail`].
    pub fn failures(&self) -> Vec<&Datapoint> {
        self.datapoints
            .iter()
            .filter(|d| d.verdict == Verdict::Fail)
            .collect()
    }

    /// Number of datapoints with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.datapoints
            .iter()
            .filter(|d| d.verdict == verdict)
            .count()
    }

    /// Serializes the report to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.set("schema_version", Json::Num(SCHEMA_VERSION as f64));
        root.set("tool", Json::Str("simdram-bench".to_string()));
        root.set(
            "suites",
            Json::Arr(
                self.suites
                    .iter()
                    .map(|s| Json::Str(s.to_string()))
                    .collect(),
            ),
        );
        root.set(
            "datapoints",
            Json::Arr(self.datapoints.iter().map(Datapoint::to_json).collect()),
        );
        let mut summary = Json::obj();
        summary.set("total", Json::Num(self.datapoints.len() as f64));
        summary.set("pass", Json::Num(self.count(Verdict::Pass) as f64));
        summary.set("fail", Json::Num(self.count(Verdict::Fail) as f64));
        summary.set("info", Json::Num(self.count(Verdict::Info) as f64));
        root.set("summary", summary);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expected(metric: &'static str, min: f64, max: f64) -> Expected {
        Expected { metric, min, max }
    }

    #[test]
    fn checked_datapoints_compute_their_verdict() {
        let inside =
            Datapoint::checked("s", "a".into(), vec![("x", 5.0)], expected("x", 1.0, 10.0));
        assert_eq!(inside.verdict, Verdict::Pass);
        let outside =
            Datapoint::checked("s", "b".into(), vec![("x", 50.0)], expected("x", 1.0, 10.0));
        assert_eq!(outside.verdict, Verdict::Fail);
        // A range on a missing metric can never pass.
        let missing =
            Datapoint::checked("s", "c".into(), vec![("y", 5.0)], expected("x", 0.0, 1.0));
        assert_eq!(missing.verdict, Verdict::Fail);
        assert_eq!(inside.metric("x"), Some(5.0));
        assert_eq!(inside.metric("nope"), None);
    }

    #[test]
    fn report_serializes_schema_fields_and_summary() {
        let report = BenchReport {
            suites: vec!["s"],
            datapoints: vec![
                Datapoint::checked("s", "a".into(), vec![("x", 5.0)], expected("x", 1.0, 10.0)),
                Datapoint::info("s", "b".into(), vec![("y", 2.0)]),
            ],
        };
        let json = report.to_json();
        assert_eq!(json.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(json.get("tool").unwrap().as_str(), Some("simdram-bench"));
        let summary = json.get("summary").unwrap();
        assert_eq!(summary.get("total").unwrap().as_f64(), Some(2.0));
        assert_eq!(summary.get("pass").unwrap().as_f64(), Some(1.0));
        assert_eq!(summary.get("fail").unwrap().as_f64(), Some(0.0));
        assert_eq!(summary.get("info").unwrap().as_f64(), Some(1.0));
        // Round-trips through the writer/parser.
        let text = json.to_pretty_string();
        assert_eq!(Json::parse(&text).unwrap().to_pretty_string(), text);
        assert!(report.failures().is_empty());
    }
}
