//! Minimal hand-rolled JSON value, writer and parser (no external dependencies).
//!
//! The `simdram-bench` pipeline serializes its reports to a versioned JSON schema and
//! the `bench_diff` perf gate parses them back; this module provides exactly the JSON
//! subset both need, with two properties the golden-file tests rely on:
//!
//! * **Deterministic output** — object members keep insertion order, numbers that are
//!   mathematically integral print as integers, and other finite numbers use Rust's
//!   shortest-roundtrip `f64` formatting, so serializing the same report twice yields
//!   byte-identical text.
//! * **Round-trip stability** — `write(parse(s)) == s` for any `s` this writer
//!   produced.
//!
//! Not supported (rejected with an error rather than mis-parsed): non-finite numbers,
//! and exponent-free output is guaranteed on the writer side only — the parser accepts
//! standard JSON number syntax including exponents.

use std::fmt;

/// A JSON value. Objects preserve member insertion order (deterministic serialization).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members kept in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse error: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object (panics if `self` is not an object — builder use
    /// only).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline (the on-disk
    /// `BENCH_*.json` format).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with optional surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first violation.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(
        n.is_finite(),
        "cannot serialize a non-finite number to JSON"
    );
    // Integral values print as integers so counts stay integers across round-trips.
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{literal}'")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer; map lone
                        // surrogates to the replacement character instead of failing.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(err(*pos - 1, "unknown escape")),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at the byte we just consumed.
                let start = *pos - 1;
                let len = utf8_len(b);
                let end = start + len;
                let s = bytes
                    .get(start..end)
                    .and_then(|chunk| std::str::from_utf8(chunk).ok())
                    .ok_or_else(|| err(start, "invalid UTF-8 in string"))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number chars");
    let n: f64 = text
        .parse()
        .map_err(|_| err(start, &format!("invalid number '{text}'")))?;
    if !n.is_finite() {
        return Err(err(start, "non-finite number"));
    }
    Ok(Json::Num(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut metrics = Json::obj();
        metrics.set("latency_ns", Json::Num(197.5));
        metrics.set("count", Json::Num(3.0));
        let mut dp = Json::obj();
        dp.set("name", Json::Str("addition/32b".to_string()));
        dp.set("ok", Json::Bool(true));
        dp.set("metrics", metrics);
        dp.set("notes", Json::Null);
        let mut root = Json::obj();
        root.set("schema_version", Json::Num(1.0));
        root.set("datapoints", Json::Arr(vec![dp]));
        root.set("empty_arr", Json::Arr(vec![]));
        root.set("empty_obj", Json::obj());
        root
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let text = sample().to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, sample());
        assert_eq!(parsed.to_pretty_string(), text);
    }

    #[test]
    fn integral_numbers_serialize_without_a_fraction() {
        let mut s = String::new();
        write_number(&mut s, 16.0);
        assert_eq!(s, "16");
        let mut s = String::new();
        write_number(&mut s, 0.15);
        assert_eq!(s, "0.15");
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let root = sample();
        assert_eq!(root.get("schema_version").unwrap().as_f64(), Some(1.0));
        let dps = root.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dps[0].get("name").unwrap().as_str(), Some("addition/32b"));
        assert_eq!(
            dps[0]
                .get("metrics")
                .unwrap()
                .get("latency_ns")
                .unwrap()
                .as_f64(),
            Some(197.5)
        );
        assert!(root.get("missing").is_none());
        assert_eq!(root.get("empty_obj").unwrap().as_obj(), Some(&[][..]));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = Json::Str("line1\nline2\t\"quoted\" \\slash κλμ".to_string());
        let text = original.to_pretty_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite must be rejected");
        let e = Json::parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn parses_standard_json_syntax() {
        let v = Json::parse("{\"a\": [1, -2.5, 1e3, true, false, null]}").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[5], Json::Null);
    }
}
