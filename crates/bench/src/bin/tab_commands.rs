//! Experiment T1 — DRAM command counts per operation: SIMDRAM (MAJ/NOT) vs the Ambit-style
//! AND/OR/NOT baseline, for 8/16/32/64-bit operands.
//!
//! Regenerates the paper's per-operation command/latency comparison table. Fewer commands
//! translate directly into lower latency and higher throughput, because every command is an
//! AAP/AP of fixed duration.

use simdram_bench::{command_table, WIDTHS};

fn main() {
    println!("Experiment T1: DRAM commands per operation (lower is better)");
    println!(
        "{:<16} {:>6} {:>16} {:>14} {:>12}",
        "operation", "width", "SIMDRAM (MAJ)", "Ambit (AND)", "reduction"
    );
    for width in WIDTHS {
        for row in command_table(width) {
            println!(
                "{:<16} {:>6} {:>16} {:>14} {:>11.2}x",
                row.op.name(),
                row.width,
                row.simdram_commands,
                row.ambit_commands,
                row.reduction()
            );
        }
        println!();
    }
}
