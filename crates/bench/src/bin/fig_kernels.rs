//! Experiment F3 — real-world application kernels: execution time on CPU, GPU, Ambit and
//! SIMDRAM (1/4/16 banks) and the resulting speedups.
//!
//! Regenerates the paper's application figure for the seven kernels (VGG-13, VGG-16,
//! LeNet-5, kNN, TPC-H scan, BitWeaving, brightness). The shape to check: SIMDRAM:16 beats
//! Ambit on every kernel (the paper reports up to ~2.5×) and beats the CPU and GPU by large
//! factors on the MAC-heavy ML kernels.

use simdram_baselines::Platform;
use simdram_bench::kernel_table;

fn main() {
    println!("Experiment F3: application kernel execution time (ms) and SIMDRAM:16 speedups");
    print!("{:<12}", "kernel");
    for platform in Platform::paper_set() {
        print!(" {:>14}", platform.to_string());
    }
    println!(" {:>10} {:>10} {:>10}", "vs CPU", "vs GPU", "vs Ambit");

    for row in kernel_table() {
        print!("{:<12}", row.name);
        for cost in &row.costs {
            print!(" {:>14.3}", cost.time_ms);
        }
        println!(
            " {:>9.1}x {:>9.1}x {:>9.2}x",
            row.speedup_vs_cpu, row.speedup_vs_gpu, row.speedup_vs_ambit
        );
    }

    println!("\nEnergy (mJ) per kernel:");
    print!("{:<12}", "kernel");
    for platform in Platform::paper_set() {
        print!(" {:>14}", platform.to_string());
    }
    println!();
    for row in kernel_table() {
        print!("{:<12}", row.name);
        for cost in &row.costs {
            print!(" {:>14.3}", cost.energy_mj);
        }
        println!();
    }
}
