//! `bench_diff` — the CI perf-regression gate.
//!
//! ```text
//! cargo run --release -p simdram-bench --bin bench_diff -- \
//!     crates/bench/baseline.json BENCH_7.json [--threshold 0.15]
//! ```
//!
//! Compares a freshly generated `BENCH_*.json` against the committed baseline and exits
//! non-zero when any shared datapoint regresses by more than the threshold (default
//! 15%) on a gated metric:
//!
//! * lower-is-better: `latency_ns`, `busy_latency_ns`, `energy_pj`, `energy_nj`,
//!   `time_ms`, `energy_mj` — fail when `fresh > base × (1 + threshold)`;
//! * higher-is-better: `throughput_gops`, `gops_per_watt`, `speedup_*` — fail when
//!   `fresh < base × (1 − threshold)`.
//!
//! Datapoints present in the baseline but missing from the fresh report — and gated
//! metrics that disappeared from a shared datapoint — count as coverage regressions and
//! also fail the gate, with one exception: baseline datapoints whose verdict is `info`
//! (informational context such as the host-dependent `estimate/simspeed` metric) are
//! *skipped* when absent from the fresh report instead of failing it, so informational
//! metrics can come and go without a lock-step baseline refresh. The skip is
//! symmetric for shared datapoints: a gated metric may disappear when the datapoint is
//! informational in *either* report (a checked baseline entry demoted to context in
//! the fresh report is context all the same). Informational
//! datapoints present in **both** reports are still compared on the gated metrics —
//! the deterministic CPU/GPU/Ambit baselines and kernel timings are `info`-verdict and
//! deliberately gated — which is why host-dependent metrics must use names outside the
//! gated lists (the `host_*`/`*_per_host_s` convention). New datapoints are allowed
//! (they will be gated once the baseline is refreshed). See README § "Evaluation
//! pipeline" for the baseline-update (override) procedure.

use std::collections::BTreeMap;
use std::process::ExitCode;

use simdram_bench::json::Json;

/// Metrics where a larger fresh value is a regression.
const LOWER_IS_BETTER: [&str; 6] = [
    "latency_ns",
    "busy_latency_ns",
    "energy_pj",
    "energy_nj",
    "time_ms",
    "energy_mj",
];

/// Metrics where a smaller fresh value is a regression.
const HIGHER_IS_BETTER: [&str; 6] = [
    "throughput_gops",
    "gops_per_watt",
    "speedup",
    "speedup_vs_cpu",
    "speedup_vs_gpu",
    "speedup_vs_ambit",
];

type Metrics = BTreeMap<String, f64>;

/// One datapoint as loaded from a report: its metrics plus whether it is informational
/// (`verdict: "info"`, i.e. context with no paper-expected range).
struct Entry {
    metrics: Metrics,
    informational: bool,
}

fn load(path: &str) -> Result<BTreeMap<String, Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let version = json
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing schema_version"))?;
    if version != simdram_bench::report::SCHEMA_VERSION as f64 {
        return Err(format!(
            "{path}: schema_version {version} is not the supported {}",
            simdram_bench::report::SCHEMA_VERSION
        ));
    }
    let datapoints = json
        .get("datapoints")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing datapoints array"))?;
    let mut index = BTreeMap::new();
    for dp in datapoints {
        let suite = dp
            .get("suite")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: datapoint without suite"))?;
        let name = dp
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: datapoint without name"))?;
        let mut metrics = Metrics::new();
        if let Some(members) = dp.get("metrics").and_then(Json::as_obj) {
            for (key, value) in members {
                if let Some(v) = value.as_f64() {
                    metrics.insert(key.clone(), v);
                }
            }
        }
        let informational = dp.get("verdict").and_then(Json::as_str) == Some("info");
        index.insert(
            format!("{suite}/{name}"),
            Entry {
                metrics,
                informational,
            },
        );
    }
    Ok(index)
}

struct Regression {
    key: String,
    metric: &'static str,
    base: f64,
    fresh: f64,
}

fn compare(
    baseline: &BTreeMap<String, Entry>,
    fresh: &BTreeMap<String, Entry>,
    threshold: f64,
) -> (Vec<Regression>, Vec<String>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut skipped = Vec::new();
    for (key, base_entry) in baseline {
        let base_metrics = &base_entry.metrics;
        let Some(fresh_entry) = fresh.get(key) else {
            // Informational context (e.g. host-dependent simulator-speed metrics) may
            // come and go without a baseline refresh; only checked coverage is gated.
            if base_entry.informational {
                skipped.push(key.clone());
            } else {
                missing.push(key.clone());
            }
            continue;
        };
        let fresh_metrics = &fresh_entry.metrics;
        for (metric, lower_is_better) in LOWER_IS_BETTER
            .iter()
            .map(|&m| (m, true))
            .chain(HIGHER_IS_BETTER.iter().map(|&m| (m, false)))
        {
            let Some(&base) = base_metrics.get(metric) else {
                continue;
            };
            let Some(&new) = fresh_metrics.get(metric) else {
                // A gated metric that disappeared is a coverage loss, not a pass —
                // unless the datapoint is informational on *either* side. The check is
                // symmetric because a datapoint can change verdict across reports (a
                // range demoted to context in the fresh report, or promoted in the
                // baseline); informational context may reshape its metrics without a
                // lock-step baseline refresh regardless of which report says so.
                if base_entry.informational || fresh_entry.informational {
                    skipped.push(format!("{key} [{metric}]"));
                } else {
                    missing.push(format!("{key} [{metric}]"));
                }
                continue;
            };
            let regressed = if lower_is_better {
                base > 0.0 && new > base * (1.0 + threshold)
            } else {
                base > 0.0 && new < base * (1.0 - threshold)
            };
            if regressed {
                regressions.push(Regression {
                    key: key.clone(),
                    metric,
                    base,
                    fresh: new,
                });
            }
        }
    }
    (regressions, missing, skipped)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.15;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = match argv.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(t)) if t > 0.0 => t,
                    _ => {
                        eprintln!("--threshold requires a positive number");
                        return ExitCode::from(64);
                    }
                };
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff BASELINE.json FRESH.json [--threshold 0.15]");
        return ExitCode::from(64);
    }

    let (baseline, fresh) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let (regressions, missing, skipped) = compare(&baseline, &fresh, threshold);
    for key in &skipped {
        println!("SKIPPED {key}: informational in baseline, absent from fresh report");
    }
    for key in &missing {
        println!("MISSING {key}: present in baseline, absent from fresh report");
    }
    for r in &regressions {
        let delta = (r.fresh / r.base - 1.0) * 100.0;
        println!(
            "REGRESSION {} [{}]: {} -> {} ({:+.1}%)",
            r.key, r.metric, r.base, r.fresh, delta
        );
    }
    if regressions.is_empty() && missing.is_empty() {
        println!(
            "perf gate: {} baseline datapoints compared, none regressed beyond {:.0}%",
            baseline.len(),
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf gate: {} regression(s), {} missing datapoint(s) (threshold {:.0}%); \
             see README \"Evaluation pipeline\" for the baseline override procedure",
            regressions.len(),
            missing.len(),
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(informational: bool, metrics: &[(&str, f64)]) -> Entry {
        Entry {
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            informational,
        }
    }

    fn report(entries: Vec<(&str, Entry)>) -> BTreeMap<String, Entry> {
        entries
            .into_iter()
            .map(|(k, e)| (k.to_string(), e))
            .collect()
    }

    #[test]
    fn informational_baseline_entries_are_skipped_when_dropped() {
        let baseline = report(vec![
            ("estimate/simspeed", entry(true, &[("latency_ns", 5.0)])),
            (
                "estimate/machine_totals",
                entry(false, &[("busy_latency_ns", 10.0)]),
            ),
        ]);
        let fresh = report(vec![(
            "estimate/machine_totals",
            entry(false, &[("busy_latency_ns", 10.0)]),
        )]);
        let (regressions, missing, skipped) = compare(&baseline, &fresh, 0.15);
        assert!(regressions.is_empty());
        assert!(missing.is_empty());
        assert_eq!(skipped, vec!["estimate/simspeed".to_string()]);
    }

    #[test]
    fn checked_baseline_entries_still_fail_when_dropped() {
        let baseline = report(vec![(
            "kernels/add32",
            entry(false, &[("latency_ns", 10.0)]),
        )]);
        let fresh = report(vec![]);
        let (_, missing, skipped) = compare(&baseline, &fresh, 0.15);
        assert_eq!(missing, vec!["kernels/add32".to_string()]);
        assert!(skipped.is_empty());
    }

    #[test]
    fn dropped_gated_metric_is_skipped_only_for_informational_datapoints() {
        let baseline = report(vec![
            ("a/info", entry(true, &[("latency_ns", 5.0), ("x", 1.0)])),
            ("a/checked", entry(false, &[("latency_ns", 5.0)])),
        ]);
        let fresh = report(vec![
            ("a/info", entry(true, &[("x", 1.0)])),
            ("a/checked", entry(false, &[("x", 2.0)])),
        ]);
        let (_, missing, skipped) = compare(&baseline, &fresh, 0.15);
        assert_eq!(skipped, vec!["a/info [latency_ns]".to_string()]);
        assert_eq!(missing, vec!["a/checked [latency_ns]".to_string()]);
    }

    #[test]
    fn dropped_gated_metric_honors_informational_verdict_on_either_side() {
        // The info skip must be symmetric: a datapoint demoted to informational in the
        // fresh report (checked in the baseline) may drop a gated metric without
        // failing the gate, exactly like one that was informational in the baseline.
        let baseline = report(vec![
            (
                "a/demoted",
                entry(false, &[("latency_ns", 5.0), ("x", 1.0)]),
            ),
            ("a/promoted", entry(true, &[("latency_ns", 5.0)])),
        ]);
        let fresh = report(vec![
            ("a/demoted", entry(true, &[("x", 1.0)])),
            ("a/promoted", entry(false, &[("x", 2.0)])),
        ]);
        let (regressions, missing, skipped) = compare(&baseline, &fresh, 0.15);
        assert!(regressions.is_empty());
        assert!(missing.is_empty());
        assert_eq!(
            skipped,
            vec![
                "a/demoted [latency_ns]".to_string(),
                "a/promoted [latency_ns]".to_string(),
            ]
        );
    }

    #[test]
    fn regressions_respect_direction_and_threshold() {
        let baseline = report(vec![(
            "k/dp",
            entry(false, &[("latency_ns", 100.0), ("throughput_gops", 10.0)]),
        )]);
        let fresh = report(vec![(
            "k/dp",
            entry(false, &[("latency_ns", 120.0), ("throughput_gops", 8.0)]),
        )]);
        let (regressions, missing, skipped) = compare(&baseline, &fresh, 0.15);
        assert!(missing.is_empty() && skipped.is_empty());
        let names: Vec<&str> = regressions.iter().map(|r| r.metric).collect();
        assert_eq!(names, vec!["latency_ns", "throughput_gops"]);
        // Within threshold: no regression.
        let fresh_ok = report(vec![(
            "k/dp",
            entry(false, &[("latency_ns", 110.0), ("throughput_gops", 9.0)]),
        )]);
        let (regressions, _, _) = compare(&baseline, &fresh_ok, 0.15);
        assert!(regressions.is_empty());
    }
}
