//! `bench_diff` — the CI perf-regression gate.
//!
//! ```text
//! cargo run --release -p simdram-bench --bin bench_diff -- \
//!     crates/bench/baseline.json BENCH_3.json [--threshold 0.15]
//! ```
//!
//! Compares a freshly generated `BENCH_*.json` against the committed baseline and exits
//! non-zero when any shared datapoint regresses by more than the threshold (default
//! 15%) on a gated metric:
//!
//! * lower-is-better: `latency_ns`, `busy_latency_ns`, `energy_pj`, `energy_nj`,
//!   `time_ms`, `energy_mj` — fail when `fresh > base × (1 + threshold)`;
//! * higher-is-better: `throughput_gops`, `gops_per_watt`, `speedup_*` — fail when
//!   `fresh < base × (1 − threshold)`.
//!
//! Datapoints present in the baseline but missing from the fresh report — and gated
//! metrics that disappeared from a shared datapoint — count as coverage regressions and
//! also fail the gate. New datapoints are allowed (they will be gated once the baseline
//! is refreshed). See README § "Evaluation pipeline" for the baseline-update (override)
//! procedure.

use std::collections::BTreeMap;
use std::process::ExitCode;

use simdram_bench::json::Json;

/// Metrics where a larger fresh value is a regression.
const LOWER_IS_BETTER: [&str; 6] = [
    "latency_ns",
    "busy_latency_ns",
    "energy_pj",
    "energy_nj",
    "time_ms",
    "energy_mj",
];

/// Metrics where a smaller fresh value is a regression.
const HIGHER_IS_BETTER: [&str; 6] = [
    "throughput_gops",
    "gops_per_watt",
    "speedup",
    "speedup_vs_cpu",
    "speedup_vs_gpu",
    "speedup_vs_ambit",
];

type Metrics = BTreeMap<String, f64>;

fn load(path: &str) -> Result<BTreeMap<String, Metrics>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let version = json
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing schema_version"))?;
    if version != simdram_bench::report::SCHEMA_VERSION as f64 {
        return Err(format!(
            "{path}: schema_version {version} is not the supported {}",
            simdram_bench::report::SCHEMA_VERSION
        ));
    }
    let datapoints = json
        .get("datapoints")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing datapoints array"))?;
    let mut index = BTreeMap::new();
    for dp in datapoints {
        let suite = dp
            .get("suite")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: datapoint without suite"))?;
        let name = dp
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: datapoint without name"))?;
        let mut metrics = Metrics::new();
        if let Some(members) = dp.get("metrics").and_then(Json::as_obj) {
            for (key, value) in members {
                if let Some(v) = value.as_f64() {
                    metrics.insert(key.clone(), v);
                }
            }
        }
        index.insert(format!("{suite}/{name}"), metrics);
    }
    Ok(index)
}

struct Regression {
    key: String,
    metric: &'static str,
    base: f64,
    fresh: f64,
}

fn compare(
    baseline: &BTreeMap<String, Metrics>,
    fresh: &BTreeMap<String, Metrics>,
    threshold: f64,
) -> (Vec<Regression>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for (key, base_metrics) in baseline {
        let Some(fresh_metrics) = fresh.get(key) else {
            missing.push(key.clone());
            continue;
        };
        for (metric, lower_is_better) in LOWER_IS_BETTER
            .iter()
            .map(|&m| (m, true))
            .chain(HIGHER_IS_BETTER.iter().map(|&m| (m, false)))
        {
            let Some(&base) = base_metrics.get(metric) else {
                continue;
            };
            let Some(&new) = fresh_metrics.get(metric) else {
                // A gated metric that disappeared is a coverage loss, not a pass.
                missing.push(format!("{key} [{metric}]"));
                continue;
            };
            let regressed = if lower_is_better {
                base > 0.0 && new > base * (1.0 + threshold)
            } else {
                base > 0.0 && new < base * (1.0 - threshold)
            };
            if regressed {
                regressions.push(Regression {
                    key: key.clone(),
                    metric,
                    base,
                    fresh: new,
                });
            }
        }
    }
    (regressions, missing)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.15;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = match argv.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(t)) if t > 0.0 => t,
                    _ => {
                        eprintln!("--threshold requires a positive number");
                        return ExitCode::from(64);
                    }
                };
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff BASELINE.json FRESH.json [--threshold 0.15]");
        return ExitCode::from(64);
    }

    let (baseline, fresh) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let (regressions, missing) = compare(&baseline, &fresh, threshold);
    for key in &missing {
        println!("MISSING {key}: present in baseline, absent from fresh report");
    }
    for r in &regressions {
        let delta = (r.fresh / r.base - 1.0) * 100.0;
        println!(
            "REGRESSION {} [{}]: {} -> {} ({:+.1}%)",
            r.key, r.metric, r.base, r.fresh, delta
        );
    }
    if regressions.is_empty() && missing.is_empty() {
        println!(
            "perf gate: {} baseline datapoints compared, none regressed beyond {:.0}%",
            baseline.len(),
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf gate: {} regression(s), {} missing datapoint(s) (threshold {:.0}%); \
             see README \"Evaluation pipeline\" for the baseline override procedure",
            regressions.len(),
            missing.len(),
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}
