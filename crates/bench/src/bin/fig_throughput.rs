//! Experiment F1 — throughput (GOPS) of the 16 SIMDRAM operations on every platform:
//! CPU, GPU, Ambit and SIMDRAM with 1, 4 and 16 compute banks.
//!
//! Regenerates the series of the paper's throughput figure; the shape to check is that
//! SIMDRAM:16 exceeds Ambit by a low single-digit factor and the CPU by a large factor,
//! with throughput falling as operand width grows.

use simdram_baselines::Platform;
use simdram_bench::{platform_table, WIDTHS};

fn main() {
    println!("Experiment F1: throughput in GOPS (higher is better)");
    for width in WIDTHS {
        println!("\n== {width}-bit operands ==");
        print!("{:<16}", "operation");
        for platform in Platform::paper_set() {
            print!(" {:>12}", platform.to_string());
        }
        println!();
        let rows = platform_table(width);
        for op_rows in rows.chunks(Platform::paper_set().len()) {
            print!("{:<16}", op_rows[0].op.name());
            for row in op_rows {
                print!(" {:>12.2}", row.throughput_gops);
            }
            println!();
        }
    }

    // Summary line mirroring the paper's headline averages.
    let rows = platform_table(32);
    let avg = |platform: Platform| {
        let values: Vec<f64> = rows
            .iter()
            .filter(|r| r.platform == platform)
            .map(|r| r.throughput_gops)
            .collect();
        values.iter().sum::<f64>() / values.len() as f64
    };
    let simdram = avg(Platform::Simdram { banks: 16 });
    println!(
        "\nAverage over the 16 operations at 32 bits: SIMDRAM:16 = {:.1} GOPS, \
         {:.1}x CPU, {:.1}x GPU, {:.1}x Ambit",
        simdram,
        simdram / avg(Platform::Cpu),
        simdram / avg(Platform::Gpu),
        simdram / avg(Platform::Ambit)
    );
}
