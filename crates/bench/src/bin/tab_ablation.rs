//! Experiment A1 — ablation of the μProgram generator's optimizations.
//!
//! Quantifies how much each Step-2 optimization (TRA-row reuse and direct destination
//! writes) contributes to the final command count, per operation. This is the design-choice
//! ablation called out in DESIGN.md.

use simdram_bench::ablation_table;

fn main() {
    let width = 32;
    println!(
        "Experiment A1: DRAM commands per {width}-bit operation with Step-2 optimizations toggled"
    );
    println!(
        "{:<16} {:>8} {:>12} {:>14} {:>11} {:>10}",
        "operation", "naive", "reuse only", "direct-out only", "optimized", "saving"
    );
    for row in ablation_table(width) {
        let saving = 100.0 * (1.0 - row.optimized as f64 / row.naive as f64);
        println!(
            "{:<16} {:>8} {:>12} {:>14} {:>11} {:>9.1}%",
            row.op.name(),
            row.naive,
            row.reuse_only,
            row.direct_out_only,
            row.optimized,
            saving
        );
    }
}
