//! Experiment F2 — energy efficiency (GOPS/W) of the 16 SIMDRAM operations on every
//! platform.
//!
//! Regenerates the series of the paper's energy-efficiency figure; the shape to check is
//! that SIMDRAM is far more efficient than the CPU and GPU (data never crosses the channel)
//! and a small factor better than Ambit (fewer row activations per operation).

use simdram_baselines::Platform;
use simdram_bench::{platform_table, WIDTHS};

fn main() {
    println!("Experiment F2: energy efficiency in GOPS/W (higher is better)");
    for width in WIDTHS {
        println!("\n== {width}-bit operands ==");
        print!("{:<16}", "operation");
        for platform in Platform::paper_set() {
            print!(" {:>12}", platform.to_string());
        }
        println!();
        for op_rows in platform_table(width).chunks(Platform::paper_set().len()) {
            print!("{:<16}", op_rows[0].op.name());
            for row in op_rows {
                print!(" {:>12.2}", row.gops_per_watt);
            }
            println!();
        }
    }

    let rows = platform_table(32);
    let avg = |platform: Platform| {
        let values: Vec<f64> = rows
            .iter()
            .filter(|r| r.platform == platform)
            .map(|r| r.gops_per_watt)
            .collect();
        values.iter().sum::<f64>() / values.len() as f64
    };
    let simdram = avg(Platform::Simdram { banks: 16 });
    println!(
        "\nAverage over the 16 operations at 32 bits: SIMDRAM:16 = {:.1} GOPS/W, \
         {:.0}x CPU, {:.0}x GPU, {:.1}x Ambit",
        simdram,
        simdram / avg(Platform::Cpu),
        simdram / avg(Platform::Gpu),
        simdram / avg(Platform::Ambit)
    );
}
