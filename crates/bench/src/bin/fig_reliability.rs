//! Experiment F4 — reliability of triple-row activation under manufacturing process
//! variation.
//!
//! Sweeps the relative cell-charge variation from 0% to 40% and reports the worst-case
//! (2-vs-1) per-TRA failure probability and the success probability of a complete 32-bit
//! addition μProgram, plus the operating points of the named technology nodes. The shape to
//! check: all realistic nodes sit at (or indistinguishably close to) zero failures, and
//! failures only appear when variation is pushed far beyond them — the paper's conclusion
//! that SIMDRAM operates correctly as DRAM technology scales down.

use simdram_bench::reliability_table;
use simdram_dram::variation::{TechnologyNode, VariationModel};

fn main() {
    println!(
        "Experiment F4: reliability under process variation (50,000 Monte Carlo trials/point)"
    );
    println!(
        "{:>12} {:>22} {:>26}",
        "cell sigma", "P(TRA failure)", "P(32-bit add succeeds)"
    );
    for point in reliability_table(50_000) {
        println!(
            "{:>11.1}% {:>22.6} {:>26.6}",
            point.cell_sigma * 100.0,
            point.tra_failure_probability,
            point.add32_success_probability
        );
    }

    println!("\nTechnology-node operating points:");
    println!(
        "{:>8} {:>12} {:>22}",
        "node", "cell sigma", "P(TRA failure)"
    );
    for node in TechnologyNode::ALL {
        let model = VariationModel::for_node(node);
        let p = model.tra_failure_probability(50_000, 7);
        println!(
            "{:>8} {:>11.1}% {:>22.6}",
            node.name(),
            node.cell_sigma() * 100.0,
            p
        );
    }
}
