//! Experiment T2 — area overhead of SIMDRAM's hardware additions.
//!
//! Reports the DRAM-chip overhead of the B-group rows and row-decoder changes, and the
//! CPU-die overhead of the memory-controller control unit and transposition unit. The shape
//! to check: DRAM overhead below 1% and a negligible CPU-side overhead, matching the
//! paper's claim.

use simdram_core::AreaModel;

fn main() {
    let model = AreaModel::default();
    println!("Experiment T2: area overhead");
    println!(
        "  DRAM chip: {} B-group rows per {}-row subarray + decoder changes -> {:.2}% of the chip",
        model.bgroup_rows,
        model.rows_per_subarray,
        model.dram_overhead_percent()
    );
    println!(
        "  CPU die  : control unit {:.2} mm^2 + transposition unit {:.2} mm^2 -> {:.3}% of a {:.0} mm^2 die",
        model.control_unit_mm2,
        model.transposition_unit_mm2,
        model.cpu_overhead_percent(),
        model.cpu_die_mm2
    );
    println!(
        "\nPaper claim: < 1% DRAM chip area overhead. Measured: {:.2}% -> {}",
        model.dram_overhead_percent(),
        if model.dram_overhead_percent() < 1.0 {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}
