//! `simdram-bench` — the unified evaluation CLI.
//!
//! ```text
//! cargo run --release -p simdram-bench -- --suite all --out BENCH_7.json
//! cargo run --release -p simdram-bench -- --suite throughput,energy
//! cargo run --release -p simdram-bench -- --list
//! ```
//!
//! Runs the selected suites, prints a human summary, optionally writes the versioned
//! JSON report to `--out`, and exits with status 2 when any datapoint's verdict falls
//! outside its paper-expected range (the JSON is still written first, so CI can upload
//! the failing report as an artifact).

use std::process::ExitCode;

use simdram_bench::report::Verdict;
use simdram_bench::suites::{run_suites, Suite};

struct Args {
    suites: Vec<Suite>,
    out: Option<String>,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simdram-bench [--suite NAME[,NAME...]] [--out FILE] [--list]\n\
         suites: {} | all (default)",
        Suite::ALL
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    std::process::exit(64);
}

fn parse_args() -> Args {
    let mut suites = Vec::new();
    let mut out = None;
    let mut list = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--suite" => {
                let Some(value) = argv.next() else { usage() };
                for name in value.split(',') {
                    if name == "all" {
                        suites.extend(Suite::ALL);
                    } else {
                        match Suite::from_name(name) {
                            Some(suite) => suites.push(suite),
                            None => {
                                eprintln!("unknown suite '{name}'");
                                usage();
                            }
                        }
                    }
                }
            }
            "--out" => {
                let Some(value) = argv.next() else { usage() };
                out = Some(value);
            }
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if suites.is_empty() {
        suites.extend(Suite::ALL);
    }
    // First occurrence wins, including non-adjacent repeats (`--suite all,throughput`
    // must not run — or report — the throughput suite twice).
    let mut seen = Vec::new();
    suites.retain(|s| {
        if seen.contains(s) {
            false
        } else {
            seen.push(*s);
            true
        }
    });
    Args { suites, out, list }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        println!("available suites:");
        for suite in Suite::ALL {
            println!("  {}", suite.name());
        }
        return ExitCode::SUCCESS;
    }

    let report = run_suites(&args.suites);

    println!(
        "simdram-bench: {} suites, {} datapoints",
        report.suites.len(),
        report.datapoints.len()
    );
    for &suite in &report.suites {
        let of_suite: Vec<_> = report
            .datapoints
            .iter()
            .filter(|d| d.suite == suite)
            .collect();
        let pass = of_suite
            .iter()
            .filter(|d| d.verdict == Verdict::Pass)
            .count();
        let fail = of_suite
            .iter()
            .filter(|d| d.verdict == Verdict::Fail)
            .count();
        let info = of_suite
            .iter()
            .filter(|d| d.verdict == Verdict::Info)
            .count();
        println!("  {suite:<12} {pass:>3} pass  {fail:>3} fail  {info:>3} info");
    }

    let failures = report.failures();
    for dp in &failures {
        let expected = dp.expected.as_ref().expect("failed datapoints are checked");
        println!(
            "FAIL {}/{}: {} = {:?} outside paper-expected [{}, {}]",
            dp.suite,
            dp.name,
            expected.metric,
            dp.metric(expected.metric),
            expected.min,
            expected.max
        );
    }

    if let Some(path) = &args.out {
        let text = report.to_json().to_pretty_string();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if failures.is_empty() {
        println!("all checked datapoints within paper-expected ranges");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} datapoint(s) outside their paper-expected range",
            failures.len()
        );
        ExitCode::from(2)
    }
}
