//! # simdram-bench — the unified evaluation pipeline
//!
//! One CLI regenerates the whole SIMDRAM evaluation and serializes it to a versioned,
//! machine-readable JSON report with paper-expected ranges and per-datapoint verdicts:
//!
//! ```sh
//! cargo run --release -p simdram-bench -- --suite all --out BENCH_7.json
//! ```
//!
//! The former one-off `fig_*`/`tab_*` binaries are now [`suites`] (see the table there
//! for the suite ↔ paper-figure mapping). The `bench_diff` companion binary compares two
//! reports and fails on latency/energy regressions — the CI perf gate.
//!
//! The crate is structured as:
//!
//! * [`json`] — a hand-rolled JSON value/writer/parser (no external dependencies);
//! * [`report`] — the `BENCH_*.json` schema: datapoints, expected ranges, verdicts;
//! * [`suites`] — the ten evaluation suites behind `--suite` (including the `serving`
//!   suite exercising the multi-tenant `simdram-serve` layer);
//! * the table-generation functions below, shared by the suites and the Criterion
//!   micro-benchmarks so they stay unit-testable.
//!
//! ## Example
//!
//! Every suite emits [`report::Datapoint`]s; checked ones carry a paper-expected range
//! and verdict:
//!
//! ```
//! use simdram_bench::report::{Datapoint, Expected, Verdict};
//!
//! let dp = Datapoint::checked(
//!     "demo",
//!     "addition/32b".into(),
//!     vec![("throughput_gops", 2.8)],
//!     Expected { metric: "throughput_gops", min: 1.0, max: 10.0 },
//! );
//! assert_eq!(dp.verdict, Verdict::Pass);
//! assert_eq!(dp.metric("throughput_gops"), Some(2.8));
//! ```

pub mod json;
pub mod report;
pub mod suites;

use simdram_apps::{kernel_comparison, paper_kernels, speedup, KernelPlatformCost};
use simdram_baselines::{platform_performance, Platform};
use simdram_dram::variation::{reliability_sweep, ReliabilityPoint};
use simdram_logic::Operation;
use simdram_uprog::{build_program, CodegenOptions, Target};

/// Widths evaluated in the operation-level tables and figures.
pub const WIDTHS: [usize; 4] = [8, 16, 32, 64];

/// One row of the command-count table (experiment T1).
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRow {
    /// The operation.
    pub op: Operation,
    /// Operand width in bits.
    pub width: usize,
    /// DRAM commands in the SIMDRAM (MAJ/NOT) μProgram.
    pub simdram_commands: usize,
    /// DRAM commands in the Ambit-style (AND/OR/NOT) μProgram.
    pub ambit_commands: usize,
}

impl CommandRow {
    /// Command-count reduction of SIMDRAM over Ambit.
    pub fn reduction(&self) -> f64 {
        self.ambit_commands as f64 / self.simdram_commands as f64
    }
}

/// Generates the command-count table for all 16 operations at the given width.
pub fn command_table(width: usize) -> Vec<CommandRow> {
    Operation::ALL
        .iter()
        .map(|&op| CommandRow {
            op,
            width,
            simdram_commands: build_program(
                Target::Simdram,
                op,
                width,
                CodegenOptions::optimized(),
            )
            .command_count(),
            ambit_commands: build_program(Target::Ambit, op, width, CodegenOptions::optimized())
                .command_count(),
        })
        .collect()
}

/// One row of the throughput / energy figures (experiments F1 and F2).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// The operation.
    pub op: Operation,
    /// Operand width in bits.
    pub width: usize,
    /// The platform evaluated.
    pub platform: Platform,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Energy efficiency in GOPS/W.
    pub gops_per_watt: f64,
}

/// Evaluates every (operation, platform) pair at one width.
pub fn platform_table(width: usize) -> Vec<PlatformRow> {
    let mut rows = Vec::new();
    for &op in &Operation::ALL {
        for platform in Platform::paper_set() {
            let perf = platform_performance(platform, op, width);
            rows.push(PlatformRow {
                op,
                width,
                platform,
                throughput_gops: perf.throughput_gops,
                gops_per_watt: perf.gops_per_watt,
            });
        }
    }
    rows
}

/// One row of the kernel-speedup figure (experiment F3).
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Per-platform execution costs.
    pub costs: Vec<KernelPlatformCost>,
    /// Speedup of SIMDRAM:16 over the CPU.
    pub speedup_vs_cpu: f64,
    /// Speedup of SIMDRAM:16 over the GPU.
    pub speedup_vs_gpu: f64,
    /// Speedup of SIMDRAM:16 over Ambit.
    pub speedup_vs_ambit: f64,
}

/// Generates the kernel comparison for the seven application kernels.
pub fn kernel_table() -> Vec<KernelRow> {
    paper_kernels(2024)
        .into_iter()
        .map(|kernel| {
            let costs = kernel_comparison(kernel.as_ref());
            let simdram = Platform::Simdram { banks: 16 };
            KernelRow {
                name: kernel.name(),
                speedup_vs_cpu: speedup(&costs, Platform::Cpu, simdram),
                speedup_vs_gpu: speedup(&costs, Platform::Gpu, simdram),
                speedup_vs_ambit: speedup(&costs, Platform::Ambit, simdram),
                costs,
            }
        })
        .collect()
}

/// Generates the reliability sweep (experiment F4): per-TRA and per-operation failure
/// behaviour as cell-charge variation grows.
pub fn reliability_table(trials: usize) -> Vec<ReliabilityPoint> {
    let add32 = build_program(
        Target::Simdram,
        Operation::Add,
        32,
        CodegenOptions::optimized(),
    );
    reliability_sweep(0.4, 16, trials, add32.tra_count(), 2024)
}

/// One row of the ablation table (experiment A1).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The operation.
    pub op: Operation,
    /// Commands with no optimization.
    pub naive: usize,
    /// Commands with only TRA-row reuse enabled.
    pub reuse_only: usize,
    /// Commands with only direct destination writes enabled.
    pub direct_out_only: usize,
    /// Commands with both optimizations (the SIMDRAM default).
    pub optimized: usize,
}

/// Generates the μProgram-optimization ablation table at one width.
pub fn ablation_table(width: usize) -> Vec<AblationRow> {
    Operation::ALL
        .iter()
        .map(|&op| {
            let count = |reuse, direct| {
                build_program(
                    Target::Simdram,
                    op,
                    width,
                    CodegenOptions {
                        reuse_tra_rows: reuse,
                        direct_output_write: direct,
                    },
                )
                .command_count()
            };
            AblationRow {
                op,
                naive: count(false, false),
                reuse_only: count(true, false),
                direct_out_only: count(false, true),
                optimized: count(true, true),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_table_shows_simdram_advantage() {
        let table = command_table(32);
        assert_eq!(table.len(), 16);
        assert!(table
            .iter()
            .all(|row| row.simdram_commands <= row.ambit_commands));
        assert!(table.iter().any(|row| row.reduction() > 2.0));
    }

    #[test]
    fn platform_table_covers_all_combinations() {
        let table = platform_table(8);
        assert_eq!(table.len(), 16 * 6);
    }

    #[test]
    fn kernel_table_has_seven_rows_with_positive_speedups() {
        let table = kernel_table();
        assert_eq!(table.len(), 7);
        for row in &table {
            assert!(row.speedup_vs_ambit > 1.0, "{}", row.name);
            assert!(row.speedup_vs_cpu > 1.0, "{}", row.name);
            assert_eq!(row.costs.len(), 6);
        }
    }

    #[test]
    fn ablation_table_is_monotonic() {
        for row in ablation_table(16) {
            assert!(row.optimized <= row.reuse_only);
            assert!(row.optimized <= row.direct_out_only);
            assert!(row.reuse_only <= row.naive);
            assert!(row.direct_out_only <= row.naive);
        }
    }

    #[test]
    fn reliability_table_starts_reliable_and_degrades() {
        let table = reliability_table(2_000);
        assert_eq!(table.len(), 17);
        assert!(table[0].add32_success_probability > 0.999);
        assert!(table.last().unwrap().tra_failure_probability >= table[0].tra_failure_probability);
    }
}
