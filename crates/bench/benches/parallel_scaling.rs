//! Criterion benchmark of the broadcast execution engine: functional wall-clock of one
//! μProgram broadcast vs. lane count, under the sequential and the threaded policy.
//!
//! The modelled DRAM latency is identical either way (commands issue in lock-step across
//! subarrays); what this measures is the *simulator's* wall-clock, which the threaded
//! [`ExecutionPolicy`] turns from O(lanes) into O(lanes / cores). Two workloads bracket
//! the behaviour:
//!
//! * `add8` — a light μProgram (~100 commands/chunk): per-chunk work is comparable to the
//!   per-broadcast thread-spawn cost, so threading only breaks even; this is the overhead
//!   floor.
//! * `mul32` — a heavy μProgram (~8,000 commands/chunk): spawn cost amortizes away and on
//!   a host with ≥2 cores the threaded rows beat the sequential rows on every
//!   multi-subarray point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simdram_core::{ExecutionPolicy, SimdramConfig, SimdramMachine};
use simdram_dram::DramConfig;
use simdram_logic::Operation;

/// A machine with 2 banks × 8 subarrays of 256 columns (4,096 lanes), enough for the
/// broadcast to fan out over 16 chunks at the largest point.
fn scaling_config(policy: ExecutionPolicy) -> SimdramConfig {
    let dram = DramConfig::builder()
        .banks(2)
        .subarrays_per_bank(8)
        .rows_per_subarray(256)
        .columns_per_row(256)
        .reserved_rows(96)
        .build()
        .expect("scaling geometry is valid");
    SimdramConfig {
        dram,
        compute_banks: 2,
        compute_subarrays_per_bank: 8,
        execution: policy,
        ..SimdramConfig::functional_test()
    }
}

fn bench_workload(c: &mut Criterion, group_name: &str, op: Operation, width: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);

    let policies = [
        ("sequential", ExecutionPolicy::Sequential),
        ("threaded", ExecutionPolicy::threaded()),
    ];
    // 1, 4 and 16 participating subarrays (256 lanes each).
    for lanes in [256usize, 1_024, 4_096] {
        for (name, policy) in policies {
            group.throughput(Throughput::Elements(lanes as u64));
            group.bench_with_input(BenchmarkId::new(name, lanes), &lanes, |b, &lanes| {
                let mut machine =
                    SimdramMachine::new(scaling_config(policy)).expect("valid config");
                let mask = if width >= 64 {
                    u64::MAX
                } else {
                    (1 << width) - 1
                };
                let values: Vec<u64> = (0..lanes as u64).map(|i| i & mask).collect();
                let a = machine.alloc_and_write(width, &values).expect("write a");
                let bv = machine.alloc_and_write(width, &values).expect("write b");
                let dst = machine
                    .alloc(op.output_width(width), lanes)
                    .expect("alloc dst");
                b.iter(|| {
                    // Per-subarray traces are append-only; reset them each iteration so
                    // the measurement loop does not accumulate unbounded command history.
                    machine.reset_device_stats();
                    machine
                        .execute(op, &dst, &a, Some(&bv), None)
                        .expect("broadcast op")
                });
            });
        }
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    bench_workload(c, "parallel_scaling_add8", Operation::Add, 8);
    bench_workload(c, "parallel_scaling_mul32", Operation::Mul, 32);
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
