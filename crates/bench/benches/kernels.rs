//! Criterion benchmarks of the application kernels running functionally on the simulated
//! SIMDRAM machine (small geometries, so the wall-clock cost is the simulator's, not the
//! modelled DRAM latency).

use criterion::{criterion_group, criterion_main, Criterion};
use simdram_apps::bitweaving::{BitWeavingScan, ScanPredicate};
use simdram_apps::brightness::Brightness;
use simdram_apps::knn::KnnDistances;
use simdram_apps::tpch::TpchQuery6;
use simdram_apps::Kernel;
use simdram_core::{SimdramConfig, SimdramMachine};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_functional");
    group.sample_size(20);

    let kernels: Vec<(&str, Box<dyn Kernel>)> = vec![
        ("brightness", Box::new(Brightness::new(32, 16, 60, 1))),
        (
            "bitweaving",
            Box::new(BitWeavingScan::new(
                512,
                12,
                ScanPredicate::LessThan(2048),
                2,
            )),
        ),
        ("tpch", Box::new(TpchQuery6::new(512, 3))),
        ("knn", Box::new(KnnDistances::new(256, 8, 5, 4))),
    ];

    for (name, kernel) in kernels {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut machine =
                    SimdramMachine::new(SimdramConfig::functional_test()).expect("valid config");
                let run = kernel.run(&mut machine).expect("kernel runs");
                assert!(run.verified);
                run
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
