//! Criterion benchmarks of μProgram generation (Steps 1+2) and functional execution
//! (Step 3) on the simulated subarray.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simdram_dram::{DramConfig, Subarray};
use simdram_logic::Operation;
use simdram_uprog::{build_program, execute, CodegenOptions, RowBinding, Target};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("uprogram_generation");
    for op in [Operation::Add, Operation::Mul, Operation::Max] {
        for width in [8usize, 32] {
            group.bench_with_input(
                BenchmarkId::new(op.name(), width),
                &(op, width),
                |b, &(op, width)| {
                    b.iter(|| {
                        build_program(Target::Simdram, op, width, CodegenOptions::optimized())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("uprogram_execution");
    let config = DramConfig::tiny();
    for op in [Operation::Add, Operation::Mul] {
        let width = 8;
        let program = build_program(Target::Simdram, op, width, CodegenOptions::optimized());
        let binding = RowBinding {
            a_base: 0,
            b_base: width,
            pred_row: 2 * width,
            out_base: 2 * width + 1,
            temp_base: config.rows_per_subarray - config.reserved_rows,
        };
        group.bench_function(BenchmarkId::new("execute_256_lanes", op.name()), |b| {
            let mut subarray = Subarray::new(&config);
            b.iter(|| execute(&program, &mut subarray, &binding).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_execution);
criterion_main!(benches);
