//! Criterion benchmarks of the transposition unit's functional building blocks
//! (horizontal ↔ vertical layout conversion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simdram_core::{horizontal_to_vertical, transpose_64x64, vertical_to_horizontal};

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transposition");

    group.throughput(Throughput::Elements(64));
    group.bench_function("transpose_64x64_tile", |b| {
        let mut tile = [0u64; 64];
        for (i, word) in tile.iter_mut().enumerate() {
            *word = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        b.iter(|| transpose_64x64(&tile));
    });

    let elements = 65_536usize;
    let values: Vec<u64> = (0..elements as u64)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    group.throughput(Throughput::Elements(elements as u64));
    group.bench_function("object_to_vertical_64k_x_32bit", |b| {
        b.iter(|| horizontal_to_vertical(&values, 32, elements));
    });
    let slices = horizontal_to_vertical(&values, 32, elements);
    group.bench_function("object_to_horizontal_64k_x_32bit", |b| {
        b.iter(|| vertical_to_horizontal(&slices, 32, elements));
    });

    group.finish();
}

criterion_group!(benches, bench_transpose);
criterion_main!(benches);
