//! Criterion micro-benchmarks of the DRAM substrate primitives (host-side simulator cost).
//!
//! These measure the simulator itself — triple-row activation, AAP copies and the in-DRAM
//! MAJ/NOT building blocks over full 8 KiB rows — so regressions in the functional model's
//! performance are caught. The architectural latencies reported by the experiments come from
//! the analytic timing model, not from these wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simdram_dram::{BGroupRow, BitRow, DramConfig, RowAddr, Subarray};

fn full_size_subarray() -> Subarray {
    let config = DramConfig::default();
    let mut subarray = Subarray::new(&config);
    for row in 0..8 {
        let pattern = BitRow::from_fn(config.columns_per_row, |i| (i * (row + 3)) % 7 == 0);
        subarray.poke(RowAddr::Data(row), &pattern).unwrap();
    }
    subarray
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_primitives");
    let columns = DramConfig::default().columns_per_row as u64;
    group.throughput(Throughput::Elements(columns));

    group.bench_function("aap_row_copy_8KiB", |b| {
        let mut subarray = full_size_subarray();
        b.iter(|| {
            subarray.aap(RowAddr::Data(0), RowAddr::Data(9)).unwrap();
        });
    });

    group.bench_function("triple_row_activation_8KiB", |b| {
        let mut subarray = full_size_subarray();
        subarray
            .aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0))
            .unwrap();
        subarray
            .aap(RowAddr::Data(1), RowAddr::BGroup(BGroupRow::T1))
            .unwrap();
        subarray
            .aap(RowAddr::Data(2), RowAddr::BGroup(BGroupRow::T2))
            .unwrap();
        b.iter(|| {
            subarray
                .ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                .unwrap();
        });
    });

    group.bench_function("in_dram_majority_of_three_rows", |b| {
        let mut subarray = full_size_subarray();
        b.iter(|| {
            subarray
                .maj_rows(
                    RowAddr::Data(0),
                    RowAddr::Data(1),
                    RowAddr::Data(2),
                    RowAddr::Data(10),
                )
                .unwrap();
        });
    });

    group.bench_function("in_dram_not_of_a_row", |b| {
        let mut subarray = full_size_subarray();
        b.iter(|| {
            subarray
                .not_row(RowAddr::Data(3), RowAddr::Data(11))
                .unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
