//! Golden-file test for the `simdram-bench --suite kernels` JSON report.
//!
//! Guards three properties of the evaluation pipeline:
//!
//! 1. **Round-trip stability** — the report survives `parse(write(report))`
//!    byte-identically, so `bench_diff` always reads exactly what was written.
//! 2. **Schema stability** — the schema version and the datapoint field set cannot
//!    change silently (a change here must also update `bench_diff` and the committed
//!    `baseline.json`).
//! 3. **Value stability** — the kernels suite is deterministic (seeded kernels, analytic
//!    models), so the serialized report must match the committed golden file byte for
//!    byte.
//!
//! After an *intentional* model change, regenerate the golden file with
//! `SIMDRAM_BLESS=1 cargo test -p simdram-bench --test golden_schema` and commit the
//! diff alongside the change that caused it.

use std::collections::BTreeSet;
use std::path::PathBuf;

use simdram_bench::json::Json;
use simdram_bench::report::SCHEMA_VERSION;
use simdram_bench::suites::{run_suites, Suite};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("kernels.json")
}

fn kernels_report_text() -> String {
    run_suites(&[Suite::Kernels]).to_json().to_pretty_string()
}

#[test]
fn kernels_report_round_trips_byte_identically() {
    let text = kernels_report_text();
    let parsed = Json::parse(&text).expect("generated report parses");
    assert_eq!(parsed.to_pretty_string(), text);
}

#[test]
fn schema_version_and_field_set_are_stable() {
    let text = kernels_report_text();
    let json = Json::parse(&text).unwrap();
    assert_eq!(
        json.get("schema_version").and_then(Json::as_f64),
        Some(SCHEMA_VERSION as f64)
    );

    let top_level: BTreeSet<&str> = json
        .as_obj()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        top_level,
        BTreeSet::from(["schema_version", "tool", "suites", "datapoints", "summary"])
    );

    let datapoints = json.get("datapoints").and_then(Json::as_arr).unwrap();
    assert!(!datapoints.is_empty());
    for dp in datapoints {
        let fields: BTreeSet<&str> = dp
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            fields,
            BTreeSet::from(["suite", "name", "metrics", "expected", "verdict"]),
            "datapoint field set drifted"
        );
    }

    let summary: BTreeSet<&str> = json
        .get("summary")
        .and_then(Json::as_obj)
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(summary, BTreeSet::from(["total", "pass", "fail", "info"]));
}

#[test]
fn kernels_report_matches_the_committed_golden_file() {
    let text = kernels_report_text();
    let path = golden_path();
    if std::env::var_os("SIMDRAM_BLESS").is_some() {
        std::fs::write(&path, &text).expect("bless golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        text,
        golden,
        "kernels suite output drifted from {}; if intentional, regenerate with \
         SIMDRAM_BLESS=1 cargo test -p simdram-bench --test golden_schema and commit",
        path.display()
    );
}
