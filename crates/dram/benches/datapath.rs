//! Per-command datapath microbenchmarks: AAP / TRA throughput and allocation behaviour.
//!
//! Run with `cargo bench -p simdram-dram --bench datapath`.
//!
//! Before/after record for the allocation-free datapath rewrite (PR 4), measured with
//! this exact benchmark (the pre-PR side run from a worktree of the previous commit with
//! the identical batched loop) on the CI container, default 8 KiB rows (65,536 columns,
//! 1,024 words per row):
//!
//! | benchmark            | before (clone datapath) | after (in-place datapath) | speedup |
//! |----------------------|-------------------------|---------------------------|---------|
//! | `datapath/aap`       | 208 ns/cmd (4.80 M/s)   | 81 ns/cmd (12.42 M/s)     | 2.6×    |
//! | `datapath/ap_tra`    | 1707 ns/cmd (0.59 M/s)  | 507 ns/cmd (1.97 M/s)     | 3.4×    |
//! | `datapath/aap_tra`   | 1933 ns/cmd (0.52 M/s)  | 573 ns/cmd (1.74 M/s)     | 3.4×    |
//! | one of each (3 cmds) | 3848 ns                 | 1161 ns                   | 3.3×    |
//! | heap traffic, AAP    | 16,384 B + 2 allocs/cmd | 0 B, 0 allocs             | —       |
//! | heap traffic, TRA    | 57,344 B + 7 allocs/cmd | 0 B, 0 allocs             | —       |
//!
//! The `alloc_bytes_per_command` section below measures the heap traffic of the hot
//! commands with a counting global allocator — the per-command datapath invariant is
//! **zero** heap allocations (see `tests/datapath_alloc.rs` for the enforced test).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simdram_dram::{BGroupRow, BitRow, DramConfig, RowAddr, Subarray};

/// Global allocator wrapper that counts allocations and allocated bytes, so the bench can
/// report heap traffic per DRAM command alongside wall-clock throughput.
struct CountingAllocator;

static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn prepared_subarray() -> Subarray {
    let config = DramConfig::default();
    let mut sa = Subarray::new(&config);
    let columns = sa.columns();
    sa.write_row(0, &BitRow::splat_word(0xDEAD_BEEF_0123_4567, columns));
    sa.write_row(1, &BitRow::splat_word(0x0F0F_F0F0_AAAA_5555, columns));
    sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0))
        .unwrap();
    sa.aap(RowAddr::Data(1), RowAddr::BGroup(BGroupRow::T1))
        .unwrap();
    sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T2))
        .unwrap();
    sa.reset_trace();
    sa
}

/// Reports the mean heap bytes and allocation calls per command for a hot-loop of `n`
/// invocations of `op`, printed once before the timing benchmarks.
fn report_alloc_per_command(name: &str, n: usize, mut op: impl FnMut()) {
    // Warm up so one-time growth (trace capacity, cost table) is excluded.
    for _ in 0..16 {
        op();
    }
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..n {
        op();
    }
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls_before;
    println!(
        "alloc_bytes_per_command/{name}: {:.1} bytes/cmd, {:.2} allocs/cmd",
        bytes as f64 / n as f64,
        calls as f64 / n as f64
    );
}

fn bench_datapath(c: &mut Criterion) {
    {
        let mut sa = prepared_subarray();
        report_alloc_per_command("aap", 1024, || {
            sa.aap(RowAddr::Data(0), RowAddr::Data(2)).unwrap();
            sa.drain_trace();
        });
    }
    {
        let mut sa = prepared_subarray();
        report_alloc_per_command("ap_tra", 1024, || {
            sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                .unwrap();
            sa.drain_trace();
        });
    }

    // Commands per timed iteration: trace maintenance (reserve + drain) is amortized
    // over the batch exactly like a μProgram broadcast amortizes it over its commands.
    const BATCH: u64 = 64;

    let mut group = c.benchmark_group("datapath");
    group.throughput(Throughput::Elements(BATCH));

    let mut sa = prepared_subarray();
    group.bench_function("aap", |b| {
        b.iter(|| {
            sa.reserve_trace(BATCH as usize);
            for _ in 0..BATCH {
                sa.aap(RowAddr::Data(0), RowAddr::Data(2)).unwrap();
            }
            sa.drain_trace();
        })
    });

    let mut sa = prepared_subarray();
    group.bench_function("ap_tra", |b| {
        b.iter(|| {
            sa.reserve_trace(BATCH as usize);
            for _ in 0..BATCH {
                sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                    .unwrap();
            }
            sa.drain_trace();
        })
    });

    let mut sa = prepared_subarray();
    group.bench_function("aap_tra", |b| {
        b.iter(|| {
            sa.reserve_trace(BATCH as usize);
            for _ in 0..BATCH {
                sa.aap_tra(
                    BGroupRow::T0,
                    BGroupRow::T1,
                    BGroupRow::T2,
                    RowAddr::Data(3),
                )
                .unwrap();
            }
            sa.drain_trace();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
