//! Enforces the datapath's zero-allocation invariant: once a subarray is warmed up (cost
//! table registered, trace capacity reserved), AAP / AP / TRA commands must not touch the
//! heap at all — no `BitRow` clones, no trace growth beyond the reserved capacity.
//!
//! The whole check lives in a single `#[test]` so the global allocation counter is not
//! perturbed by concurrently running tests in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use simdram_dram::{BGroupRow, BitRow, DramConfig, RowAddr, Subarray};

struct CountingAllocator;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn per_command_datapath_never_allocates() {
    let config = DramConfig::default();
    let mut sa = Subarray::new(&config);
    let columns = sa.columns();
    sa.write_row(0, &BitRow::splat_word(0xDEAD_BEEF_0123_4567, columns));
    sa.write_row(1, &BitRow::splat_word(0x0F0F_F0F0_AAAA_5555, columns));

    // Exercise every command shape once: growth of the trace's cost table and any lazy
    // one-time setup happens here, outside the measured window.
    let commands: &[&dyn Fn(&mut Subarray)] = &[
        &|sa| sa.aap(RowAddr::Data(0), RowAddr::Data(2)).unwrap(),
        &|sa| {
            sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::Data(1), RowAddr::BGroup(BGroupRow::T1))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T2))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::BGroup(BGroupRow::C0), RowAddr::Data(3))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::BGroup(BGroupRow::C1), RowAddr::Data(4))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::Dcc0))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::BGroup(BGroupRow::Dcc0N), RowAddr::Data(5))
                .unwrap()
        },
        &|sa| {
            sa.aap(
                RowAddr::BGroup(BGroupRow::Dcc0),
                RowAddr::BGroup(BGroupRow::Dcc0N),
            )
            .unwrap()
        },
        &|sa| sa.ap(RowAddr::Data(0)).unwrap(),
        &|sa| sa.ap(RowAddr::BGroup(BGroupRow::Dcc1N)).unwrap(),
        &|sa| {
            sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                .unwrap()
        },
        // General (non-fused) TRA path: negated wordline and constant operands.
        &|sa| {
            sa.ap_tra(BGroupRow::T0, BGroupRow::Dcc0N, BGroupRow::C1)
                .unwrap()
        },
        &|sa| {
            sa.aap_tra(
                BGroupRow::T0,
                BGroupRow::T1,
                BGroupRow::T2,
                RowAddr::Data(6),
            )
            .unwrap()
        },
        &|sa| {
            sa.aap_tra(
                BGroupRow::T1,
                BGroupRow::T2,
                BGroupRow::T3,
                RowAddr::BGroup(BGroupRow::Dcc1),
            )
            .unwrap()
        },
    ];
    const ROUNDS: usize = 8;
    for op in commands {
        op(&mut sa);
    }

    // The allocation counter is process-global, so a runtime thread (libtest's I/O
    // capture, platform lazy init) can allocate during the measured window and produce
    // a spurious non-zero count. The datapath itself is deterministic: if ANY attempt
    // observes zero allocations, every allocation seen by other attempts came from
    // outside the datapath. Retry a few times and take the cleanest window.
    const ATTEMPTS: usize = 5;
    let mut best = usize::MAX;
    for _ in 0..ATTEMPTS {
        sa.drain_trace();
        sa.reserve_trace(commands.len() * ROUNDS);
        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        for _ in 0..ROUNDS {
            for op in commands {
                op(&mut sa);
            }
        }
        best = best.min(ALLOC_CALLS.load(Ordering::SeqCst) - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best,
        0,
        "the per-command datapath must not allocate (best attempt saw {best} allocations \
         across {} commands)",
        commands.len() * ROUNDS
    );

    // The commands above really did record into the trace.
    assert_eq!(sa.trace().history_len(), commands.len() * ROUNDS);
}
