//! Enforces the datapath's zero-allocation invariant: once a subarray is warmed up (cost
//! table registered, trace capacity reserved), AAP / AP / TRA commands must not touch the
//! heap at all — no `BitRow` clones, no trace growth beyond the reserved capacity.
//!
//! The whole check lives in a single `#[test]` so the global allocation counter is not
//! perturbed by concurrently running tests in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use simdram_dram::{
    BGroupRow, BitRow, CommandCosts, DramConfig, RowAddr, RowOp, RowOpBlock, RowRef, Subarray,
    TraceAggregate, WriteRef,
};

struct CountingAllocator;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn per_command_datapath_never_allocates() {
    let config = DramConfig::default();
    let mut sa = Subarray::new(&config);
    let columns = sa.columns();
    sa.write_row(0, &BitRow::splat_word(0xDEAD_BEEF_0123_4567, columns));
    sa.write_row(1, &BitRow::splat_word(0x0F0F_F0F0_AAAA_5555, columns));

    // Exercise every command shape once: growth of the trace's cost table and any lazy
    // one-time setup happens here, outside the measured window.
    let commands: &[&dyn Fn(&mut Subarray)] = &[
        &|sa| sa.aap(RowAddr::Data(0), RowAddr::Data(2)).unwrap(),
        &|sa| {
            sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::Data(1), RowAddr::BGroup(BGroupRow::T1))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T2))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::BGroup(BGroupRow::C0), RowAddr::Data(3))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::BGroup(BGroupRow::C1), RowAddr::Data(4))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::Dcc0))
                .unwrap()
        },
        &|sa| {
            sa.aap(RowAddr::BGroup(BGroupRow::Dcc0N), RowAddr::Data(5))
                .unwrap()
        },
        &|sa| {
            sa.aap(
                RowAddr::BGroup(BGroupRow::Dcc0),
                RowAddr::BGroup(BGroupRow::Dcc0N),
            )
            .unwrap()
        },
        &|sa| sa.ap(RowAddr::Data(0)).unwrap(),
        &|sa| sa.ap(RowAddr::BGroup(BGroupRow::Dcc1N)).unwrap(),
        &|sa| {
            sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
                .unwrap()
        },
        // General (non-fused) TRA path: negated wordline and constant operands.
        &|sa| {
            sa.ap_tra(BGroupRow::T0, BGroupRow::Dcc0N, BGroupRow::C1)
                .unwrap()
        },
        &|sa| {
            sa.aap_tra(
                BGroupRow::T0,
                BGroupRow::T1,
                BGroupRow::T2,
                RowAddr::Data(6),
            )
            .unwrap()
        },
        &|sa| {
            sa.aap_tra(
                BGroupRow::T1,
                BGroupRow::T2,
                BGroupRow::T3,
                RowAddr::BGroup(BGroupRow::Dcc1),
            )
            .unwrap()
        },
    ];
    const ROUNDS: usize = 8;
    for op in commands {
        op(&mut sa);
    }

    // The allocation counter is process-global, so a runtime thread (libtest's I/O
    // capture, platform lazy init) can allocate during the measured window and produce
    // a spurious non-zero count. The datapath itself is deterministic: if ANY attempt
    // observes zero allocations, every allocation seen by other attempts came from
    // outside the datapath. Retry a few times and take the cleanest window.
    const ATTEMPTS: usize = 5;
    let mut best = usize::MAX;
    for _ in 0..ATTEMPTS {
        sa.drain_trace();
        sa.reserve_trace(commands.len() * ROUNDS);
        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        for _ in 0..ROUNDS {
            for op in commands {
                op(&mut sa);
            }
        }
        best = best.min(ALLOC_CALLS.load(Ordering::SeqCst) - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best,
        0,
        "the per-command datapath must not allocate (best attempt saw {best} allocations \
         across {} commands)",
        commands.len() * ROUNDS
    );

    // The commands above really did record into the trace.
    assert_eq!(sa.trace().history_len(), commands.len() * ROUNDS);

    // Same invariant for the compiled row-op path: applying a pre-compiled block —
    // every operation shape, both trace modes — must not allocate once the block exists
    // and trace capacity is reserved (compilation itself may allocate, once).
    let costs = CommandCosts::new(&config);
    let data = |offset: u32| RowRef::Data { region: 0, offset };
    let block_ops = vec![
        RowOp::Copy {
            src: data(0),
            dst: RowRef::T(0),
        },
        RowOp::Copy {
            src: data(1),
            dst: RowRef::T(1),
        },
        RowOp::Copy {
            src: data(0),
            dst: RowRef::T(2),
        },
        RowOp::CopyInv {
            src: data(0),
            dst: RowRef::Dcc(0),
        },
        RowOp::Fill {
            dst: data(3),
            value: true,
        },
        RowOp::Invert {
            dst: RowRef::Dcc(0),
        },
        RowOp::Nop,
        RowOp::MajFused {
            t: [0, 1, 2],
            dst: None,
        },
        RowOp::MajFused {
            t: [0, 1, 2],
            dst: Some(data(4)),
        },
        RowOp::Maj {
            a: BGroupRow::T0,
            b: BGroupRow::Dcc0N,
            c: BGroupRow::C1,
            dst: Some(WriteRef {
                row: RowRef::Dcc(1),
                negated: false,
            }),
        },
        RowOp::Maj {
            a: BGroupRow::T1,
            b: BGroupRow::T2,
            c: BGroupRow::C0,
            dst: Some(WriteRef {
                row: data(5),
                negated: true,
            }),
        },
        RowOp::Copy {
            src: RowRef::T(0),
            dst: data(6),
        },
    ];
    let aggregate = TraceAggregate::from_commands(block_ops.iter().map(|op| match op {
        RowOp::MajFused { dst: None, .. } => costs.tra().clone(),
        RowOp::MajFused { dst: Some(_), .. } | RowOp::Maj { .. } => costs.aap_tra().clone(),
        _ => costs.aap().clone(),
    }));
    let block = RowOpBlock::new(block_ops, 1, aggregate).unwrap();
    let block_len = block.ops().len();
    sa.apply_block(&block, &[0], true).unwrap(); // warm both history modes
    sa.apply_block(&block, &[0], false).unwrap();

    let mut best = usize::MAX;
    for _ in 0..ATTEMPTS {
        sa.drain_trace();
        sa.reserve_trace(block_len * ROUNDS);
        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        for round in 0..ROUNDS {
            sa.apply_block(&block, &[0], round % 2 == 0).unwrap();
        }
        best = best.min(ALLOC_CALLS.load(Ordering::SeqCst) - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "applying a compiled row-op block must not allocate (best attempt saw {best} \
         allocations across {} applications)",
        ROUNDS
    );
    // History was kept exactly for the sampled (with_history) applications.
    assert_eq!(sa.trace().history_len(), block_len * ROUNDS / 2);
}
