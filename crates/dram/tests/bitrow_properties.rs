//! Property-based tests of the substrate's core data structure ([`BitRow`]) and of the
//! algebraic identities the in-DRAM compute primitives rely on.

use proptest::prelude::*;
use simdram_dram::{BGroupRow, BitRow, DramConfig, RowAddr, Subarray};

fn bitrow_strategy(len: usize) -> impl Strategy<Value = BitRow> {
    proptest::collection::vec(any::<u64>(), len.div_ceil(64))
        .prop_map(move |words| BitRow::from_words(&words, len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn double_negation_is_identity(row in bitrow_strategy(300)) {
        prop_assert_eq!(row.not().not(), row);
    }

    #[test]
    fn and_or_de_morgan(a in bitrow_strategy(300), b in bitrow_strategy(300)) {
        let lhs = a.and(&b).unwrap().not();
        let rhs = a.not().or(&b.not()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn majority_is_symmetric(
        a in bitrow_strategy(200),
        b in bitrow_strategy(200),
        c in bitrow_strategy(200),
    ) {
        let m1 = BitRow::majority(&a, &b, &c).unwrap();
        let m2 = BitRow::majority(&c, &a, &b).unwrap();
        let m3 = BitRow::majority(&b, &c, &a).unwrap();
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(&m1, &m3);
    }

    #[test]
    fn majority_with_constants_is_and_or(a in bitrow_strategy(256), b in bitrow_strategy(256)) {
        let zeros = BitRow::zeros(256);
        let ones = BitRow::ones(256);
        prop_assert_eq!(BitRow::majority(&a, &b, &zeros).unwrap(), a.and(&b).unwrap());
        prop_assert_eq!(BitRow::majority(&a, &b, &ones).unwrap(), a.or(&b).unwrap());
    }

    #[test]
    fn majority_complement_propagates(
        a in bitrow_strategy(192),
        b in bitrow_strategy(192),
        c in bitrow_strategy(192),
    ) {
        let lhs = BitRow::majority(&a.not(), &b.not(), &c.not()).unwrap();
        let rhs = BitRow::majority(&a, &b, &c).unwrap().not();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn count_ones_matches_iterated_bits(row in bitrow_strategy(137)) {
        let by_iter = row.iter().filter(|&b| b).count();
        prop_assert_eq!(row.count_ones(), by_iter);
    }

    #[test]
    fn xor_is_its_own_inverse(a in bitrow_strategy(256), b in bitrow_strategy(256)) {
        let x = a.xor(&b).unwrap();
        prop_assert_eq!(x.xor(&b).unwrap(), a);
    }

    // The in-place datapath ops must be bit-for-bit equivalent to the allocating
    // reference variants. The 137-bit length exercises the tail-word mask (137 % 64 != 0).
    #[test]
    fn not_into_matches_not(src in bitrow_strategy(137), scratch in bitrow_strategy(137)) {
        let mut out = scratch;
        src.not_into(&mut out).unwrap();
        prop_assert_eq!(out, src.not());
    }

    #[test]
    fn invert_matches_not(src in bitrow_strategy(201)) {
        let mut row = src.clone();
        row.invert();
        prop_assert_eq!(row, src.not());
    }

    #[test]
    fn majority_into_matches_majority(
        a in bitrow_strategy(137),
        b in bitrow_strategy(137),
        c in bitrow_strategy(137),
        scratch in bitrow_strategy(137),
    ) {
        let mut out = scratch;
        BitRow::majority_into(&a, &b, &c, &mut out).unwrap();
        prop_assert_eq!(out, BitRow::majority(&a, &b, &c).unwrap());
    }

    #[test]
    fn copy_from_matches_clone(src in bitrow_strategy(330), scratch in bitrow_strategy(330)) {
        let mut out = scratch;
        out.copy_from(&src).unwrap();
        prop_assert_eq!(out, src);
    }

    #[test]
    fn copy_from_resized_matches_bitwise_rebuild(
        src in bitrow_strategy(137),
        dst_len in 1usize..300,
    ) {
        let mut out = BitRow::splat_word(u64::MAX, dst_len);
        out.copy_from_resized(&src);
        let expected = BitRow::from_fn(dst_len, |i| i < src.len() && src.get(i));
        prop_assert_eq!(out, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ambit_maj_sequence_matches_functional_majority(
        a in bitrow_strategy(256),
        b in bitrow_strategy(256),
        c in bitrow_strategy(256),
    ) {
        // The full Ambit command sequence (stage + TRA + copy out) must compute exactly the
        // word-level majority of the three source rows.
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &a).unwrap();
        sa.poke(RowAddr::Data(1), &b).unwrap();
        sa.poke(RowAddr::Data(2), &c).unwrap();
        sa.maj_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(2), RowAddr::Data(3))
            .unwrap();
        prop_assert_eq!(
            sa.peek(RowAddr::Data(3)).unwrap(),
            BitRow::majority(&a, &b, &c).unwrap()
        );
        // Source rows are preserved by the staging copies.
        prop_assert_eq!(sa.peek(RowAddr::Data(0)).unwrap(), a);
    }

    #[test]
    fn dcc_round_trip_restores_original(row in bitrow_strategy(256)) {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &row).unwrap();
        // NOT twice through the dual-contact cells.
        sa.not_row(RowAddr::Data(0), RowAddr::Data(1)).unwrap();
        sa.not_row(RowAddr::Data(1), RowAddr::Data(2)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::Data(1)).unwrap(), row.not());
        prop_assert_eq!(sa.peek(RowAddr::Data(2)).unwrap(), row);
    }

    #[test]
    fn and_or_rows_match_word_level_semantics(
        a in bitrow_strategy(256),
        b in bitrow_strategy(256),
    ) {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &a).unwrap();
        sa.poke(RowAddr::Data(1), &b).unwrap();
        sa.and_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(4)).unwrap();
        sa.or_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(5)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::Data(4)).unwrap(), a.and(&b).unwrap());
        prop_assert_eq!(sa.peek(RowAddr::Data(5)).unwrap(), a.or(&b).unwrap());
    }

    #[test]
    fn aap_between_arbitrary_rows_matches_reference(
        data in bitrow_strategy(256),
        dcc in bitrow_strategy(256),
    ) {
        // Copy chains across every row class, including negated wordlines and constants.
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &data).unwrap();
        sa.poke(RowAddr::BGroup(BGroupRow::Dcc1), &dcc).unwrap();
        sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T3)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::BGroup(BGroupRow::T3)).unwrap(), data.clone());
        sa.aap(RowAddr::BGroup(BGroupRow::T3), RowAddr::BGroup(BGroupRow::Dcc0N)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::BGroup(BGroupRow::Dcc0)).unwrap(), data.not());
        // Same-cell copy through the two wordlines complements in place.
        sa.aap(RowAddr::BGroup(BGroupRow::Dcc1), RowAddr::BGroup(BGroupRow::Dcc1N)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::BGroup(BGroupRow::Dcc1)).unwrap(), dcc.not());
        // Constant sources fill.
        sa.aap(RowAddr::BGroup(BGroupRow::C1), RowAddr::Data(1)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::Data(1)).unwrap(), BitRow::ones(256));
        sa.aap(RowAddr::BGroup(BGroupRow::C0), RowAddr::BGroup(BGroupRow::Dcc0N)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::BGroup(BGroupRow::Dcc0)).unwrap(), BitRow::ones(256));
    }

    #[test]
    fn tra_result_lands_in_all_three_designated_rows(
        a in bitrow_strategy(256),
        b in bitrow_strategy(256),
        c in bitrow_strategy(256),
    ) {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::BGroup(BGroupRow::T0), &a).unwrap();
        sa.poke(RowAddr::BGroup(BGroupRow::T1), &b).unwrap();
        sa.poke(RowAddr::BGroup(BGroupRow::T2), &c).unwrap();
        sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2).unwrap();
        let expected = BitRow::majority(&a, &b, &c).unwrap();
        for row in [BGroupRow::T0, BGroupRow::T1, BGroupRow::T2] {
            prop_assert_eq!(sa.peek(RowAddr::BGroup(row)).unwrap(), expected.clone());
        }
    }
}

/// Exhaustive TRA reference check: every distinct B-group triple (720 of them, covering
/// the fused T-row fast path, negated wordlines, constants and the aliased
/// `Dcc`/`DccN` cases) must transform the subarray exactly like the word-level model.
#[test]
fn tra_matches_reference_for_all_bgroup_triples() {
    let len = 256;
    let seed: Vec<BitRow> = (0..6u64)
        .map(|i| {
            BitRow::from_fn(len, |bit| {
                ((bit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i + 3)) & 1 == 1
            })
        })
        .collect();

    let value = |row: BGroupRow, t: &[BitRow], d: &[BitRow]| -> BitRow {
        match row {
            BGroupRow::T0 => t[0].clone(),
            BGroupRow::T1 => t[1].clone(),
            BGroupRow::T2 => t[2].clone(),
            BGroupRow::T3 => t[3].clone(),
            BGroupRow::Dcc0 => d[0].clone(),
            BGroupRow::Dcc0N => d[0].not(),
            BGroupRow::Dcc1 => d[1].clone(),
            BGroupRow::Dcc1N => d[1].not(),
            BGroupRow::C0 => BitRow::zeros(len),
            BGroupRow::C1 => BitRow::ones(len),
        }
    };

    for a in BGroupRow::ALL {
        for b in BGroupRow::ALL {
            for c in BGroupRow::ALL {
                if a == b || b == c || a == c {
                    continue;
                }
                let mut sa = Subarray::new(&DramConfig::tiny());
                let mut t = [
                    seed[0].clone(),
                    seed[1].clone(),
                    seed[2].clone(),
                    seed[3].clone(),
                ];
                let mut d = [seed[4].clone(), seed[5].clone()];
                for (i, row) in [BGroupRow::T0, BGroupRow::T1, BGroupRow::T2, BGroupRow::T3]
                    .into_iter()
                    .enumerate()
                {
                    sa.poke(RowAddr::BGroup(row), &t[i]).unwrap();
                }
                sa.poke(RowAddr::BGroup(BGroupRow::Dcc0), &d[0]).unwrap();
                sa.poke(RowAddr::BGroup(BGroupRow::Dcc1), &d[1]).unwrap();

                // Reference model: snapshot operands, then restore in activation order.
                let maj = BitRow::majority(&value(a, &t, &d), &value(b, &t, &d), &value(c, &t, &d))
                    .unwrap();
                for row in [a, b, c] {
                    match row {
                        BGroupRow::T0 => t[0] = maj.clone(),
                        BGroupRow::T1 => t[1] = maj.clone(),
                        BGroupRow::T2 => t[2] = maj.clone(),
                        BGroupRow::T3 => t[3] = maj.clone(),
                        BGroupRow::Dcc0 => d[0] = maj.clone(),
                        BGroupRow::Dcc0N => d[0] = maj.not(),
                        BGroupRow::Dcc1 => d[1] = maj.clone(),
                        BGroupRow::Dcc1N => d[1] = maj.not(),
                        BGroupRow::C0 | BGroupRow::C1 => {}
                    }
                }

                sa.ap_tra(a, b, c).unwrap();
                for row in BGroupRow::ALL {
                    assert_eq!(
                        sa.peek(RowAddr::BGroup(row)).unwrap(),
                        value(row, &t, &d),
                        "row {row:?} after TRA({a:?}, {b:?}, {c:?})"
                    );
                }
            }
        }
    }
}
