//! Property-based tests of the substrate's core data structure ([`BitRow`]) and of the
//! algebraic identities the in-DRAM compute primitives rely on.

use proptest::prelude::*;
use simdram_dram::{BGroupRow, BitRow, DramConfig, RowAddr, Subarray};

fn bitrow_strategy(len: usize) -> impl Strategy<Value = BitRow> {
    proptest::collection::vec(any::<u64>(), len.div_ceil(64))
        .prop_map(move |words| BitRow::from_words(&words, len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn double_negation_is_identity(row in bitrow_strategy(300)) {
        prop_assert_eq!(row.not().not(), row);
    }

    #[test]
    fn and_or_de_morgan(a in bitrow_strategy(300), b in bitrow_strategy(300)) {
        let lhs = a.and(&b).unwrap().not();
        let rhs = a.not().or(&b.not()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn majority_is_symmetric(
        a in bitrow_strategy(200),
        b in bitrow_strategy(200),
        c in bitrow_strategy(200),
    ) {
        let m1 = BitRow::majority(&a, &b, &c).unwrap();
        let m2 = BitRow::majority(&c, &a, &b).unwrap();
        let m3 = BitRow::majority(&b, &c, &a).unwrap();
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(&m1, &m3);
    }

    #[test]
    fn majority_with_constants_is_and_or(a in bitrow_strategy(256), b in bitrow_strategy(256)) {
        let zeros = BitRow::zeros(256);
        let ones = BitRow::ones(256);
        prop_assert_eq!(BitRow::majority(&a, &b, &zeros).unwrap(), a.and(&b).unwrap());
        prop_assert_eq!(BitRow::majority(&a, &b, &ones).unwrap(), a.or(&b).unwrap());
    }

    #[test]
    fn majority_complement_propagates(
        a in bitrow_strategy(192),
        b in bitrow_strategy(192),
        c in bitrow_strategy(192),
    ) {
        let lhs = BitRow::majority(&a.not(), &b.not(), &c.not()).unwrap();
        let rhs = BitRow::majority(&a, &b, &c).unwrap().not();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn count_ones_matches_iterated_bits(row in bitrow_strategy(137)) {
        let by_iter = row.iter().filter(|&b| b).count();
        prop_assert_eq!(row.count_ones(), by_iter);
    }

    #[test]
    fn xor_is_its_own_inverse(a in bitrow_strategy(256), b in bitrow_strategy(256)) {
        let x = a.xor(&b).unwrap();
        prop_assert_eq!(x.xor(&b).unwrap(), a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ambit_maj_sequence_matches_functional_majority(
        a in bitrow_strategy(256),
        b in bitrow_strategy(256),
        c in bitrow_strategy(256),
    ) {
        // The full Ambit command sequence (stage + TRA + copy out) must compute exactly the
        // word-level majority of the three source rows.
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &a).unwrap();
        sa.poke(RowAddr::Data(1), &b).unwrap();
        sa.poke(RowAddr::Data(2), &c).unwrap();
        sa.maj_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(2), RowAddr::Data(3))
            .unwrap();
        prop_assert_eq!(
            sa.peek(RowAddr::Data(3)).unwrap(),
            BitRow::majority(&a, &b, &c).unwrap()
        );
        // Source rows are preserved by the staging copies.
        prop_assert_eq!(sa.peek(RowAddr::Data(0)).unwrap(), a);
    }

    #[test]
    fn dcc_round_trip_restores_original(row in bitrow_strategy(256)) {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &row).unwrap();
        // NOT twice through the dual-contact cells.
        sa.not_row(RowAddr::Data(0), RowAddr::Data(1)).unwrap();
        sa.not_row(RowAddr::Data(1), RowAddr::Data(2)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::Data(1)).unwrap(), row.not());
        prop_assert_eq!(sa.peek(RowAddr::Data(2)).unwrap(), row);
    }

    #[test]
    fn and_or_rows_match_word_level_semantics(
        a in bitrow_strategy(256),
        b in bitrow_strategy(256),
    ) {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::Data(0), &a).unwrap();
        sa.poke(RowAddr::Data(1), &b).unwrap();
        sa.and_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(4)).unwrap();
        sa.or_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(5)).unwrap();
        prop_assert_eq!(sa.peek(RowAddr::Data(4)).unwrap(), a.and(&b).unwrap());
        prop_assert_eq!(sa.peek(RowAddr::Data(5)).unwrap(), a.or(&b).unwrap());
    }

    #[test]
    fn tra_result_lands_in_all_three_designated_rows(
        a in bitrow_strategy(256),
        b in bitrow_strategy(256),
        c in bitrow_strategy(256),
    ) {
        let mut sa = Subarray::new(&DramConfig::tiny());
        sa.poke(RowAddr::BGroup(BGroupRow::T0), &a).unwrap();
        sa.poke(RowAddr::BGroup(BGroupRow::T1), &b).unwrap();
        sa.poke(RowAddr::BGroup(BGroupRow::T2), &c).unwrap();
        sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2).unwrap();
        let expected = BitRow::majority(&a, &b, &c).unwrap();
        for row in [BGroupRow::T0, BGroupRow::T1, BGroupRow::T2] {
            prop_assert_eq!(sa.peek(RowAddr::BGroup(row)).unwrap(), expected.clone());
        }
    }
}
