//! DRAM command kinds and the command trace collected during simulation.
//!
//! Traces are on the per-command hot path of the functional simulator, so they are stored
//! compactly: one byte per command (an index into a small table of distinct
//! (kind, latency, energy) cost combinations) plus incrementally maintained totals and
//! per-slot counters. Full [`DramCommand`] values are reconstructed lazily by
//! [`CommandTrace::commands`]. Compared to storing a 24-byte `DramCommand` per command
//! this is a ~24× reduction in trace memory and removes all per-command heap traffic
//! beyond the amortized 1-byte vector push.

use std::fmt;

use crate::config::DramConfig;

/// The kind of a DRAM command issued to a subarray.
///
/// The substrate distinguishes the command templates that matter for SIMDRAM's latency and
/// energy accounting. `ActivatePrecharge`/`TripleRowActivate` correspond to the paper's `AP`
/// template, `ActivateActivatePrecharge` to the `AAP` template, and `Read`/`Write` to
/// conventional column accesses over the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Single-row ACTIVATE followed by PRECHARGE (`AP`).
    ActivatePrecharge,
    /// Triple-row ACTIVATE followed by PRECHARGE (`AP` with a TRA address): computes the
    /// bitwise majority of three B-group rows in place.
    TripleRowActivate,
    /// ACTIVATE → ACTIVATE → PRECHARGE (`AAP`): copies the first row into the second through
    /// the sense amplifiers (RowClone-FPM).
    ActivateActivatePrecharge,
    /// Conventional burst read of a row segment over the memory channel.
    Read,
    /// Conventional burst write of a row segment over the memory channel.
    Write,
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::ActivatePrecharge => "AP",
            CommandKind::TripleRowActivate => "AP(TRA)",
            CommandKind::ActivateActivatePrecharge => "AAP",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
        };
        f.write_str(s)
    }
}

/// One issued DRAM command, as recorded in a [`CommandTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct DramCommand {
    /// The command template.
    pub kind: CommandKind,
    /// Latency charged for this command, in nanoseconds.
    pub latency_ns: f64,
    /// Energy charged for this command, in nanojoules.
    pub energy_nj: f64,
}

/// The six command cost templates a subarray geometry charges, derived once from a
/// [`DramConfig`].
///
/// [`crate::Subarray`] builds its pre-registered trace slots from this table, and the
/// μProgram compiler builds [`TraceAggregate`]s from the *same* table — so the `f64`
/// latency/energy bit patterns are single-sourced and a compiled program's aggregate
/// always matches the slots the executing subarray already registered (cost-table lookups
/// stay allocation-free on the hot path).
#[derive(Debug, Clone, PartialEq)]
pub struct CommandCosts {
    /// Index order: Write, Read, AAP, AAP(TRA source), TRA, AP — must match the
    /// subarray's internal cost indexing.
    templates: [DramCommand; 6],
}

impl CommandCosts {
    /// Derives the cost templates for the geometry and timing/energy models of `config`.
    pub fn new(config: &DramConfig) -> Self {
        let columns = config.columns_per_row;
        let row_bits = columns;
        CommandCosts {
            templates: [
                DramCommand {
                    kind: CommandKind::Write,
                    latency_ns: config.timing.row_write_ns(columns / 8),
                    energy_nj: config.energy.channel_transfer_nj(row_bits),
                },
                DramCommand {
                    kind: CommandKind::Read,
                    latency_ns: config.timing.row_read_ns(columns / 8),
                    energy_nj: config.energy.channel_transfer_nj(row_bits),
                },
                DramCommand {
                    kind: CommandKind::ActivateActivatePrecharge,
                    latency_ns: config.timing.aap_ns(),
                    energy_nj: config.energy.aap_nj(false),
                },
                DramCommand {
                    kind: CommandKind::ActivateActivatePrecharge,
                    latency_ns: config.timing.aap_ns(),
                    energy_nj: config.energy.aap_nj(true),
                },
                DramCommand {
                    kind: CommandKind::TripleRowActivate,
                    latency_ns: config.timing.ap_ns(),
                    energy_nj: config.energy.ap_nj(true),
                },
                DramCommand {
                    kind: CommandKind::ActivatePrecharge,
                    latency_ns: config.timing.ap_ns(),
                    energy_nj: config.energy.ap_nj(false),
                },
            ],
        }
    }

    /// Cost of a conventional full-row `WR` burst over the channel.
    pub fn write(&self) -> &DramCommand {
        &self.templates[0]
    }

    /// Cost of a conventional full-row `RD` burst over the channel.
    pub fn read(&self) -> &DramCommand {
        &self.templates[1]
    }

    /// Cost of a RowClone-FPM copy (`AAP`).
    pub fn aap(&self) -> &DramCommand {
        &self.templates[2]
    }

    /// Cost of an `AAP` whose first activation is a triple-row activation.
    pub fn aap_tra(&self) -> &DramCommand {
        &self.templates[3]
    }

    /// Cost of a triple-row activation (`AP` with a TRA address).
    pub fn tra(&self) -> &DramCommand {
        &self.templates[4]
    }

    /// Cost of a plain single-row `AP`.
    pub fn ap(&self) -> &DramCommand {
        &self.templates[5]
    }

    /// The raw template table, in the subarray's internal cost index order.
    pub(crate) fn templates(&self) -> &[DramCommand; 6] {
        &self.templates
    }
}

/// A pre-registered cost-table index of a [`CommandTrace`], obtained from
/// [`CommandTrace::register`]. Valid for the registering trace until its next
/// [`CommandTrace::clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSlot(u8);

/// One distinct (kind, latency, energy) cost combination plus the number of commands
/// recorded with it (including commands whose per-command history was drained).
#[derive(Debug, Clone, PartialEq)]
struct CostSlot {
    kind: CommandKind,
    latency_ns: f64,
    energy_nj: f64,
    count: usize,
}

impl CostSlot {
    fn command(&self) -> DramCommand {
        DramCommand {
            kind: self.kind,
            latency_ns: self.latency_ns,
            energy_nj: self.energy_nj,
        }
    }
}

/// An append-only trace of issued commands with aggregate counters.
///
/// Storage is compact (see this module's documentation): the per-command history is a
/// `Vec<u8>` of indices into a per-trace cost table, and kind counts plus latency/energy
/// totals are maintained incrementally on every [`CommandTrace::push`]. A subarray only
/// ever produces a handful of distinct cost combinations, so the table stays tiny; traces
/// support at most 256 distinct combinations.
///
/// Long-running owners can call [`CommandTrace::drain_history`] to drop the per-command
/// history while keeping every aggregate (length, per-kind counts, totals) intact — this
/// is what keeps a [`crate::Subarray`]'s cumulative trace bounded across repeated
/// μProgram executions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandTrace {
    /// Per-command cost-table indices for the retained history.
    ops: Vec<u8>,
    /// Distinct cost combinations seen by this trace, in first-seen order.
    slots: Vec<CostSlot>,
    /// Number of commands whose history was dropped by [`CommandTrace::drain_history`].
    drained: usize,
    total_latency_ns: f64,
    total_energy_nj: f64,
}

impl CommandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a command.
    ///
    /// # Panics
    ///
    /// Panics if the trace would need more than 256 distinct (kind, latency, energy)
    /// cost combinations — far beyond what any substrate configuration produces.
    pub fn push(&mut self, command: DramCommand) {
        let slot = self.slot_index(&command);
        self.record(TraceSlot(slot));
    }

    /// Pre-registers a cost combination, returning a [`TraceSlot`] that
    /// [`CommandTrace::record`] accepts for search-free recording on the per-command hot
    /// path. Registering does not record anything; registering the same combination
    /// twice returns the same slot.
    ///
    /// # Panics
    ///
    /// Panics on cost-table overflow, like [`CommandTrace::push`].
    pub fn register(&mut self, command: DramCommand) -> TraceSlot {
        TraceSlot(self.slot_index(&command))
    }

    /// Records one command of a pre-registered cost combination (see
    /// [`CommandTrace::register`]): one table lookup, two running-total additions and a
    /// 1-byte history push.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not come from [`CommandTrace::register`] on this trace (or
    /// the table was since [`CommandTrace::clear`]ed).
    pub fn record(&mut self, slot: TraceSlot) {
        let entry = &mut self.slots[slot.0 as usize];
        entry.count += 1;
        self.total_latency_ns += entry.latency_ns;
        self.total_energy_nj += entry.energy_nj;
        self.ops.push(slot.0);
    }

    fn slot_index(&mut self, command: &DramCommand) -> u8 {
        let found = self.slots.iter().position(|s| {
            s.kind == command.kind
                && s.latency_ns.to_bits() == command.latency_ns.to_bits()
                && s.energy_nj.to_bits() == command.energy_nj.to_bits()
        });
        match found {
            Some(i) => i as u8,
            None => {
                assert!(
                    self.slots.len() < 256,
                    "CommandTrace cost table overflow: more than 256 distinct command costs"
                );
                self.slots.push(CostSlot {
                    kind: command.kind,
                    latency_ns: command.latency_ns,
                    energy_nj: command.energy_nj,
                    count: 0,
                });
                (self.slots.len() - 1) as u8
            }
        }
    }

    /// Reserves capacity for at least `additional` more commands, so a μProgram of known
    /// length can be traced without reallocating mid-execution.
    pub fn reserve(&mut self, additional: usize) {
        self.ops.reserve(additional);
    }

    /// Lazily reconstructs the retained per-command history, in issue order.
    ///
    /// Commands dropped by [`CommandTrace::drain_history`] are not included (their counts
    /// and costs remain in the aggregates).
    pub fn commands(&self) -> impl Iterator<Item = DramCommand> + '_ {
        self.ops
            .iter()
            .map(move |&idx| self.slots[idx as usize].command())
    }

    /// Number of recorded commands, including drained history.
    pub fn len(&self) -> usize {
        self.drained + self.ops.len()
    }

    /// Number of commands whose per-command history is still retained (and therefore
    /// reconstructable via [`CommandTrace::commands`]).
    pub fn history_len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no commands were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of commands of the given kind, including drained history.
    pub fn count(&self, kind: CommandKind) -> usize {
        self.slots
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.count)
            .sum()
    }

    /// Iterates over (kind, count) aggregates, one entry per cost-table slot with at
    /// least one recorded command (pre-registered but unused slots are skipped).
    ///
    /// A kind can appear more than once (e.g. plain `AAP` and `AAP` with a TRA source
    /// charge different energies); callers summing into their own per-kind aggregates are
    /// unaffected.
    pub fn kind_counts(&self) -> impl Iterator<Item = (CommandKind, usize)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| (s.kind, s.count))
    }

    /// Sum of the latencies of all recorded commands (sequential issue), in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.total_latency_ns
    }

    /// Sum of the energies of all recorded commands, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Merges `other` into `self`: retained history is appended, and aggregates —
    /// including those of commands `other` has [drained](CommandTrace::drain_history) —
    /// carry over in full (drained commands stay history-less in the merged trace).
    pub fn merge(&mut self, other: &CommandTrace) {
        // Remap other's cost table into self's, then splice counts, history and totals.
        let mut remap = [0u8; 256];
        for (i, slot) in other.slots.iter().enumerate() {
            let idx = self.slot_index(&slot.command());
            remap[i] = idx;
            self.slots[idx as usize].count += slot.count;
        }
        self.reserve(other.ops.len());
        self.ops
            .extend(other.ops.iter().map(|&op| remap[op as usize]));
        self.drained += other.drained;
        self.total_latency_ns += other.total_latency_ns;
        self.total_energy_nj += other.total_energy_nj;
    }

    /// Applies a pre-computed [`TraceAggregate`] in one shot: per-slot counts and the
    /// latency/energy totals are added with a handful of operations instead of one
    /// [`CommandTrace::record`] per command.
    ///
    /// With `with_history` the aggregate's per-command history is appended (remapped into
    /// this trace's cost table) so [`CommandTrace::commands`] can still reconstruct it;
    /// without it the commands are accounted as already-drained history, which keeps the
    /// fast path free of per-command memory traffic entirely.
    ///
    /// When every cost in the aggregate is already registered (bit-identical latency and
    /// energy, as guaranteed by building both from one [`CommandCosts`]), applying without
    /// history performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics on cost-table overflow, like [`CommandTrace::push`].
    pub fn apply_aggregate(&mut self, aggregate: &TraceAggregate, with_history: bool) {
        let mut remap = [0u8; 256];
        for (i, slot) in aggregate.slots.iter().enumerate() {
            let idx = self.slot_index(&slot.command());
            remap[i] = idx;
            self.slots[idx as usize].count += slot.count;
        }
        self.total_latency_ns += aggregate.total_latency_ns;
        self.total_energy_nj += aggregate.total_energy_nj;
        if with_history {
            self.reserve(aggregate.ops.len());
            self.ops
                .extend(aggregate.ops.iter().map(|&op| remap[op as usize]));
        } else {
            self.drained += aggregate.ops.len();
        }
    }

    /// Returns a new trace containing only the commands recorded at or after position
    /// `mark` (a value previously obtained from [`CommandTrace::len`]).
    ///
    /// Totals are recomputed command-by-command in issue order, so the returned trace is a
    /// self-contained accounting of exactly the suffix — this is how per-broadcast
    /// command/latency/energy deltas are extracted without sharing mutable state
    /// between execution chunks. Marks taken before a [`CommandTrace::drain_history`]
    /// call clamp to the retained history.
    pub fn since(&self, mark: usize) -> CommandTrace {
        let start = mark.saturating_sub(self.drained).min(self.ops.len());
        let mut suffix = CommandTrace::new();
        suffix.reserve(self.ops.len() - start);
        for &idx in &self.ops[start..] {
            suffix.push(self.slots[idx as usize].command());
        }
        suffix
    }

    /// Drops the per-command history while keeping every aggregate — length, per-kind
    /// counts and latency/energy totals — intact.
    ///
    /// This bounds the memory of cumulative traces: owners that have already absorbed the
    /// per-command history (e.g. a machine merging per-broadcast traces) drain it so
    /// long-running simulations do not grow without bound.
    pub fn drain_history(&mut self) {
        self.drained += self.ops.len();
        self.ops.clear();
    }

    /// Clears the trace, including aggregates and the cost table.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.slots.clear();
        self.drained = 0;
        self.total_latency_ns = 0.0;
        self.total_energy_nj = 0.0;
    }
}

/// The accounting of a fixed command sequence, pre-aggregated so it can be charged to a
/// [`CommandTrace`] in one shot via [`CommandTrace::apply_aggregate`].
///
/// An aggregate stores the per-slot counts, the compact per-command history and the
/// latency/energy totals of the sequence it was built from. The totals are accumulated by
/// the *same* issue-order repeated addition [`CommandTrace::push`] performs, so a trace
/// built from an aggregate is bit-identical (including `f64` rounding) to a trace that
/// recorded the sequence command by command — this is what lets the compiled μProgram
/// fast path reproduce the interpreted path's accounting exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAggregate {
    slots: Vec<CostSlot>,
    ops: Vec<u8>,
    total_latency_ns: f64,
    total_energy_nj: f64,
}

impl TraceAggregate {
    /// Builds the aggregate of `commands`, in issue order.
    ///
    /// # Panics
    ///
    /// Panics on cost-table overflow, like [`CommandTrace::push`].
    pub fn from_commands(commands: impl IntoIterator<Item = DramCommand>) -> Self {
        let mut trace = CommandTrace::new();
        for command in commands {
            trace.push(command);
        }
        TraceAggregate {
            slots: trace.slots,
            ops: trace.ops,
            total_latency_ns: trace.total_latency_ns,
            total_energy_nj: trace.total_energy_nj,
        }
    }

    /// Number of commands in the aggregated sequence.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the aggregated sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Sum of the latencies of the aggregated commands (sequential issue), in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.total_latency_ns
    }

    /// Sum of the energies of the aggregated commands, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Materializes the aggregate as a self-contained [`CommandTrace`], with or without
    /// the reconstructable per-command history.
    pub fn to_trace(&self, with_history: bool) -> CommandTrace {
        let mut trace = CommandTrace::new();
        trace.apply_aggregate(self, with_history);
        trace
    }

    /// Rebuilds `out` (cleared first, retaining its buffers) from this aggregate, for
    /// callers reusing one local-trace allocation across executions.
    pub fn write_trace(&self, out: &mut CommandTrace, with_history: bool) {
        out.clear();
        out.apply_aggregate(self, with_history);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(kind: CommandKind) -> DramCommand {
        DramCommand {
            kind,
            latency_ns: 10.0,
            energy_nj: 2.0,
        }
    }

    #[test]
    fn trace_accumulates_totals() {
        let mut trace = CommandTrace::new();
        assert!(trace.is_empty());
        trace.push(cmd(CommandKind::ActivatePrecharge));
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 2);
        assert_eq!(trace.count(CommandKind::Read), 0);
        assert!((trace.total_latency_ns() - 30.0).abs() < 1e-12);
        assert!((trace.total_energy_nj() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn commands_reconstruct_the_issue_order() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        trace.push(cmd(CommandKind::TripleRowActivate));
        trace.push(cmd(CommandKind::Read));
        let kinds: Vec<CommandKind> = trace.commands().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommandKind::Read,
                CommandKind::TripleRowActivate,
                CommandKind::Read
            ]
        );
        assert!(trace.commands().all(|c| c.latency_ns == 10.0));
    }

    #[test]
    fn same_kind_with_different_costs_gets_distinct_slots() {
        // Plain AAP and AAP-with-TRA-source share a kind but charge different energies;
        // the trace must reconstruct each command with its exact cost.
        let mut trace = CommandTrace::new();
        trace.push(DramCommand {
            kind: CommandKind::ActivateActivatePrecharge,
            latency_ns: 10.0,
            energy_nj: 2.0,
        });
        trace.push(DramCommand {
            kind: CommandKind::ActivateActivatePrecharge,
            latency_ns: 10.0,
            energy_nj: 3.5,
        });
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 2);
        let energies: Vec<f64> = trace.commands().map(|c| c.energy_nj).collect();
        assert_eq!(energies, vec![2.0, 3.5]);
        assert!((trace.total_energy_nj() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn merge_concatenates_traces() {
        let mut a = CommandTrace::new();
        a.push(cmd(CommandKind::Read));
        let mut b = CommandTrace::new();
        b.push(cmd(CommandKind::Write));
        b.push(cmd(CommandKind::TripleRowActivate));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.count(CommandKind::Write), 1);
        assert!((a.total_latency_ns() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_drained_aggregates() {
        let mut src = CommandTrace::new();
        src.push(cmd(CommandKind::Read));
        src.push(cmd(CommandKind::Write));
        src.drain_history();
        src.push(cmd(CommandKind::TripleRowActivate));
        let mut dst = CommandTrace::new();
        dst.push(cmd(CommandKind::Read));
        dst.merge(&src);
        // All three of src's commands count, even though two were drained.
        assert_eq!(dst.len(), 4);
        assert_eq!(dst.count(CommandKind::Read), 2);
        assert_eq!(dst.count(CommandKind::Write), 1);
        assert!((dst.total_latency_ns() - 40.0).abs() < 1e-12);
        assert!((dst.total_energy_nj() - 8.0).abs() < 1e-12);
        // Only the retained history is reconstructable.
        assert_eq!(dst.history_len(), 2);
        let kinds: Vec<CommandKind> = dst.commands().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![CommandKind::Read, CommandKind::TripleRowActivate]
        );
    }

    #[test]
    fn since_extracts_a_self_contained_suffix() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        let mark = trace.len();
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        trace.push(cmd(CommandKind::TripleRowActivate));
        let suffix = trace.since(mark);
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix.count(CommandKind::Read), 0);
        assert_eq!(suffix.count(CommandKind::ActivateActivatePrecharge), 1);
        assert!((suffix.total_latency_ns() - 20.0).abs() < 1e-12);
        assert!((suffix.total_energy_nj() - 4.0).abs() < 1e-12);
        // A mark past the end yields an empty trace, not a panic.
        assert!(trace.since(trace.len()).is_empty());
        assert!(trace.since(trace.len() + 10).is_empty());
    }

    #[test]
    fn drain_history_keeps_aggregates() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        trace.push(cmd(CommandKind::Write));
        trace.drain_history();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.history_len(), 0);
        assert_eq!(trace.count(CommandKind::Read), 1);
        assert!((trace.total_latency_ns() - 20.0).abs() < 1e-12);
        assert_eq!(trace.commands().count(), 0);
        // Marks keep working across a drain: new commands land after the drained region.
        let mark = trace.len();
        trace.push(cmd(CommandKind::TripleRowActivate));
        let suffix = trace.since(mark);
        assert_eq!(suffix.len(), 1);
        assert_eq!(suffix.count(CommandKind::TripleRowActivate), 1);
        // A stale mark from before the drain clamps to the retained history.
        assert_eq!(trace.since(0).len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = CommandTrace::new();
        a.push(cmd(CommandKind::Read));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total_energy_nj(), 0.0);
        assert_eq!(a.count(CommandKind::Read), 0);
    }

    #[test]
    fn aggregate_matches_per_command_recording_bit_for_bit() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let sequence = vec![
            costs.aap().clone(),
            costs.aap_tra().clone(),
            costs.tra().clone(),
            costs.aap().clone(),
            costs.aap().clone(),
        ];
        let mut recorded = CommandTrace::new();
        for c in &sequence {
            recorded.push(c.clone());
        }
        let aggregate = TraceAggregate::from_commands(sequence);
        assert_eq!(aggregate.len(), 5);
        let applied = aggregate.to_trace(true);
        // Bit-identical totals, identical slot layout and history: full equality.
        assert_eq!(applied, recorded);
        assert_eq!(
            applied.total_latency_ns().to_bits(),
            recorded.total_latency_ns().to_bits()
        );
        // Without history the commands count as drained but every aggregate survives.
        let drained = aggregate.to_trace(false);
        assert_eq!(drained.len(), 5);
        assert_eq!(drained.history_len(), 0);
        assert_eq!(
            drained.total_energy_nj().to_bits(),
            recorded.total_energy_nj().to_bits()
        );
        assert_eq!(
            drained.kind_counts().collect::<Vec<_>>(),
            recorded.kind_counts().collect::<Vec<_>>()
        );
    }

    #[test]
    fn apply_aggregate_accumulates_onto_existing_traces() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let aggregate =
            TraceAggregate::from_commands(vec![costs.aap().clone(), costs.tra().clone()]);
        let mut trace = CommandTrace::new();
        trace.push(costs.aap().clone());
        trace.apply_aggregate(&aggregate, true);
        trace.apply_aggregate(&aggregate, false);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.history_len(), 3);
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 3);
        assert_eq!(trace.count(CommandKind::TripleRowActivate), 2);
    }

    #[test]
    fn write_trace_reuses_the_output_buffers() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let aggregate = TraceAggregate::from_commands(vec![costs.aap().clone()]);
        let mut out = CommandTrace::new();
        aggregate.write_trace(&mut out, true);
        aggregate.write_trace(&mut out, true);
        // Rebuilt from scratch each time, not accumulated.
        assert_eq!(out.len(), 1);
        assert_eq!(out.history_len(), 1);
    }

    #[test]
    fn command_kind_display() {
        assert_eq!(CommandKind::ActivateActivatePrecharge.to_string(), "AAP");
        assert_eq!(CommandKind::TripleRowActivate.to_string(), "AP(TRA)");
    }
}
