//! DRAM command kinds and the command trace collected during simulation.

use std::fmt;

/// The kind of a DRAM command issued to a subarray.
///
/// The substrate distinguishes the command templates that matter for SIMDRAM's latency and
/// energy accounting. `ActivatePrecharge`/`TripleRowActivate` correspond to the paper's `AP`
/// template, `ActivateActivatePrecharge` to the `AAP` template, and `Read`/`Write` to
/// conventional column accesses over the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Single-row ACTIVATE followed by PRECHARGE (`AP`).
    ActivatePrecharge,
    /// Triple-row ACTIVATE followed by PRECHARGE (`AP` with a TRA address): computes the
    /// bitwise majority of three B-group rows in place.
    TripleRowActivate,
    /// ACTIVATE → ACTIVATE → PRECHARGE (`AAP`): copies the first row into the second through
    /// the sense amplifiers (RowClone-FPM).
    ActivateActivatePrecharge,
    /// Conventional burst read of a row segment over the memory channel.
    Read,
    /// Conventional burst write of a row segment over the memory channel.
    Write,
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::ActivatePrecharge => "AP",
            CommandKind::TripleRowActivate => "AP(TRA)",
            CommandKind::ActivateActivatePrecharge => "AAP",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
        };
        f.write_str(s)
    }
}

/// One issued DRAM command, as recorded in a [`CommandTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct DramCommand {
    /// The command template.
    pub kind: CommandKind,
    /// Latency charged for this command, in nanoseconds.
    pub latency_ns: f64,
    /// Energy charged for this command, in nanojoules.
    pub energy_nj: f64,
}

/// An append-only trace of issued commands with aggregate counters.
///
/// Traces are cheap to merge, which is how bank- and device-level statistics are built from
/// per-subarray execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandTrace {
    commands: Vec<DramCommand>,
    total_latency_ns: f64,
    total_energy_nj: f64,
}

impl CommandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a command.
    pub fn push(&mut self, command: DramCommand) {
        self.total_latency_ns += command.latency_ns;
        self.total_energy_nj += command.energy_nj;
        self.commands.push(command);
    }

    /// All recorded commands, in issue order.
    pub fn commands(&self) -> &[DramCommand] {
        &self.commands
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Returns `true` if no commands were recorded.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Number of commands of the given kind.
    pub fn count(&self, kind: CommandKind) -> usize {
        self.commands.iter().filter(|c| c.kind == kind).count()
    }

    /// Sum of the latencies of all recorded commands (sequential issue), in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.total_latency_ns
    }

    /// Sum of the energies of all recorded commands, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Appends all commands of `other` to `self`.
    pub fn merge(&mut self, other: &CommandTrace) {
        for c in &other.commands {
            self.push(c.clone());
        }
    }

    /// Returns a new trace containing only the commands recorded at or after position
    /// `mark` (a value previously obtained from [`CommandTrace::len`]).
    ///
    /// Totals are recomputed from the copied commands, so the returned trace is a
    /// self-contained accounting of exactly the suffix — this is how per-broadcast
    /// command/latency/energy deltas are extracted without sharing mutable state
    /// between execution chunks.
    pub fn since(&self, mark: usize) -> CommandTrace {
        let mut suffix = CommandTrace::new();
        for c in self.commands.iter().skip(mark) {
            suffix.push(c.clone());
        }
        suffix
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.commands.clear();
        self.total_latency_ns = 0.0;
        self.total_energy_nj = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(kind: CommandKind) -> DramCommand {
        DramCommand {
            kind,
            latency_ns: 10.0,
            energy_nj: 2.0,
        }
    }

    #[test]
    fn trace_accumulates_totals() {
        let mut trace = CommandTrace::new();
        assert!(trace.is_empty());
        trace.push(cmd(CommandKind::ActivatePrecharge));
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 2);
        assert_eq!(trace.count(CommandKind::Read), 0);
        assert!((trace.total_latency_ns() - 30.0).abs() < 1e-12);
        assert!((trace.total_energy_nj() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_concatenates_traces() {
        let mut a = CommandTrace::new();
        a.push(cmd(CommandKind::Read));
        let mut b = CommandTrace::new();
        b.push(cmd(CommandKind::Write));
        b.push(cmd(CommandKind::TripleRowActivate));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.count(CommandKind::Write), 1);
        assert!((a.total_latency_ns() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn since_extracts_a_self_contained_suffix() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        let mark = trace.len();
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        trace.push(cmd(CommandKind::TripleRowActivate));
        let suffix = trace.since(mark);
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix.count(CommandKind::Read), 0);
        assert_eq!(suffix.count(CommandKind::ActivateActivatePrecharge), 1);
        assert!((suffix.total_latency_ns() - 20.0).abs() < 1e-12);
        assert!((suffix.total_energy_nj() - 4.0).abs() < 1e-12);
        // A mark past the end yields an empty trace, not a panic.
        assert!(trace.since(trace.len()).is_empty());
        assert!(trace.since(trace.len() + 10).is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = CommandTrace::new();
        a.push(cmd(CommandKind::Read));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total_energy_nj(), 0.0);
    }

    #[test]
    fn command_kind_display() {
        assert_eq!(CommandKind::ActivateActivatePrecharge.to_string(), "AAP");
        assert_eq!(CommandKind::TripleRowActivate.to_string(), "AP(TRA)");
    }
}
